"""The fluent PlanBuilder produces plans equivalent to hand-built ones."""

import numpy as np
import pytest

from repro.core.queries import PlanBuilder, QueryExecutor, reference_count
from repro.core.queries.tpch_queries import _DATE_1995_03_15
from repro.enclave.runtime import ExecutionSetting
from repro.errors import PlanError
from repro.machine import SimMachine
from repro.tables import generate_tpch
from repro.tables.tpch import segment_code

PLAIN = ExecutionSetting.plain_cpu()


def q3_via_builder():
    building = segment_code("BUILDING")
    return (
        PlanBuilder("Q3-built")
        .filter(
            "customer", "customer_f",
            predicate=lambda t: t["c_mktsegment"] == building,
            scan=("c_mktsegment",), keep=("c_custkey",),
        )
        .filter(
            "orders", "orders_f",
            predicate=lambda t: t["o_orderdate"] < _DATE_1995_03_15,
            scan=("o_orderdate",), keep=("o_orderkey", "o_custkey"),
        )
        .filter(
            "lineitem", "lineitem_f",
            predicate=lambda t: t["l_shipdate"] > _DATE_1995_03_15,
            scan=("l_shipdate",), keep=("l_orderkey",),
        )
        .join(build="customer_f", probe="orders_f",
              on=("c_custkey", "o_custkey"), output="co",
              keep_probe=("o_orderkey",))
        .join(build="co", probe="lineitem_f",
              on=("o_orderkey", "l_orderkey"), output="col")
        .count()
        .build()
    )


class TestBuilder:
    def test_q3_equivalent(self):
        data = generate_tpch(0.5, seed=23, physical_sf_cap=0.02)
        tables = {
            "customer": data.customer, "orders": data.orders,
            "lineitem": data.lineitem, "part": data.part,
        }
        machine = SimMachine()
        with machine.context(PLAIN, threads=4) as ctx:
            result = QueryExecutor().run(ctx, q3_via_builder(), tables)
        assert result.count == reference_count(data, "Q3")

    def test_count_defaults_to_last_output(self):
        plan = (
            PlanBuilder("p")
            .filter("t", "f", predicate=lambda t: np.ones(len(t), dtype=bool),
                    scan=("a",), keep=("a",))
            .count()
            .build()
        )
        assert plan.steps[-1].source == "f"

    def test_build_without_count_rejected(self):
        builder = PlanBuilder("p").filter(
            "t", "f", predicate=lambda t: np.ones(len(t), dtype=bool),
            scan=("a",), keep=("a",),
        )
        with pytest.raises(PlanError):
            builder.build()

    def test_steps_after_count_rejected(self):
        builder = PlanBuilder("p").filter(
            "t", "f", predicate=lambda t: np.ones(len(t), dtype=bool),
            scan=("a",), keep=("a",),
        ).count()
        with pytest.raises(PlanError):
            builder.count()

    def test_duplicate_output_rejected(self):
        builder = PlanBuilder("p").filter(
            "t", "f", predicate=lambda t: np.ones(len(t), dtype=bool),
            scan=("a",), keep=("a",),
        )
        with pytest.raises(PlanError):
            builder.filter(
                "t", "f", predicate=lambda t: np.ones(len(t), dtype=bool),
                scan=("a",), keep=("a",),
            )

    def test_empty_count_rejected(self):
        with pytest.raises(PlanError):
            PlanBuilder("p").count()

    def test_unnamed_plan_rejected(self):
        with pytest.raises(PlanError):
            PlanBuilder("")
