"""Property-based fuzzing of the allocator and enclave heap accounting.

Hypothesis drives random allocate/free interleavings and checks the
conservation invariants the rest of the system relies on: usage counters
equal the sum of live regions, freeing restores capacity exactly, and the
EPC limit is never silently exceeded.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enclave.enclave import Enclave, EnclaveConfig
from repro.errors import CapacityError, ReproError
from repro.hardware import Topology, paper_testbed
from repro.memory.allocator import MemoryAllocator
from repro.units import MiB


@st.composite
def operations(draw):
    """A random sequence of (action, size, node, in_enclave) steps."""
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["alloc", "free"]),
                st.integers(min_value=0, max_value=8 * MiB),
                st.integers(min_value=0, max_value=1),
                st.booleans(),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return steps


class TestAllocatorInvariants:
    @given(steps=operations())
    @settings(max_examples=80, deadline=None)
    def test_usage_equals_live_regions(self, steps):
        allocator = MemoryAllocator(Topology(paper_testbed()))
        live = []
        for action, size, node, in_enclave in steps:
            if action == "alloc":
                try:
                    region = allocator.allocate(
                        "fuzz", size, node=node, in_enclave=in_enclave
                    )
                except ReproError:
                    continue
                live.append(region)
            elif live:
                allocator.free(live.pop())
        for node in (0, 1):
            expected_dram = sum(
                region.size_bytes for region in live if region.node == node
            )
            expected_epc = sum(
                region.size_bytes
                for region in live
                if region.node == node and region.in_enclave
            )
            assert allocator.dram_used(node) == expected_dram
            assert allocator.epc_used(node) == expected_epc
        assert allocator.live_regions == len(live)

    @given(steps=operations())
    @settings(max_examples=50, deadline=None)
    def test_epc_limit_never_exceeded(self, steps):
        allocator = MemoryAllocator(Topology(paper_testbed()))
        capacity = paper_testbed().epc_bytes_per_socket
        for action, size, node, in_enclave in steps:
            if action != "alloc":
                continue
            try:
                allocator.allocate("fuzz", size, node=node, in_enclave=in_enclave)
            except ReproError:
                pass
            assert allocator.epc_used(node) <= capacity

    @given(steps=operations())
    @settings(max_examples=50, deadline=None)
    def test_free_all_always_restores_zero(self, steps):
        allocator = MemoryAllocator(Topology(paper_testbed()))
        for action, size, node, in_enclave in steps:
            if action == "alloc":
                try:
                    allocator.allocate(
                        "fuzz", size, node=node, in_enclave=in_enclave
                    )
                except ReproError:
                    pass
        allocator.free_all()
        for node in (0, 1):
            assert allocator.dram_used(node) == 0
            assert allocator.epc_used(node) == 0


class TestEnclaveHeapInvariants:
    @given(
        sizes=st.lists(
            st.integers(min_value=0, max_value=2 * MiB), min_size=1, max_size=30
        ),
        heap_mb=st.integers(min_value=1, max_value=16),
        dynamic=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_heap_accounting_conserves(self, sizes, heap_mb, dynamic):
        allocator = MemoryAllocator(Topology(paper_testbed()))
        config = EnclaveConfig(
            heap_bytes=heap_mb * MiB,
            node=0,
            dynamic=dynamic,
            max_bytes=64 * MiB if dynamic else 0,
        )
        enclave = Enclave(config, allocator)
        enclave.initialize()
        allocated = 0
        for size in sizes:
            try:
                enclave.allocate("fuzz", size)
            except CapacityError:
                # Static heap exhausted (or dynamic limit hit): the failed
                # allocation must not have consumed anything.
                continue
            allocated += size
        # Heap used + free covers the static heap exactly.
        assert enclave.heap_free_bytes >= 0
        assert enclave.heap_free_bytes <= config.heap_bytes
        # Total committed EPC is heap + whole dynamic pages.
        assert enclave.total_bytes >= config.heap_bytes
        if not dynamic:
            assert enclave.total_bytes == config.heap_bytes
        assert enclave.total_bytes - config.heap_bytes == (
            enclave.pages_added_total * 4096
        )
        enclave.destroy()
        assert allocator.epc_used(0) == 0
