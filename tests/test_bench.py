"""Bench harness: stats runner, report container, registry."""

import math

import pytest

from repro.bench import (
    EXPERIMENTS,
    ExperimentReport,
    RunStats,
    get_experiment,
    repeat_runs,
)
from repro.bench import runner
from repro.bench.runner import summarize, use_base_seed, use_repetition_jobs
from repro.errors import BenchmarkError


class TestRunner:
    def test_mean_and_std(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx((2 / 3) ** 0.5)
        assert stats.runs == 3

    def test_relative_std(self):
        stats = summarize([2.0, 2.0])
        assert stats.relative_std == 0.0
        assert summarize([0.0, 0.0]).relative_std == 0.0

    def test_relative_std_zero_mean_nonzero_spread_is_nan(self):
        # Samples straddling zero have no meaningful coefficient of
        # variation; 0.0 here used to report fake perfect stability.
        stats = summarize([-1.0, 1.0])
        assert stats.mean == 0.0 and stats.std > 0.0
        assert math.isnan(stats.relative_std)

    def test_summarize_single_sample_std_is_zero(self):
        stats = summarize([3.0])
        assert stats.mean == 3.0
        assert stats.std == 0.0
        assert not math.isnan(stats.relative_std)

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            summarize([])

    def test_repeat_runs_varies_seed(self):
        seeds = []
        stats = repeat_runs(lambda seed: seeds.append(seed) or float(seed), runs=5)
        assert len(set(seeds)) == 5
        assert stats.runs == 5

    def test_zero_runs_rejected(self):
        with pytest.raises(BenchmarkError):
            repeat_runs(lambda seed: 0.0, runs=0)

    def test_failing_repetition_names_its_seed(self):
        def measure(seed: int) -> float:
            if seed == 44:
                raise ValueError("boom")
            return float(seed)

        with pytest.raises(BenchmarkError, match=r"repetition 2 \(seed 44\)"):
            repeat_runs(measure, runs=5, base_seed=42)

    def test_failing_repetition_traced_with_seed_context(self):
        from repro.trace import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(BenchmarkError):
                repeat_runs(lambda seed: 1 / 0, runs=3, base_seed=7)
        [event] = [r for r in tracer.records if r.name == "bench.repetition_failed"]
        assert event.attrs["seed"] == 7
        assert event.attrs["error"] == "ZeroDivisionError"

    def test_threaded_repetitions_match_serial(self):
        serial = repeat_runs(lambda seed: float(seed * seed), runs=6, jobs=1)
        threaded = repeat_runs(lambda seed: float(seed * seed), runs=6, jobs=4)
        assert threaded.samples == serial.samples

    def test_threaded_failure_still_names_its_seed(self):
        def measure(seed: int) -> float:
            if seed == 43:
                raise RuntimeError("bad input")
            return 1.0

        with pytest.raises(BenchmarkError, match=r"seed 43"):
            repeat_runs(measure, runs=4, jobs=4, base_seed=42)

    def test_use_base_seed_scopes_and_restores(self):
        before = runner.DEFAULT_BASE_SEED
        with use_base_seed(1000):
            assert repeat_runs(lambda s: float(s), runs=1).mean == 1000.0
        assert runner.DEFAULT_BASE_SEED == before
        with use_base_seed(None):
            assert runner.DEFAULT_BASE_SEED == before

    def test_use_repetition_jobs_scopes_and_validates(self):
        with use_repetition_jobs(3):
            assert runner.DEFAULT_REPETITION_JOBS == 3
        assert runner.DEFAULT_REPETITION_JOBS == 1
        with pytest.raises(BenchmarkError):
            runner.set_default_repetition_jobs(0)

    def test_format(self):
        stats = RunStats(mean=123.456, std=1.2, samples=(1,))
        assert "±" in f"{stats:.3g}"


class TestReport:
    def _report(self):
        report = ExperimentReport("figXX", "title", "Figure XX")
        report.add("a", 1, 10.0, "ms")
        report.add("a", 2, 20.0, "ms")
        report.add("b", 1, 5.0, "ms")
        return report

    def test_series_access(self):
        report = self._report()
        assert [row.x for row in report.series("a")] == [1, 2]
        assert report.series_names() == ["a", "b"]

    def test_value_and_ratio(self):
        report = self._report()
        assert report.value("a", 2) == 20.0
        assert report.ratio("a", "b", 1) == 2.0

    def test_missing_value_raises(self):
        with pytest.raises(BenchmarkError):
            self._report().value("a", 99)

    def test_zero_denominator_raises(self):
        report = ExperimentReport("x", "t", "r")
        report.add("n", 1, 1.0, "")
        report.add("d", 1, 0.0, "")
        with pytest.raises(BenchmarkError):
            report.ratio("n", "d", 1)

    def test_stats_carry_spread(self):
        report = ExperimentReport("x", "t", "r")
        report.add("s", 1, RunStats(5.0, 0.5, (4.5, 5.5)), "ms")
        assert report.rows[0].std == 0.5
        assert "±" in report.rows[0].formatted()

    def test_print_table_contains_everything(self):
        report = self._report()
        report.notes.append("a note")
        text = report.print_table()
        assert "figXX" in text and "Figure XX" in text
        assert "a note" in text

    def test_csv_roundtrip_fields(self):
        csv = self._report().to_csv()
        lines = csv.splitlines()
        assert lines[0] == "series,x,value,std,unit"
        assert len(lines) == 4

    def test_dict_roundtrip_through_json(self):
        import json

        report = self._report()
        report.notes.append("a note")
        payload = json.loads(json.dumps(report.as_dict()))
        clone = ExperimentReport.from_dict(payload)
        assert clone.as_dict() == report.as_dict()
        assert clone.rows[0].x == 1  # x keeps its type through JSON
        assert clone.to_csv() == report.to_csv()

    def test_malformed_payload_rejected(self):
        with pytest.raises(BenchmarkError):
            ExperimentReport.from_dict({"experiment_id": "x"})
        with pytest.raises(BenchmarkError):
            ExperimentReport.from_dict(
                {
                    "experiment_id": "x",
                    "title": "t",
                    "paper_reference": "r",
                    "rows": [{"series": "a"}],
                    "notes": [],
                }
            )


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {f"fig{n:02d}" for n in (1, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                            12, 13, 14, 15, 16, 17)}
        expected.add("tab01")
        expected.update(
            {"ext01", "ext02", "ext03", "ext04", "ext05", "ext06", "ext07",
             "ext08", "ext09"}
        )  # extensions
        expected.update(
            {"wl01", "wl02", "wl03", "wl04", "wl05", "wl06", "wl07", "wl08"}
        )  # serving workloads
        assert set(EXPERIMENTS) == expected

    def test_modules_expose_interface(self):
        for experiment_id, module in EXPERIMENTS.items():
            assert module.EXPERIMENT_ID == experiment_id
            assert isinstance(module.TITLE, str)
            assert isinstance(module.PAPER_REFERENCE, str)
            assert callable(module.run)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(BenchmarkError):
            get_experiment("fig99")
