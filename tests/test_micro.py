"""Micro-benchmarks: real-work verification plus cost anchors."""

import numpy as np
import pytest

from repro.core.micro import (
    HistogramBenchmark,
    Lcg,
    LinearAccessBenchmark,
    LinearOp,
    PointerChaseBenchmark,
    RandomWriteBenchmark,
    build_pointer_cycle,
)
from repro.core.micro.histogram import histogram_naive, histogram_unrolled
from repro.core.micro.pointer_chase import chase
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.machine import SimMachine
from repro.memory.access import CodeVariant

PLAIN = ExecutionSetting.plain_cpu()
SGX = ExecutionSetting.sgx_data_in_enclave()


def relative(bench_factory, run_kwargs=None):
    """plain cycles / sgx cycles for a micro-benchmark."""
    kwargs = run_kwargs or {}
    machine = SimMachine()
    with machine.context(PLAIN) as ctx:
        plain = bench_factory().run(ctx, **kwargs)
    machine = SimMachine()
    with machine.context(SGX) as ctx:
        sgx = bench_factory().run(ctx, **kwargs)
    return plain.cycles / sgx.cycles


class TestPointerCycle:
    def test_cycle_visits_every_slot(self, rng):
        chain = build_pointer_cycle(257, rng)
        seen = set()
        position = 0
        for _ in range(257):
            seen.add(position)
            position = int(chain[position])
        assert len(seen) == 257
        assert position == 0  # back at the start: one closed cycle

    def test_chase_helper(self, rng):
        chain = build_pointer_cycle(10, rng)
        assert chase(chain, 10) == 0  # full cycle returns home

    def test_single_slot(self, rng):
        chain = build_pointer_cycle(1, rng)
        assert chain[0] == 0

    def test_invalid_slots_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            build_pointer_cycle(0, rng)


class TestPointerChaseBenchmark:
    def test_in_cache_no_penalty(self):
        rel = relative(lambda: PointerChaseBenchmark(1e6, physical_cap_slots=1 << 12))
        assert rel == pytest.approx(1.0)

    def test_16gb_hits_53_percent(self):
        rel = relative(lambda: PointerChaseBenchmark(16e9, physical_cap_slots=1 << 12))
        assert rel == pytest.approx(0.53, abs=0.02)

    def test_monotone_decline(self):
        rels = [
            relative(lambda s=s: PointerChaseBenchmark(s, physical_cap_slots=1 << 12))
            for s in (1e6, 256e6, 4e9, 16e9)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(rels, rels[1:]))

    def test_too_small_array_rejected(self):
        with pytest.raises(ConfigurationError):
            PointerChaseBenchmark(4)


class TestLcg:
    def test_batch_matches_scalar(self):
        scalar = Lcg(seed=17)
        expected = [scalar.next() for _ in range(64)]
        batched = Lcg(seed=17)
        assert batched.batch(64).tolist() == expected

    def test_batch_continues_state(self):
        lcg = Lcg(seed=5)
        first = lcg.batch(10)
        second = lcg.batch(10)
        reference = Lcg(seed=5)
        combined = reference.batch(20)
        assert np.array_equal(np.concatenate([first, second]), combined)

    def test_empty_batch(self):
        assert len(Lcg().batch(0)) == 0

    def test_negative_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            Lcg().batch(-1)


class TestRandomWriteBenchmark:
    def test_writes_actually_happen(self, machine):
        bench = RandomWriteBenchmark(1e6, physical_cap_slots=1 << 10)
        with machine.context(PLAIN) as ctx:
            result = bench.run(ctx, writes=5000, physical_writes=5000)
        assert result.checksum == 5000  # every physical write counted

    def test_sgx_slowdown_at_256mb_near_2x(self):
        rel = relative(
            lambda: RandomWriteBenchmark(256e6, physical_cap_slots=1 << 10),
            {"writes": 1e6},
        )
        assert 1.6 < 1 / rel < 2.2  # Fig. 5: ~2x

    def test_sgx_slowdown_at_8gb_near_3x(self):
        rel = relative(
            lambda: RandomWriteBenchmark(8e9, physical_cap_slots=1 << 10),
            {"writes": 1e6},
        )
        assert 2.4 < 1 / rel < 3.2  # Fig. 5: ~3x

    def test_writes_worse_than_reads_at_same_size(self):
        write_rel = relative(
            lambda: RandomWriteBenchmark(8e9, physical_cap_slots=1 << 10),
            {"writes": 1e6},
        )
        read_rel = relative(
            lambda: PointerChaseBenchmark(8e9, physical_cap_slots=1 << 12)
        )
        assert write_rel < read_rel


class TestHistogramBenchmark:
    def test_unrolled_equals_naive_result(self, rng):
        keys = rng.integers(0, 1 << 20, 10_000)
        for bins in (16, 256, 4096):
            assert np.array_equal(
                histogram_naive(keys, bins), histogram_unrolled(keys, bins)
            )

    def test_histogram_counts_everything(self, rng):
        keys = rng.integers(0, 1 << 20, 999)
        assert histogram_naive(keys, 64).sum() == 999

    def test_non_power_of_two_bins_rejected(self, machine):
        bench = HistogramBenchmark(1e6, physical_cap_rows=1000)
        with machine.context(PLAIN) as ctx:
            with pytest.raises(ConfigurationError):
                bench.run(ctx, bins=100)

    def test_naive_enclave_penalty(self):
        rel = relative(
            lambda: HistogramBenchmark(100e6, physical_cap_rows=1000),
            {"bins": 1024, "variant": CodeVariant.NAIVE},
        )
        assert 1 / rel == pytest.approx(3.3, rel=0.05)  # Fig. 7

    def test_unrolled_enclave_penalty(self):
        rel = relative(
            lambda: HistogramBenchmark(100e6, physical_cap_rows=1000),
            {"bins": 1024, "variant": CodeVariant.UNROLLED},
        )
        assert 1 / rel == pytest.approx(1.22, rel=0.05)  # Fig. 7

    def test_penalty_same_for_data_outside(self):
        bench = HistogramBenchmark(100e6, physical_cap_rows=1000)
        machine = SimMachine()
        with machine.context(SGX) as ctx:
            inside = bench.run(ctx, bins=1024)
        machine = SimMachine()
        with machine.context(ExecutionSetting.sgx_data_outside_enclave()) as ctx:
            outside = bench.run(ctx, bins=1024)
        assert inside.cycles == pytest.approx(outside.cycles, rel=0.06)


class TestLinearAccessBenchmark:
    @pytest.mark.parametrize("op", list(LinearOp))
    def test_in_cache_no_penalty(self, op):
        rel = relative(
            lambda: LinearAccessBenchmark(1e6, physical_cap_bytes=1 << 16),
            {"op": op},
        )
        assert rel == pytest.approx(1.0)

    def test_out_of_cache_penalties_ordered(self):
        rels = {
            op: relative(
                lambda: LinearAccessBenchmark(8e9, physical_cap_bytes=1 << 16),
                {"op": op},
            )
            for op in LinearOp
        }
        # Fig. 15: 64-bit reads worst (-5.5 %), 512-bit reads -3 %, writes -2 %.
        assert rels[LinearOp.READ_64] == pytest.approx(0.948, abs=0.005)
        assert rels[LinearOp.READ_512] == pytest.approx(0.971, abs=0.005)
        assert rels[LinearOp.WRITE_64] == pytest.approx(0.98, abs=0.005)
        assert rels[LinearOp.READ_64] < rels[LinearOp.READ_512]

    def test_bandwidth_helper(self):
        machine = SimMachine()
        bench = LinearAccessBenchmark(1e9, physical_cap_bytes=1 << 16)
        with machine.context(PLAIN, threads=16) as ctx:
            result = bench.run(ctx, LinearOp.READ_512)
        bw = bench.bandwidth_bytes_per_s(result, LinearOp.READ_512, machine.frequency_hz)
        assert 0 < bw <= machine.spec.socket_stream_bandwidth_bytes() * 1.01
