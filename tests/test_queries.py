"""Query plans and the TPC-H executor: correctness and cost shapes."""

import numpy as np
import pytest

from repro.core.queries import (
    CountStep,
    FilterStep,
    JoinStep,
    QueryExecutor,
    QueryPlan,
    TPCH_QUERIES,
    reference_count,
)
from repro.enclave.runtime import ExecutionSetting
from repro.errors import PlanError
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import Table, generate_tpch

PLAIN = ExecutionSetting.plain_cpu()
SGX = ExecutionSetting.sgx_data_in_enclave()


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(1.0, seed=11, physical_sf_cap=0.02)


@pytest.fixture(scope="module")
def tpch_tables(tpch):
    return {
        "customer": tpch.customer,
        "orders": tpch.orders,
        "lineitem": tpch.lineitem,
        "part": tpch.part,
    }


class TestPlanValidation:
    def test_plan_must_end_in_count(self):
        with pytest.raises(PlanError):
            QueryPlan(
                "bad",
                (
                    FilterStep(
                        source="t", output="f",
                        predicate=lambda t: np.ones(len(t), dtype=bool),
                        scan_columns=("a",), keep=("a",),
                    ),
                ),
            )

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError):
            QueryPlan("empty", ())

    def test_filter_needs_columns(self):
        with pytest.raises(PlanError):
            FilterStep(
                source="t", output="f",
                predicate=lambda t: np.ones(len(t), dtype=bool),
                scan_columns=(), keep=("a",),
            )

    def test_describe_lists_steps(self):
        plan = TPCH_QUERIES["Q3"]()
        description = plan.describe()
        assert len(description) == len(plan.steps)
        assert description[-1].startswith("COUNT")

    def test_join_counts(self):
        assert TPCH_QUERIES["Q3"]().join_count == 2
        assert TPCH_QUERIES["Q12"]().join_count == 1


class TestQueryCorrectness:
    @pytest.mark.parametrize("query", list(TPCH_QUERIES))
    def test_counts_match_reference(self, tpch, tpch_tables, query):
        machine = SimMachine()
        plan = TPCH_QUERIES[query]()
        with machine.context(PLAIN, threads=4) as ctx:
            result = QueryExecutor().run(ctx, plan, tpch_tables)
        assert result.count == reference_count(tpch, query)

    @pytest.mark.parametrize("query", list(TPCH_QUERIES))
    def test_counts_setting_independent(self, tpch_tables, query):
        counts = set()
        for setting in (PLAIN, SGX):
            machine = SimMachine()
            with machine.context(setting, threads=4) as ctx:
                result = QueryExecutor().run(
                    ctx, TPCH_QUERIES[query](), tpch_tables
                )
            counts.add(result.count)
        assert len(counts) == 1

    def test_counts_variant_independent(self, tpch_tables):
        counts = set()
        for variant in (CodeVariant.NAIVE, CodeVariant.UNROLLED):
            machine = SimMachine()
            with machine.context(SGX, threads=4) as ctx:
                result = QueryExecutor(variant).run(
                    ctx, TPCH_QUERIES["Q12"](), tpch_tables
                )
            counts.add(result.count)
        assert len(counts) == 1

    def test_logical_count_scales(self, tpch, tpch_tables):
        machine = SimMachine()
        with machine.context(PLAIN, threads=4) as ctx:
            result = QueryExecutor().run(ctx, TPCH_QUERIES["Q3"](), tpch_tables)
        assert result.count_logical == pytest.approx(
            result.count * tpch.lineitem.sim_scale
        )

    def test_unknown_table_rejected(self, tpch_tables):
        machine = SimMachine()
        plan = QueryPlan(
            "bad",
            (
                FilterStep(
                    source="nonexistent", output="f",
                    predicate=lambda t: np.ones(len(t), dtype=bool),
                    scan_columns=("a",), keep=("a",),
                ),
                CountStep(source="f"),
            ),
        )
        with machine.context(PLAIN) as ctx:
            with pytest.raises(PlanError):
                QueryExecutor().run(ctx, plan, tpch_tables)


class TestQueryCosts:
    @pytest.mark.parametrize("query", list(TPCH_QUERIES))
    def test_sgx_never_faster(self, tpch_tables, query):
        def cycles(setting, variant):
            machine = SimMachine()
            with machine.context(setting, threads=16) as ctx:
                return QueryExecutor(variant).run(
                    ctx, TPCH_QUERIES[query](), tpch_tables
                ).cycles

        plain = cycles(PLAIN, CodeVariant.NAIVE)
        sgx_naive = cycles(SGX, CodeVariant.NAIVE)
        sgx_opt = cycles(SGX, CodeVariant.UNROLLED)
        assert plain < sgx_opt < sgx_naive  # optimization helps, gap remains

    def test_fig17_overhead_bands(self, tpch_tables):
        """Average in-enclave overhead lands near the paper's 42 %/15 %."""
        naive, opt = [], []
        for query in TPCH_QUERIES:
            def cycles(setting, variant):
                machine = SimMachine()
                with machine.context(setting, threads=16) as ctx:
                    return QueryExecutor(variant).run(
                        ctx, TPCH_QUERIES[query](), tpch_tables
                    ).cycles

            plain = cycles(PLAIN, CodeVariant.NAIVE)
            naive.append(cycles(SGX, CodeVariant.NAIVE) / plain - 1)
            opt.append(cycles(SGX, CodeVariant.UNROLLED) / plain - 1)
        assert 0.25 < sum(naive) / len(naive) < 0.9  # paper: 0.42
        assert 0.0 < sum(opt) / len(opt) < 0.25  # paper: 0.15

    def test_step_breakdown_sums_to_total(self, tpch_tables):
        machine = SimMachine()
        with machine.context(PLAIN, threads=4) as ctx:
            result = QueryExecutor().run(ctx, TPCH_QUERIES["Q10"](), tpch_tables)
        assert sum(result.step_cycles.values()) == pytest.approx(result.cycles)

    def test_join_dominates_filter_in_q12(self, tpch_tables):
        machine = SimMachine()
        with machine.context(PLAIN, threads=16) as ctx:
            result = QueryExecutor().run(ctx, TPCH_QUERIES["Q12"](), tpch_tables)
        join_cycles = sum(
            v for k, v in result.step_cycles.items() if ":join:" in k
        )
        assert join_cycles > 0.3 * result.cycles


class TestFilterSemantics:
    def test_filter_materializes_kept_columns_only(self):
        machine = SimMachine()
        table = Table.from_arrays(
            "t",
            a=np.arange(100, dtype=np.int32),
            b=np.arange(100, dtype=np.int32) * 2,
        )
        plan = QueryPlan(
            "f",
            (
                FilterStep(
                    source="t", output="f",
                    predicate=lambda t: t["a"] < 10,
                    scan_columns=("a",), keep=("b",),
                ),
                CountStep(source="f"),
            ),
        )
        with machine.context(PLAIN) as ctx:
            result = QueryExecutor().run(ctx, plan, {"t": table})
        assert result.count == 10

    def test_join_keeps_requested_columns(self):
        machine = SimMachine()
        left = Table.from_arrays(
            "l", k=np.arange(10, dtype=np.int32),
            v=np.arange(10, dtype=np.int32) * 7,
        )
        right = Table.from_arrays(
            "r",
            k=np.array([0, 0, 5, 9], dtype=np.int32),
            w=np.array([1, 2, 3, 4], dtype=np.int32),
        )
        plan = QueryPlan(
            "j",
            (
                JoinStep(
                    build="l", probe="r", build_key="k", probe_key="k",
                    output="o", keep_build=("v",), keep_probe=("w",),
                ),
                CountStep(source="o"),
            ),
        )
        with machine.context(PLAIN) as ctx:
            result = QueryExecutor().run(ctx, plan, {"l": left, "r": right})
        assert result.count == 4


class TestPipelinedExecution:
    @pytest.mark.parametrize("query", list(TPCH_QUERIES))
    def test_counts_identical(self, tpch, tpch_tables, query):
        machine = SimMachine()
        with machine.context(PLAIN, threads=4) as ctx:
            pipelined = QueryExecutor(pipelined=True).run(
                ctx, TPCH_QUERIES[query](), tpch_tables
            )
        assert pipelined.count == reference_count(tpch, query)

    def test_pipelined_never_slower(self, tpch_tables):
        for query in TPCH_QUERIES:
            def cycles(pipelined):
                machine = SimMachine()
                with machine.context(SGX, threads=16) as ctx:
                    return QueryExecutor(pipelined=pipelined).run(
                        ctx, TPCH_QUERIES[query](), tpch_tables
                    ).cycles

            assert cycles(True) <= cycles(False) * 1.0001

    def test_pipelined_saving_is_modest_with_static_enclave(self, tpch_tables):
        # The extension's finding: materialization is not the enclave's
        # bottleneck when the enclave is pre-sized.
        def cycles(pipelined):
            machine = SimMachine()
            with machine.context(SGX, threads=16) as ctx:
                return QueryExecutor(pipelined=pipelined).run(
                    ctx, TPCH_QUERIES["Q3"](), tpch_tables
                ).cycles

        saving = 1 - cycles(True) / cycles(False)
        assert 0 <= saving < 0.15
