"""The serving-workload subsystem: generators, policies, scheduler, engine."""

import random

import pytest

from repro.enclave.runtime import ExecutionSetting
from repro.errors import (
    BenchmarkError,
    ConfigurationError,
    ZeroLengthWindowError,
)
from repro.workload import (
    ClosedLoopStream,
    EpcAwarePolicy,
    FifoPolicy,
    JobCatalog,
    JobCost,
    JobKind,
    JobTemplate,
    OpenLoopStream,
    QueryMix,
    ResourceState,
    ServingEngine,
    WorkloadConfig,
    WorkloadScheduler,
    make_policy,
    percentile,
)

MB = 1_000_000

#: Synthetic priced costs: scheduler tests need no operator runs.
COSTS = {
    "small": JobCost("small", threads=1, service_s=0.01,
                     working_set_bytes=10 * MB),
    "big": JobCost("big", threads=4, service_s=0.10,
                   working_set_bytes=400 * MB),
}


def scheduler(policy="fifo", *, cores=8, epc=1_000 * MB, bypass=None):
    return WorkloadScheduler(
        COSTS,
        make_policy(policy, bypass_bytes=bypass),
        cores=cores,
        epc_budget_bytes=epc,
        setting_label="test",
    )


class TestPercentile:
    def test_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 50) == 20.0
        assert percentile(samples, 99) == 40.0
        assert percentile(samples, 0) == 10.0

    def test_extremes_hit_min_and_max(self):
        samples = [30.0, 10.0, 20.0, 40.0]
        assert percentile(samples, 0) == 10.0
        assert percentile(samples, 100) == 40.0

    def test_single_sample_is_every_percentile(self):
        for p in (0, 1, 50, 99, 100):
            assert percentile([7.5], p) == 7.5

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            percentile([], 50)
        with pytest.raises(BenchmarkError):
            percentile([1.0], 101)
        with pytest.raises(BenchmarkError):
            percentile([1.0], -0.1)

    def test_nan_rejected(self):
        # NaN is unordered: sorted([nan, ...]) leaves it wherever it
        # started, so a nearest-rank percentile would silently depend on
        # input order.  The poisoned sample must be an error, not a value.
        with pytest.raises(BenchmarkError, match="NaN"):
            percentile([1.0, float("nan"), 3.0], 50)
        with pytest.raises(BenchmarkError, match="NaN"):
            percentile([float("nan")], 99)

    def test_numpy_arrays_accepted(self):
        import numpy as np

        assert percentile(np.array([10.0, 20.0, 30.0, 40.0]), 50) == 20.0
        assert isinstance(percentile(np.array([7.5]), 99), float)


class TestQueryMix:
    def test_sampling_follows_weights(self):
        mix = QueryMix.of({"a": 3.0, "b": 1.0})
        rng = random.Random(0)
        draws = [mix.sample(rng) for _ in range(4000)]
        assert 0.70 < draws.count("a") / len(draws) < 0.80

    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            QueryMix.of({})
        with pytest.raises(ConfigurationError):
            QueryMix.of({"a": 0.0})


class TestStreams:
    def test_open_loop_deterministic_per_seed(self):
        mix = QueryMix.of({"small": 1.0})
        a = OpenLoopStream("s", qps=100.0, mix=mix, seed=7).arrivals(2.0)
        b = OpenLoopStream("s", qps=100.0, mix=mix, seed=7).arrivals(2.0)
        c = OpenLoopStream("s", qps=100.0, mix=mix, seed=8).arrivals(2.0)
        assert a == b
        assert a != c
        assert len(a) == pytest.approx(200, rel=0.3)
        assert all(0 <= arr.time_s < 2.0 for arr in a)

    def test_closed_loop_initial_arrivals(self):
        mix = QueryMix.of({"small": 1.0})
        stream = ClosedLoopStream("c", clients=5, think_s=0.1, mix=mix, seed=3)
        arrivals = stream.initial_arrivals(stream.session_rng())
        assert sorted(a.client for a in arrivals) == [0, 1, 2, 3, 4]
        assert all(0 <= a.time_s <= 0.1 for a in arrivals)

    def test_closed_loop_next_arrival_after_finish(self):
        mix = QueryMix.of({"small": 1.0})
        stream = ClosedLoopStream("c", clients=1, think_s=0.1, mix=mix)
        nxt = stream.next_arrival(stream.session_rng(), client=0,
                                  finished_at_s=5.0)
        assert nxt.time_s >= 5.0
        assert nxt.client == 0

    def test_stream_validation(self):
        mix = QueryMix.of({"small": 1.0})
        with pytest.raises(ConfigurationError):
            OpenLoopStream("s", qps=0.0, mix=mix)
        with pytest.raises(ConfigurationError):
            ClosedLoopStream("c", clients=0, think_s=0.1, mix=mix)


class TestPolicies:
    def state(self, free_cores=8, epc_used=0.0):
        return ResourceState(
            free_cores=free_cores,
            total_cores=8,
            epc_used_bytes=epc_used,
            epc_budget_bytes=500 * MB,
        )

    def pending(self, name="big"):
        from repro.workload.scheduler import PendingQuery

        cost = COSTS[name]
        return PendingQuery(
            query_id=0, stream="s", template=name, client=-1, arrival_s=0.0,
            threads=cost.threads, service_s=cost.service_s,
            working_set_bytes=cost.working_set_bytes,
        )

    def test_fifo_admits_overflow_with_penalty(self):
        from collections import deque

        queue = deque([self.pending("big")])
        decision = FifoPolicy().pick(queue, self.state(epc_used=300 * MB))
        assert decision is not None
        assert decision.overflow_bytes == 200 * MB  # 400 demanded, 200 left

    def test_epc_aware_holds_until_headroom(self):
        from collections import deque

        policy = EpcAwarePolicy()
        queue = deque([self.pending("big")])
        assert policy.pick(queue, self.state(epc_used=300 * MB)) is None
        assert policy.last_block_reason == "epc"
        decision = policy.pick(queue, self.state(epc_used=0.0))
        assert decision is not None and decision.overflow_bytes == 0

    def test_bypass_lane_jumps_blocked_head(self):
        from collections import deque

        policy = EpcAwarePolicy(bypass_bytes=50 * MB)
        queue = deque([self.pending("big"), self.pending("small")])
        decision = policy.pick(queue, self.state(epc_used=300 * MB))
        assert decision is not None
        assert decision.queue_index == 1
        assert decision.bypassed

    def test_make_policy(self):
        assert make_policy("fifo").label == "fifo"
        assert make_policy("epc-aware+bypass", bypass_bytes=1).label == \
            "epc-aware+bypass"
        with pytest.raises(ConfigurationError):
            make_policy("epc-aware+bypass")  # no threshold supplied
        with pytest.raises(ConfigurationError):
            make_policy("lifo")

    def test_squeezed_budget_never_yields_negative_headroom(self):
        from collections import deque

        # Regression: an EPC_SQUEEZE can shrink the budget below what
        # running queries already hold; headroom used to go negative,
        # over-penalising FIFO overflow accounting and making EpcAware
        # admission depend on sign conventions.
        state = ResourceState(
            free_cores=8,
            total_cores=8,
            epc_used_bytes=600 * MB,
            epc_budget_bytes=500 * MB,
        )
        assert state.epc_headroom_bytes == 0.0
        # FIFO overflow is capped at the query's whole demand.
        decision = FifoPolicy().pick(deque([self.pending("big")]), state)
        assert decision.overflow_bytes == self.pending("big").working_set_bytes
        # EpcAware holds the query instead of admitting on a negative.
        policy = EpcAwarePolicy()
        assert policy.pick(deque([self.pending("big")]), state) is None
        assert policy.last_block_reason == "epc"

    def test_bypass_threshold_validated_against_plausible_epc(self):
        from repro.workload.policies import MAX_BYPASS_BYTES

        # Regression: thresholds beyond any plausible EPC budget used to be
        # silently accepted, turning the "small-query" lane into a full
        # queue reorder.
        with pytest.raises(ConfigurationError):
            make_policy("fifo", bypass_bytes=MAX_BYPASS_BYTES + 1)
        with pytest.raises(ConfigurationError):
            EpcAwarePolicy(bypass_bytes=2 * MAX_BYPASS_BYTES)
        assert make_policy("fifo", bypass_bytes=MAX_BYPASS_BYTES) \
            .bypass_bytes == MAX_BYPASS_BYTES


class TestScheduler:
    MIX = QueryMix.of({"small": 0.7, "big": 0.3})

    def run(self, policy="fifo", *, epc=1_000 * MB, bypass=None, qps=120.0):
        return scheduler(policy, epc=epc, bypass=bypass).run(
            open_streams=(OpenLoopStream("t", qps=qps, mix=self.MIX, seed=5),),
            duration_s=2.0,
        )

    def test_every_arrival_completes(self):
        metrics = self.run()
        assert metrics.counters.arrivals == metrics.counters.completed
        assert len(metrics.records) == metrics.counters.completed
        assert metrics.counters.dispatched_immediately \
            + metrics.counters.queued == metrics.counters.arrivals

    def test_deterministic_given_seed(self):
        a, b = self.run(), self.run()
        assert a.records == b.records
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.epc_high_water_bytes == b.epc_high_water_bytes

    def test_records_internally_consistent(self):
        for r in self.run().records:
            assert r.arrival_s <= r.start_s < r.finish_s
            assert r.queue_wait_s >= 0
            assert r.service_s > 0

    def test_epc_aware_never_exceeds_budget(self):
        metrics = self.run("epc-aware", epc=500 * MB)
        assert metrics.epc_high_water_bytes <= 500 * MB
        assert metrics.counters.edmm_admissions == 0

    def test_fifo_overflows_and_pays(self):
        tight = self.run("fifo", epc=500 * MB)
        roomy = self.run("fifo", epc=100_000 * MB)
        assert tight.epc_high_water_bytes > 500 * MB
        assert tight.counters.edmm_admissions > 0
        # The overflow penalty stretches service times.
        assert tight.latency_percentile_s(99) > roomy.latency_percentile_s(99)

    def test_bypass_improves_small_query_latency(self):
        plain = self.run("epc-aware", epc=500 * MB)
        lane = self.run("epc-aware+bypass", epc=500 * MB, bypass=20 * MB)
        assert lane.counters.bypass_dispatches > 0
        assert lane.latency_percentile_s(99, template="small") < \
            plain.latency_percentile_s(99, template="small")

    def test_closed_loop_in_flight_never_exceeds_clients(self):
        mix = QueryMix.of({"small": 1.0})
        sched = WorkloadScheduler(
            {"small": COSTS["small"]},
            make_policy("fifo"),
            cores=2,
            epc_budget_bytes=1_000 * MB,
            setting_label="test",
        )
        metrics = sched.run(
            closed_streams=(
                ClosedLoopStream("c", clients=2, think_s=0.01, mix=mix, seed=2),
            ),
            duration_s=1.0,
        )
        events = sorted(
            [(r.arrival_s, 1) for r in metrics.records]
            + [(r.finish_s, -1) for r in metrics.records]
        )
        in_flight = peak = 0
        for _, delta in events:
            in_flight += delta
            peak = max(peak, in_flight)
        assert peak <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            scheduler(cores=0)
        with pytest.raises(ConfigurationError):
            scheduler(epc=0)
        with pytest.raises(ConfigurationError):
            scheduler(cores=2)  # big needs 4 threads
        with pytest.raises(ConfigurationError):
            scheduler().run(open_streams=(), duration_s=1.0)


class TestMetricsRegressions:
    """Regressions for the PR-1 serving-metrics bugs."""

    @staticmethod
    def record(query_id, stream, arrival_s, finish_s, start_s=None):
        from repro.workload.metrics import QueryRecord

        return QueryRecord(
            query_id=query_id,
            stream=stream,
            template="small",
            client=-1,
            arrival_s=arrival_s,
            start_s=arrival_s if start_s is None else start_s,
            finish_s=finish_s,
            working_set_bytes=MB,
        )

    @staticmethod
    def metrics(records):
        from repro.workload.metrics import WorkloadMetrics

        return WorkloadMetrics(
            setting_label="test", policy="fifo", records=records
        )

    def test_per_stream_qps_uses_stream_own_span(self):
        # Stream A serves 10 queries over [0, 10]; stream B starts only at
        # t=20 and serves 5 over [20, 30].  Dividing by the global makespan
        # (the old bug) would understate both streams' throughput.
        records = [
            self.record(i, "A", float(i), float(i) + 1.0) for i in range(10)
        ] + [
            self.record(10 + i, "B", 20.0 + 2.0 * i, 22.0 + 2.0 * i)
            for i in range(5)
        ]
        metrics = self.metrics(records)
        assert metrics.achieved_qps(stream="A") == pytest.approx(10 / 10.0)
        assert metrics.achieved_qps(stream="B") == pytest.approx(5 / 10.0)
        # The global rate still spans first arrival to last completion.
        assert metrics.achieved_qps() == pytest.approx(15 / 30.0)

    def test_makespan_anchored_at_first_arrival(self):
        # Every query arrives at t=5: the 5 idle lead-in seconds are not
        # serving time (the docstring always said so; the code disagreed).
        records = [self.record(i, "A", 5.0, 15.0) for i in range(3)]
        metrics = self.metrics(records)
        assert metrics.makespan_s == pytest.approx(10.0)
        assert metrics.achieved_qps() == pytest.approx(3 / 10.0)

    def test_zero_query_summary_does_not_raise(self):
        metrics = self.metrics([])
        digest = metrics.summary()
        assert "0 queries" in digest
        assert "fifo" in digest

    def test_empty_rate_still_raises(self):
        with pytest.raises(BenchmarkError):
            self.metrics([]).achieved_qps()
        with pytest.raises(BenchmarkError):
            self.metrics([self.record(0, "A", 0.0, 1.0)]).achieved_qps(
                stream="ghost"
            )


class TestJobs:
    def test_template_validation(self):
        with pytest.raises(ConfigurationError):
            JobTemplate("bad", JobKind.TPCH, query="Q99")
        with pytest.raises(ConfigurationError):
            JobTemplate("bad", JobKind.JOIN, build_bytes=0, probe_bytes=1)
        with pytest.raises(ConfigurationError):
            JobTemplate("bad", JobKind.SCAN, scan_bytes=0)
        with pytest.raises(ConfigurationError):
            JobTemplate("bad", JobKind.SCAN, threads=0, scan_bytes=1)

    def test_catalog_prices_and_caches(self):
        catalog = JobCatalog(quick=True)
        template = JobTemplate("tiny-scan", JobKind.SCAN, threads=1,
                               scan_bytes=4e6)
        first = catalog.profile(template)
        assert catalog.profile(template) is first  # cached
        plain = catalog.cost(template, ExecutionSetting.plain_cpu())
        sgx = catalog.cost(template, ExecutionSetting.sgx_data_in_enclave())
        assert plain.service_s > 0
        assert sgx.service_s >= plain.service_s
        assert sgx.working_set_bytes > 0

    def test_unpriced_setting_rejected(self):
        from repro.workload.jobs import JobProfile

        profile = JobProfile("x", threads=1, working_set_bytes=0,
                             service_seconds_by_setting={})
        with pytest.raises(ConfigurationError):
            profile.service_seconds(ExecutionSetting.plain_cpu())


class TestServingEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        templates = {
            "tiny-scan": JobTemplate("tiny-scan", JobKind.SCAN, threads=1,
                                     scan_bytes=4e6),
        }
        return ServingEngine(JobCatalog(quick=True), templates)

    def config(self, setting, **kwargs):
        mix = QueryMix.of({"tiny-scan": 1.0})
        return WorkloadConfig(
            setting=setting,
            open_streams=(OpenLoopStream("t", qps=50.0, mix=mix, seed=9),),
            duration_s=2.0,
            cores=4,
            **kwargs,
        )

    def test_run_is_deterministic(self, engine):
        config = self.config(ExecutionSetting.sgx_data_in_enclave())
        a, b = engine.run(config), engine.run(config)
        assert a.records == b.records
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_epc_budget_defaults(self, engine):
        import math

        plain = self.config(ExecutionSetting.plain_cpu())
        sgx = self.config(ExecutionSetting.sgx_data_in_enclave())
        capped = self.config(ExecutionSetting.sgx_data_in_enclave(),
                             epc_budget_bytes=123.0)
        assert engine.epc_budget(plain) == math.inf
        assert engine.epc_budget(sgx) == 64 * 2**30  # socket EPC (Table 1)
        assert engine.epc_budget(capped) == 123.0

    def test_unknown_template_rejected(self, engine):
        mix = QueryMix.of({"no-such": 1.0})
        config = WorkloadConfig(
            setting=ExecutionSetting.plain_cpu(),
            open_streams=(OpenLoopStream("t", qps=1.0, mix=mix),),
        )
        with pytest.raises(ConfigurationError):
            engine.run(config)

    def test_config_validation(self):
        mix = QueryMix.of({"tiny-scan": 1.0})
        with pytest.raises(ConfigurationError):
            WorkloadConfig(setting=ExecutionSetting.plain_cpu())
        with pytest.raises(ConfigurationError):
            WorkloadConfig(
                setting=ExecutionSetting.plain_cpu(),
                open_streams=(
                    OpenLoopStream("dup", qps=1.0, mix=mix),
                    OpenLoopStream("dup", qps=2.0, mix=mix),
                ),
            )


from repro.workload.metrics import (  # noqa: E402
    FailureRecord,
    MetricsRegistry,
    QueryRecord,
    SchedulerCounters,
    WorkloadMetrics,
)


def _record(query_id, arrival_s, finish_s, stream="t"):
    return QueryRecord(
        query_id=query_id,
        stream=stream,
        template="small",
        client=0,
        arrival_s=arrival_s,
        start_s=arrival_s,
        finish_s=finish_s,
        working_set_bytes=MB,
    )


def _failure(query_id, arrival_s, stream="t"):
    return FailureRecord(
        query_id=query_id,
        stream=stream,
        template="small",
        client=0,
        arrival_s=arrival_s,
        failed_s=arrival_s + 1.0,
        attempts=1,
        outcome="shed",
    )


class TestSloAttainment:
    def metrics(self):
        counters = SchedulerCounters()
        counters.completed = 3
        return WorkloadMetrics(
            setting_label="test",
            policy="fifo",
            records=[
                _record(1, 0.0, 0.01),
                _record(2, 0.0, 0.05),
                _record(3, 0.0, 0.50, stream="u"),
            ],
            counters=counters,
            failures=[_failure(4, 0.0)],
        )

    def test_counts_failures_against_attainment(self):
        metrics = self.metrics()
        # Of 4 resolved queries, 2 finish within 100 ms (the failure and
        # the 500 ms straggler miss).
        assert metrics.slo_attainment(0.1) == pytest.approx(0.5)
        assert metrics.slo_attainment(1.0) == pytest.approx(0.75)

    def test_stream_filter(self):
        metrics = self.metrics()
        # Stream "t": records at 10/50 ms plus the shed query.
        assert metrics.slo_attainment(0.1, stream="t") == pytest.approx(2 / 3)
        assert metrics.slo_attainment(0.1, stream="u") == 0.0

    def test_empty_slice_is_perfect(self):
        metrics = self.metrics()
        assert metrics.slo_attainment(0.1, stream="ghost") == 1.0

    def test_non_positive_threshold_rejected(self):
        with pytest.raises(BenchmarkError):
            self.metrics().slo_attainment(0.0)


class TestMetricsRegistry:
    def shard_metrics(self, base, n=3, stream="t"):
        counters = SchedulerCounters()
        counters.arrivals = counters.completed = n
        return WorkloadMetrics(
            setting_label="test",
            policy="fifo",
            records=[
                _record(base + i, 0.01 * i, 0.01 * i + 0.005, stream=stream)
                for i in range(n)
            ],
            counters=counters,
            epc_budget_bytes=100.0,
            epc_high_water_bytes=10,
            duration_s=1.0 + base / 1000.0,
        )

    def test_merge_is_registration_order_independent(self):
        # The --jobs N guarantee: whatever order shard results arrive in,
        # the merged view is identical.
        a, b, c = (self.shard_metrics(base) for base in (0, 100, 200))
        forward = MetricsRegistry()
        for label, m in (("s0", a), ("s1", b), ("s2", c)):
            forward.register(label, m)
        backward = MetricsRegistry()
        for label, m in (("s2", c), ("s0", a), ("s1", b)):
            backward.register(label, m)
        first, second = forward.merged(), backward.merged()
        assert first.records == second.records
        assert first.failures == second.failures
        assert vars(first.counters) == vars(second.counters)
        assert first.epc_budget_bytes == second.epc_budget_bytes == 300.0
        assert first.duration_s == second.duration_s == 1.2

    def test_merge_sorts_by_arrival_then_query_id(self):
        registry = MetricsRegistry()
        registry.register("s1", self.shard_metrics(100))
        registry.register("s0", self.shard_metrics(0))
        merged = registry.merged()
        keys = [(r.arrival_s, r.query_id) for r in merged.records]
        assert keys == sorted(keys)

    def test_counters_sum_across_shards(self):
        registry = MetricsRegistry()
        registry.register("s0", self.shard_metrics(0, n=2))
        registry.register("s1", self.shard_metrics(100, n=5))
        assert registry.merged().counters.completed == 7

    def test_duplicate_and_empty_labels_rejected(self):
        registry = MetricsRegistry()
        registry.register("s0", self.shard_metrics(0))
        with pytest.raises(BenchmarkError):
            registry.register("s0", self.shard_metrics(100))
        with pytest.raises(BenchmarkError):
            registry.register("", self.shard_metrics(100))

    def test_empty_registry_cannot_merge(self):
        with pytest.raises(BenchmarkError):
            MetricsRegistry().merged()

    def test_unknown_shard_lookup_rejected(self):
        with pytest.raises(BenchmarkError):
            MetricsRegistry().shard("ghost")


class TestZeroLengthWindows:
    """A run whose records exist but span zero time: rates are undefined,
    digests must survive."""

    def metrics(self, *, failures=()):
        counters = SchedulerCounters()
        counters.completed = 1
        return WorkloadMetrics(
            setting_label="test",
            policy="fifo",
            records=[_record(1, 5.0, 5.0)],  # instantaneous completion
            counters=counters,
            failures=list(failures),
        )

    def test_achieved_qps_raises_distinct_error(self):
        with pytest.raises(ZeroLengthWindowError):
            self.metrics().achieved_qps()
        # ...which is still a BenchmarkError, so existing handlers hold.
        with pytest.raises(BenchmarkError):
            self.metrics().achieved_qps()

    def test_goodput_qps_raises_distinct_error(self):
        with pytest.raises(ZeroLengthWindowError):
            self.metrics().goodput_qps()

    def test_goodput_failures_can_widen_the_window(self):
        # A failure resolving later than the instantaneous record gives
        # goodput a real window again: no error, rated over the failure's
        # span.
        metrics = self.metrics(failures=[_failure(2, 5.0)])  # fails at 6.0
        assert metrics.goodput_qps() == pytest.approx(1.0)

    def test_summary_survives(self):
        digest = self.metrics().summary()
        assert "zero-length window" in digest
        assert "1 queries" in digest

    def test_fault_summary_survives(self):
        digest = self.metrics().fault_summary()
        assert "zero-length window" in digest

    def test_empty_still_plain_benchmark_error(self):
        # No records at all stays the historical BenchmarkError, not the
        # zero-length-window flavor: nothing happened vs. rate undefined.
        try:
            WorkloadMetrics(
                setting_label="test", policy="fifo", records=[]
            ).achieved_qps()
        except ZeroLengthWindowError:  # pragma: no cover - regression trap
            pytest.fail("empty metrics must not raise ZeroLengthWindowError")
        except BenchmarkError:
            pass


class TestMergedLabelGuards:
    """merged() must not silently stamp one shard's labels onto another."""

    def shard(self, base, *, setting_label="sgx", policy="fifo"):
        counters = SchedulerCounters()
        counters.arrivals = counters.completed = 2
        return WorkloadMetrics(
            setting_label=setting_label,
            policy=policy,
            records=[
                _record(base + i, 0.01 * i, 0.01 * i + 0.005)
                for i in range(2)
            ],
            counters=counters,
        )

    def test_mixed_setting_labels_rejected(self):
        registry = MetricsRegistry()
        registry.register("s0", self.shard(0, setting_label="sgx"))
        registry.register("s1", self.shard(100, setting_label="native"))
        with pytest.raises(BenchmarkError, match="setting_label"):
            registry.merged()

    def test_mixed_policies_rejected(self):
        registry = MetricsRegistry()
        registry.register("s0", self.shard(0, policy="fifo"))
        registry.register("s1", self.shard(100, policy="epc-aware"))
        with pytest.raises(BenchmarkError, match="policy"):
            registry.merged()

    def test_explicit_override_merges_anyway(self):
        registry = MetricsRegistry()
        registry.register("s0", self.shard(0, setting_label="sgx"))
        registry.register("s1", self.shard(100, setting_label="native"))
        merged = registry.merged(setting_label="mixed")
        assert merged.setting_label == "mixed"
        assert len(merged.records) == 4

    def test_agreeing_shards_merge_without_override(self):
        registry = MetricsRegistry()
        registry.register("s0", self.shard(0))
        registry.register("s1", self.shard(100))
        merged = registry.merged()
        assert merged.setting_label == "sgx"
        assert merged.policy == "fifo"


class TestEngineClusterChannel:
    """The engine's cluster resolution: explicit, ambient, spec string."""

    def config(self, **overrides):
        from repro.enclave.runtime import ExecutionSetting

        base = dict(
            setting=ExecutionSetting.sgx_data_in_enclave(),
            open_streams=(
                OpenLoopStream(
                    "t", qps=200.0, mix=QueryMix.of({"scan-small": 1.0}),
                    seed=3,
                ),
            ),
            duration_s=1.0,
            policy="fifo",
        )
        base.update(overrides)
        return WorkloadConfig(**base)

    def test_ambient_cluster_matches_explicit(self):
        from repro.cluster import ClusterConfig, use_cluster

        engine = ServingEngine(JobCatalog(quick=True))
        cluster = ClusterConfig.parse("2x2")
        explicit = engine.run(self.config(cluster=cluster))
        with use_cluster(cluster):
            ambient = engine.run(self.config())
        assert explicit.records == ambient.records
        assert vars(explicit.counters) == vars(ambient.counters)

    def test_spec_string_parses_like_a_config(self):
        from repro.cluster import ClusterConfig

        engine = ServingEngine(JobCatalog(quick=True))
        by_string = engine.run(self.config(cluster="2x2"))
        by_config = engine.run(
            self.config(cluster=ClusterConfig.parse("2x2"))
        )
        assert by_string.records == by_config.records

    def test_run_returns_the_merged_cluster_metrics(self):
        engine = ServingEngine(JobCatalog(quick=True))
        run_metrics = engine.run(self.config(cluster="2x2"))
        result = engine.run_cluster(self.config(cluster="2x2"))
        assert run_metrics.records == result.metrics.records
        assert len(result.registry.labels) == 4

    def test_bad_cluster_type_rejected(self):
        engine = ServingEngine(JobCatalog(quick=True))
        with pytest.raises(ConfigurationError):
            engine.cluster_of(self.config(cluster=42))

    def test_without_cluster_nothing_changes(self):
        engine = ServingEngine(JobCatalog(quick=True))
        assert engine.cluster_of(self.config()) is None
        with pytest.raises(ConfigurationError):
            engine.run_cluster(self.config())
