"""wl06 golden-shape checks and the cluster determinism gate."""

from repro.bench.experiments.wl06_cluster_scaleout import SLO_MS
from repro.bench.parallel import run_session
from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.cache import MemoStore, experiment_key
from repro.cluster import ClusterConfig

# One quick wl06 run shared across the module (deterministic per seed).
_cache = {}


def report_for(experiment_id):
    if experiment_id not in _cache:
        _cache[experiment_id] = run_experiment(experiment_id, quick=True)
    return _cache[experiment_id]


class TestWl06Registered:
    def test_wl06_in_registry(self):
        assert "wl06" in EXPERIMENTS


class TestWl06ScaleOutSweep:
    def test_all_sweep_points_reported(self):
        report = report_for("wl06")
        for shards in (1, 2, 4, 8):
            assert report.value("scale-out p99", shards) > 0
            assert report.value("scale-out achieved", shards) > 0

    def test_single_enclave_baseline_saturates(self):
        report = report_for("wl06")
        # The offered load exceeds one socket: the 1-shard arm's tail
        # blows through the SLO and most queries miss it.
        assert report.value("scale-out p99", 1) > 3 * SLO_MS
        assert report.value("scale-out SLO attainment", 1) < 0.5
        # Goodput plateaus below what the sharded pools complete.
        assert report.value("scale-out goodput", 1) < \
            0.8 * report.value("scale-out goodput", 8)

    def test_eight_shards_sustain_10k_qps_inside_the_slo(self):
        report = report_for("wl06")
        assert report.value("scale-out achieved", 8) >= 10_000
        assert report.value("scale-out p99", 8) < SLO_MS
        assert report.value("scale-out SLO attainment", 8) > 0.95


class TestWl06Skew:
    def test_load_aware_rescues_the_hot_tenant(self):
        report = report_for("wl06")
        hash_p99 = report.value("skew hot-tenant p99", "hash")
        aware_p99 = report.value("skew hot-tenant p99", "load-aware")
        assert hash_p99 > 5 * aware_p99
        assert report.value("skew SLO attainment", "load-aware") > \
            report.value("skew SLO attainment", "hash")

    def test_load_aware_pays_for_shuffles(self):
        report = report_for("wl06")
        assert report.value("skew shuffle time", "hash") == 0.0
        assert report.value("skew shuffle time", "load-aware") > 0.0


class TestWl06Failover:
    def test_failover_recovers_availability(self):
        report = report_for("wl06")
        assert report.value("crash availability", "failover") == 1.0
        assert report.value("crash availability", "no-failover") < 0.99

    def test_failover_arm_still_clears_10k_qps(self):
        report = report_for("wl06")
        assert report.value("crash goodput", "failover") >= 10_000


class TestWl06Elastic:
    def test_elastic_pool_absorbs_the_peak(self):
        report = report_for("wl06")
        assert report.value("elastic p99", "elastic") < \
            0.5 * report.value("elastic p99", "static-2")
        assert report.value("elastic SLO attainment", "elastic") > \
            report.value("elastic SLO attainment", "static-2")

    def test_pool_sizes_respect_their_ceilings(self):
        report = report_for("wl06")
        assert report.value("elastic peak shards", "elastic") > 2
        assert report.value("elastic peak shards", "static-2") == 2


class TestWl06Determinism:
    def test_repeat_runs_are_identical(self):
        first = report_for("wl06")
        second = run_experiment("wl06", quick=True)
        assert [(r.series, r.x, r.value) for r in first.rows] == \
            [(r.series, r.x, r.value) for r in second.rows]
        assert first.notes == second.notes


class TestClusterDeterminismGate:
    """Serial == --jobs N == cached replay under --cluster 2x4 --seed 7."""

    def test_serial_parallel_and_replay_agree(self, tmp_path):
        cluster = ClusterConfig.parse("2x4")
        ids = ["wl01", "tab01"]  # two pending: exercises the spawn pool
        serial = run_session(ids, base_seed=7, cluster=cluster)
        store = MemoStore(tmp_path / "cache")
        cold = run_session(
            ids, jobs=2, base_seed=7, cluster=cluster, cache=store
        )
        warm = run_session(
            ids, jobs=2, base_seed=7, cluster=cluster, cache=store
        )
        for runs in zip(serial.runs, cold.runs, warm.runs):
            texts = {run.report.to_csv() for run in runs}
            assert len(texts) == 1
        assert all(run.from_cache for run in warm.runs)
        assert not any(run.from_cache for run in cold.runs)

    def test_cluster_rotates_the_cache_key(self):
        plain = experiment_key("wl01", quick=True, base_seed=7)
        sharded = experiment_key(
            "wl01", quick=True, base_seed=7,
            cluster=ClusterConfig.parse("2x4"),
        )
        other = experiment_key(
            "wl01", quick=True, base_seed=7,
            cluster=ClusterConfig.parse("2x4:load-aware"),
        )
        assert len({plain, sharded, other}) == 3

    def test_ambient_cluster_reshapes_wl01(self):
        sharded = run_experiment(
            "wl01", quick=True, base_seed=7,
            cluster=ClusterConfig.parse("2x4"),
        )
        plain = run_experiment("wl01", quick=True, base_seed=7)
        assert [(r.series, r.x, r.value) for r in sharded.rows] != \
            [(r.series, r.x, r.value) for r in plain.rows]
