"""All five joins produce the exact reference match count and pairs."""

import numpy as np
import pytest

from repro.core.joins import (
    ALL_JOINS,
    CrkJoin,
    IndexNestedLoopJoin,
    JoinAlgorithm,
    ParallelHashJoin,
    RadixJoin,
    SortMergeJoin,
)
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.tables import Table, generate_join_relation_pair
from repro.tables.table import Column


@pytest.fixture(params=ALL_JOINS, ids=lambda cls: cls.name)
def join_cls(request):
    return request.param


def run_join(machine, join, build, probe, setting=None, threads=4, **kw):
    setting = setting or ExecutionSetting.plain_cpu()
    with machine.context(setting, threads=threads) as ctx:
        return join.run(ctx, build, probe, **kw)


class TestMatchCounts:
    def test_full_fk_join(self, machine, join_cls, small_join_tables):
        build, probe = small_join_tables
        result = run_join(machine, join_cls(), build, probe)
        # Every probe tuple references an existing build key.
        assert result.matches == probe.num_rows

    def test_partial_matches(self, machine, join_cls, rng):
        build = Table.from_arrays(
            "R",
            key=np.arange(0, 2000, 2, dtype=np.int64),  # even keys only
            payload=rng.integers(0, 100, 1000),
        )
        probe_keys = rng.integers(0, 2000, 5000)
        probe = Table.from_arrays(
            "S", key=probe_keys, payload=rng.integers(0, 100, 5000)
        )
        expected = int((probe_keys % 2 == 0).sum())
        result = run_join(machine, join_cls(), build, probe)
        assert result.matches == expected
        assert result.matches == JoinAlgorithm.reference_match_count(build, probe)

    def test_no_matches(self, machine, join_cls, rng):
        build = Table.from_arrays(
            "R", key=np.arange(100, dtype=np.int64), payload=np.zeros(100)
        )
        probe = Table.from_arrays(
            "S",
            key=np.arange(1000, 1100, dtype=np.int64),
            payload=np.zeros(100),
        )
        result = run_join(machine, join_cls(), build, probe)
        assert result.matches == 0

    def test_match_index_points_to_matching_rows(
        self, machine, join_cls, small_join_tables
    ):
        build, probe = small_join_tables
        result = run_join(machine, join_cls(), build, probe)
        index = result.match_index
        hits = index >= 0
        assert (build["key"][index[hits]] == probe["key"][hits]).all()

    def test_agreement_across_settings(self, machine, join_cls, small_join_tables):
        build, probe = small_join_tables
        counts = set()
        for setting in ExecutionSetting.all_settings():
            result = run_join(machine, join_cls(), build, probe, setting)
            counts.add(result.matches)
        assert len(counts) == 1


class TestMaterialization:
    @pytest.mark.parametrize("join_cls", ALL_JOINS, ids=lambda c: c.name)
    def test_output_pairs_correct(self, machine, join_cls, rng):
        build = Table.from_arrays(
            "R",
            key=rng.permutation(500).astype(np.int64),
            payload=rng.integers(0, 1 << 20, 500),
        )
        probe_idx = rng.integers(0, 500, 2000)
        probe = Table.from_arrays(
            "S",
            key=build["key"][probe_idx],
            payload=rng.integers(0, 1 << 20, 2000),
        )
        result = run_join(machine, join_cls(), build, probe, materialize=True)
        output = result.output
        assert output is not None
        assert output.num_rows == result.matches == 2000
        # The r_payload of each output row must be the payload of the build
        # tuple whose key equals the output key.
        key_to_payload = dict(zip(build["key"].tolist(), build["payload"].tolist()))
        for key, r_payload in zip(
            output["key"][:50].tolist(), output["r_payload"][:50].tolist()
        ):
            assert key_to_payload[key] == r_payload

    def test_materialization_costs_time(self, machine, small_join_tables):
        build, probe = small_join_tables
        bare = run_join(machine, RadixJoin(), build, probe)
        fresh = type(machine)(machine.spec, machine.params)
        mat = run_join(fresh, RadixJoin(), build, probe, materialize=True)
        assert mat.cycles > bare.cycles


class TestValidation:
    def test_missing_key_column_rejected(self, machine):
        bad = Table.from_arrays("R", notkey=np.arange(3))
        good = Table.from_arrays(
            "S", key=np.arange(3, dtype=np.int64), payload=np.arange(3)
        )
        with machine.context(ExecutionSetting.plain_cpu()) as ctx:
            with pytest.raises(ConfigurationError):
                RadixJoin().run(ctx, bad, good)

    def test_throughput_metric_counts_both_inputs(self, machine, small_join_tables):
        build, probe = small_join_tables
        result = run_join(machine, SortMergeJoin(), build, probe)
        assert result.input_rows == pytest.approx(
            build.logical_rows + probe.logical_rows
        )
        assert result.throughput_rows_per_s(machine.frequency_hz) > 0


class TestAlgorithmSpecifics:
    def test_rho_radix_bits_auto_scale(self, small_join_tables):
        build, _ = small_join_tables
        bits = RadixJoin().choose_radix_bits(build)
        # 100 MB build at 640 KB targets -> 2^8 partitions.
        assert bits == 8

    def test_rho_explicit_bits_respected(self, small_join_tables):
        build, _ = small_join_tables
        assert RadixJoin(radix_bits=4).choose_radix_bits(build) == 4

    def test_crkjoin_cracks_deeper_than_rho(self, small_join_tables):
        build, _ = small_join_tables
        assert CrkJoin().choose_radix_bits(build) > RadixJoin().choose_radix_bits(
            build
        )

    def test_rho_phases_present(self, machine, small_join_tables):
        build, probe = small_join_tables
        result = run_join(machine, RadixJoin(), build, probe)
        for phase in ("hist1", "copy1", "hist2", "copy2", "build", "join"):
            assert phase in result.phase_cycles

    def test_pht_phases_present(self, machine, small_join_tables):
        build, probe = small_join_tables
        result = run_join(machine, ParallelHashJoin(), build, probe)
        assert set(result.phase_cycles) == {"build", "probe"}

    def test_inl_uses_btree_semantics(self, machine, rng):
        # INL must behave like an index lookup: duplicate probe keys all hit.
        build = Table.from_arrays(
            "R", key=np.arange(100, dtype=np.int64), payload=np.arange(100)
        )
        probe = Table.from_arrays(
            "S",
            key=np.full(50, 7, dtype=np.int64),
            payload=np.zeros(50),
        )
        result = run_join(machine, IndexNestedLoopJoin(), build, probe)
        assert result.matches == 50
