"""The repro.trace subsystem: records, tracer, exporters, breakdowns."""

import json

import pytest

from repro.errors import BenchmarkError
from repro.trace import (
    Counter,
    Event,
    Gauge,
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    phase_breakdown,
    read_jsonl,
    record_from_dict,
    serving_breakdown,
    serving_runs,
    tee,
    to_csv,
    to_jsonl,
    use_tracer,
    write_csv,
    write_jsonl,
)
from repro.workload import (
    JobCost,
    OpenLoopStream,
    QueryMix,
    WorkloadScheduler,
    make_policy,
)

MB = 1_000_000

COSTS = {
    "small": JobCost("small", threads=1, service_s=0.01,
                     working_set_bytes=10 * MB),
    "big": JobCost("big", threads=4, service_s=0.10,
                   working_set_bytes=400 * MB),
}


def traced_run(policy="fifo", *, epc=300 * MB, qps=150.0, seed=5):
    """One serving run under a fresh tracer; returns (tracer, metrics)."""
    scheduler = WorkloadScheduler(
        COSTS,
        make_policy(policy),
        cores=8,
        epc_budget_bytes=epc,
        setting_label="test",
    )
    mix = QueryMix.of({"small": 0.7, "big": 0.3})
    tracer = Tracer()
    with use_tracer(tracer):
        metrics = scheduler.run(
            open_streams=(OpenLoopStream("t", qps=qps, mix=mix, seed=seed),),
            duration_s=2.0,
        )
    return tracer, metrics


class TestRecords:
    def test_round_trip_each_kind(self):
        records = [
            Span("hist1", category="operator-phase", start=0.0,
                 duration=123.5, attrs={"setting": "Plain CPU"}),
            Event("query.arrival", time_s=1.5, attrs={"query_id": 7}),
            Event("enclave.init", time_s=None, attrs={"heap_bytes": 42}),
            Counter("enclave.allocations", 3),
            Gauge("scheduler.epc_high_water_bytes", 1e9),
        ]
        for record in records:
            rebuilt = record_from_dict(json.loads(json.dumps(record.as_dict())))
            assert rebuilt == record

    def test_span_end(self):
        span = Span("x", category="c", start=10.0, duration=5.0)
        assert span.end == 15.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(BenchmarkError):
            record_from_dict({"kind": "nope", "name": "x"})
        with pytest.raises(BenchmarkError):
            record_from_dict({"name": "missing kind"})


class TestTracer:
    def test_null_tracer_is_default_and_inert(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        NULL_TRACER.event("ignored")
        NULL_TRACER.count("ignored")
        assert NULL_TRACER.snapshot() == []

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with use_tracer(Tracer()) as inner:
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_counters_and_gauges_registry(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits", 2)
        tracer.gauge("level", 1.0)
        tracer.gauge("level", 3.0)
        assert tracer.counters == {"hits": 3}
        assert tracer.gauges == {"level": 3.0}
        snapshot = tracer.snapshot()
        assert Counter("hits", 3) in snapshot
        assert Gauge("level", 3.0) in snapshot

    def test_tee_records_into_all_enabled_children(self):
        a, b = Tracer(), Tracer()
        combined = tee(a, NULL_TRACER, b, None)
        combined.event("e", time_s=1.0)
        combined.count("c")
        assert len(a) == len(b) == 1
        assert a.counters == b.counters == {"c": 1}

    def test_tee_collapses_to_single_or_null(self):
        only = Tracer()
        assert tee(only, NULL_TRACER) is only
        assert tee(NULL_TRACER, None) is NULL_TRACER


class TestExporters:
    def test_jsonl_round_trip_to_breakdown(self, tmp_path):
        tracer, _ = traced_run()
        path = write_jsonl(tracer, tmp_path / "run.trace.jsonl")
        rebuilt = read_jsonl(path)
        assert rebuilt == tracer.snapshot()
        # The reporter reproduces the same decomposition from the file.
        direct = serving_breakdown(tracer)
        from_file = serving_breakdown(rebuilt)
        assert from_file == direct
        assert from_file.total_s > 0

    def test_csv_has_one_row_per_record(self):
        tracer, _ = traced_run()
        lines = to_csv(tracer).strip().splitlines()
        assert lines[0].startswith("kind,name,category")
        assert len(lines) == 1 + len(tracer.snapshot())

    def test_csv_uses_unix_line_endings(self):
        # csv.DictWriter defaults to "\r\n": mixed-EOL trace exports broke
        # byte-level golden comparisons on non-Windows platforms.
        tracer, _ = traced_run()
        text = to_csv(tracer)
        assert "\r" not in text
        assert text.endswith("\n")

    def test_csv_export_is_byte_deterministic(self, tmp_path):
        first, _ = traced_run(seed=5)
        second, _ = traced_run(seed=5)
        assert to_csv(first).encode() == to_csv(second).encode()
        path = write_csv(first, tmp_path / "run.trace.csv")
        assert path.read_bytes() == to_csv(first).encode()

    def test_empty_tracer_exports_empty(self):
        assert to_jsonl(Tracer()) == ""
        assert read_jsonl([]) == []

    def test_malformed_jsonl_rejected(self):
        with pytest.raises(BenchmarkError):
            read_jsonl(["not json at all {"])


class TestDeterminism:
    def test_two_traced_runs_same_seed_identical(self):
        first, _ = traced_run(seed=5)
        second, _ = traced_run(seed=5)
        assert to_jsonl(first) == to_jsonl(second)

    def test_different_seed_differs(self):
        first, _ = traced_run(seed=5)
        second, _ = traced_run(seed=6)
        assert to_jsonl(first) != to_jsonl(second)

    def test_tracing_does_not_change_results(self):
        _, traced = traced_run(seed=5)
        scheduler = WorkloadScheduler(
            COSTS,
            make_policy("fifo"),
            cores=8,
            epc_budget_bytes=300 * MB,
            setting_label="test",
        )
        mix = QueryMix.of({"small": 0.7, "big": 0.3})
        untraced = scheduler.run(
            open_streams=(OpenLoopStream("t", qps=150.0, mix=mix, seed=5),),
            duration_s=2.0,
        )
        assert untraced.records == traced.records
        assert untraced.counters.as_dict() == traced.counters.as_dict()


class TestTracedExperimentOutput:
    def test_traced_report_bit_identical_to_untraced(self):
        from repro.bench.registry import run_experiment

        plain = run_experiment("fig06", quick=True)
        traced_tracer = Tracer()
        traced = run_experiment("fig06", quick=True, tracer=traced_tracer)
        assert [(r.series, r.x, r.value) for r in plain.rows] == \
            [(r.series, r.x, r.value) for r in traced.rows]
        assert len(traced_tracer) > 0


class TestServingBreakdown:
    def test_buckets_sum_to_total_attributed_time(self):
        tracer, metrics = traced_run()
        breakdown = serving_breakdown(tracer)
        assert breakdown.completed == metrics.counters.completed
        assert breakdown.dispatched == metrics.counters.completed
        total = sum(
            (r.queue_wait_s + r.service_s) for r in metrics.records
        )
        assert breakdown.total_s == pytest.approx(total, rel=1e-9)
        shares = breakdown.fractions()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_edmm_penalty_only_under_overflow(self):
        overflowing, _ = traced_run("fifo", epc=300 * MB)
        roomy, _ = traced_run("fifo", epc=100_000 * MB)
        assert serving_breakdown(overflowing).edmm_penalty_s > 0
        assert serving_breakdown(roomy).edmm_penalty_s == 0

    def test_stream_filter(self):
        tracer, metrics = traced_run()
        all_streams = serving_breakdown(tracer)
        only = serving_breakdown(tracer, stream="t")
        none = serving_breakdown(tracer, stream="ghost")
        assert only == all_streams
        assert none.completed == 0 and none.total_s == 0

    def test_serving_runs_segments_multi_run_traces(self):
        tracer = Tracer()
        with use_tracer(tracer):
            for seed in (5, 6):
                scheduler = WorkloadScheduler(
                    COSTS,
                    make_policy("fifo"),
                    cores=8,
                    epc_budget_bytes=300 * MB,
                    setting_label=f"run-{seed}",
                )
                mix = QueryMix.of({"small": 1.0})
                scheduler.run(
                    open_streams=(
                        OpenLoopStream("t", qps=100.0, mix=mix, seed=seed),
                    ),
                    duration_s=1.0,
                )
        runs = serving_runs(tracer)
        assert len(runs) == 2
        assert [attrs["setting"] for attrs, _ in runs] == ["run-5", "run-6"]
        assert all(b.completed > 0 for _, b in runs)

    def test_empty_trace_yields_zero_breakdown(self):
        breakdown = serving_breakdown([])
        assert breakdown.total_s == 0
        assert set(breakdown.fractions().values()) == {0.0}


class TestPhaseBreakdown:
    def test_matches_executor_trace_exactly(self):
        from repro.core.joins import RadixJoin
        from repro.enclave.runtime import ExecutionSetting
        from repro.machine import SimMachine
        from repro.tables import generate_join_relation_pair

        machine = SimMachine()
        build, probe = generate_join_relation_pair(
            8e6, 32e6, seed=3, physical_row_cap=20_000
        )
        tracer = Tracer()
        with use_tracer(tracer):
            with machine.context(
                ExecutionSetting.sgx_data_in_enclave(), threads=1
            ) as ctx:
                result = RadixJoin().run(ctx, build, probe)
        phases = phase_breakdown(tracer)
        assert phases == result.phase_cycles
        assert sum(phases.values()) == pytest.approx(result.cycles)

    def test_setting_filter(self):
        tracer = Tracer()
        tracer.span("scan", category="operator-phase", start=0, duration=10.0,
                    setting="Plain CPU")
        tracer.span("scan", category="operator-phase", start=0, duration=99.0,
                    setting="SGX (Data in Enclave)")
        tracer.span("not-a-phase", category="other", start=0, duration=1.0)
        assert phase_breakdown(tracer, setting="Plain CPU") == {"scan": 10.0}
        assert phase_breakdown(tracer) == {"scan": 109.0}


class TestShardedTraces:
    """Scheduler events carry shard ids once multiplexed (cluster PR)."""

    def _sharded_scheduler(self, shard, base):
        return WorkloadScheduler(
            COSTS,
            make_policy("fifo"),
            cores=8,
            epc_budget_bytes=300 * MB,
            setting_label="test",
            shard=shard,
            query_id_base=base,
        )

    def test_two_shards_into_one_tracer_stay_disjoint_and_ordered(self):
        tracer = Tracer()
        mix = QueryMix.of({"small": 1.0})
        with use_tracer(tracer):
            for index, shard in enumerate(("m0.s0.e0", "m0.s1.e0")):
                scheduler = self._sharded_scheduler(shard, index * 1000)
                scheduler.run(
                    open_streams=(
                        OpenLoopStream("t", qps=100.0, mix=mix, seed=5),
                    ),
                    duration_s=1.0,
                )
        runs = serving_runs(tracer)
        assert len(runs) == 2
        assert [attrs["shard"] for attrs, _ in runs] == [
            "m0.s0.e0", "m0.s1.e0"
        ]
        # Every event between the run markers belongs to that run's shard,
        # and the two shards' query ids never collide.
        shards_seen = {}
        current = None
        for record in tracer.records:
            if not isinstance(record, Event):
                continue
            if record.name == "serving.run_start":
                current = record.attrs["shard"]
            if "query_id" in record.attrs:
                shards_seen.setdefault(current, set()).add(
                    record.attrs["query_id"]
                )
            assert record.attrs.get("shard") == current
        assert set(shards_seen) == {"m0.s0.e0", "m0.s1.e0"}
        assert not (
            shards_seen["m0.s0.e0"] & shards_seen["m0.s1.e0"]
        )
        assert max(shards_seen["m0.s0.e0"]) < 1000 <= min(
            shards_seen["m0.s1.e0"]
        )

    def test_unsharded_events_carry_no_shard_attr(self):
        tracer, _ = traced_run()
        events = [r for r in tracer.records if isinstance(r, Event)]
        assert events
        assert all("shard" not in e.attrs for e in events)
