"""Join cost behaviour: the paper's qualitative claims, as assertions.

These are integration tests of operators + cost model + executor: each
test pins one claim from Sec. 4 of the paper (who is slower, by roughly
what factor, in which setting).
"""

import pytest

from repro.core.joins import (
    CrkJoin,
    IndexNestedLoopJoin,
    ParallelHashJoin,
    RadixJoin,
    SortMergeJoin,
)
from repro.enclave.runtime import ExecutionSetting
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair

PLAIN = ExecutionSetting.plain_cpu()
SGX = ExecutionSetting.sgx_data_in_enclave()


@pytest.fixture(scope="module")
def tables():
    return generate_join_relation_pair(100e6, 400e6, seed=3, physical_row_cap=60_000)


def throughput(tables, join, setting, threads=16):
    machine = SimMachine()
    build, probe = tables
    with machine.context(setting, threads=threads) as ctx:
        result = join.run(ctx, build, probe)
    return result.throughput_rows_per_s(machine.frequency_hz)


class TestFig3Shapes:
    def test_crkjoin_slowest_in_enclave(self, tables):
        crk = throughput(tables, CrkJoin(), SGX)
        for other in (ParallelHashJoin(), RadixJoin(), SortMergeJoin(),
                      IndexNestedLoopJoin()):
            assert throughput(tables, other, SGX) > crk

    def test_rho_speedup_over_crk_near_12x(self, tables):
        ratio = throughput(tables, RadixJoin(), SGX) / throughput(
            tables, CrkJoin(), SGX
        )
        assert 8 < ratio < 16  # paper: ~12x

    def test_inl_speedup_over_crk_near_3x(self, tables):
        ratio = throughput(tables, IndexNestedLoopJoin(), SGX) / throughput(
            tables, CrkJoin(), SGX
        )
        assert 2 < ratio < 5  # paper: ~3x

    def test_hash_joins_lose_most_in_enclave(self, tables):
        def relative(join):
            return throughput(tables, join, SGX) / throughput(tables, join, PLAIN)

        rel_pht = relative(ParallelHashJoin())
        rel_rho = relative(RadixJoin())
        rel_mway = relative(SortMergeJoin())
        rel_inl = relative(IndexNestedLoopJoin())
        assert rel_pht < rel_rho < rel_inl
        assert rel_mway > 0.9  # "perform similarly inside"
        assert rel_pht < 0.5

    def test_every_join_slower_inside(self, tables):
        for join in (CrkJoin(), ParallelHashJoin(), RadixJoin(),
                     SortMergeJoin(), IndexNestedLoopJoin()):
            assert throughput(tables, join, SGX) <= throughput(
                tables, join, PLAIN
            ) * 1.001


class TestUnrollOptimization:
    def test_rho_optimized_near_native(self, tables):
        opt = throughput(tables, RadixJoin(CodeVariant.UNROLLED), SGX)
        plain = throughput(tables, RadixJoin(CodeVariant.UNROLLED), PLAIN)
        assert 0.78 < opt / plain < 0.95  # paper: 83 %

    def test_pht_optimized_still_memory_bound(self, tables):
        opt = throughput(tables, ParallelHashJoin(CodeVariant.UNROLLED), SGX)
        plain = throughput(tables, ParallelHashJoin(CodeVariant.UNROLLED), PLAIN)
        assert 0.55 < opt / plain < 0.8  # paper: 68 %

    def test_optimization_irrelevant_outside_enclave(self, tables):
        naive = throughput(tables, RadixJoin(CodeVariant.NAIVE), PLAIN)
        opt = throughput(tables, RadixJoin(CodeVariant.UNROLLED), PLAIN)
        assert opt == pytest.approx(naive, rel=0.02)

    def test_simd_variant_at_least_as_good(self, tables):
        unrolled = throughput(tables, RadixJoin(CodeVariant.UNROLLED), SGX)
        simd = throughput(tables, RadixJoin(CodeVariant.SIMD), SGX)
        assert simd >= unrolled * 0.99

    def test_crkjoin_gains_little_from_unrolling(self, tables):
        naive = throughput(tables, CrkJoin(CodeVariant.NAIVE), SGX)
        opt = throughput(tables, CrkJoin(CodeVariant.UNROLLED), SGX)
        rho_gain = throughput(tables, RadixJoin(CodeVariant.UNROLLED), SGX) / \
            throughput(tables, RadixJoin(CodeVariant.NAIVE), SGX)
        assert opt / naive < rho_gain

    def test_fig1_ordering(self, tables):
        crk_sgx = throughput(tables, CrkJoin(), SGX)
        rho_sgx = throughput(tables, RadixJoin(), SGX)
        rho_opt = throughput(tables, RadixJoin(CodeVariant.UNROLLED), SGX)
        rho_plain = throughput(tables, RadixJoin(), PLAIN)
        assert crk_sgx < rho_sgx < rho_opt < rho_plain
        assert rho_opt / crk_sgx > 15  # paper: ~20x


class TestFig4SizeSweep:
    def _relative(self, build_mb):
        build, probe = generate_join_relation_pair(
            build_mb * 1e6, 400e6, seed=5, physical_row_cap=30_000
        )
        plain_machine, sgx_machine = SimMachine(), SimMachine()
        with plain_machine.context(PLAIN, threads=1) as ctx:
            plain = ParallelHashJoin().run(ctx, build, probe)
        with sgx_machine.context(SGX, threads=1) as ctx:
            sgx = ParallelHashJoin().run(ctx, build, probe)
        return plain.cycles / sgx.cycles, plain, sgx

    def test_cache_resident_near_native(self):
        relative, _, _ = self._relative(1)
        assert relative > 0.9  # paper: 95 %

    def test_relative_falls_with_size(self):
        rel_small, _, _ = self._relative(1)
        rel_mid, _, _ = self._relative(25)
        rel_large, _, _ = self._relative(100)
        assert rel_small > rel_mid > rel_large

    def test_build_phase_degrades_more_than_probe(self):
        _, plain, sgx = self._relative(100)
        build_slowdown = sgx.phase_cycles["build"] / plain.phase_cycles["build"]
        probe_slowdown = sgx.phase_cycles["probe"] / plain.phase_cycles["probe"]
        assert build_slowdown > probe_slowdown
        assert build_slowdown > 3  # paper: up to ~9x


class TestThreadScaling:
    def test_joins_scale_with_threads(self, tables):
        single = throughput(tables, RadixJoin(), PLAIN, threads=1)
        sixteen = throughput(tables, RadixJoin(), PLAIN, threads=16)
        assert sixteen > 6 * single

    def test_crkjoin_scales_worse_than_rho(self, tables):
        # The one-bit cracking passes cap early-phase parallelism.
        def scaling(join_factory):
            single = throughput(tables, join_factory(), PLAIN, threads=1)
            sixteen = throughput(tables, join_factory(), PLAIN, threads=16)
            return sixteen / single

        assert scaling(CrkJoin) < scaling(RadixJoin)
