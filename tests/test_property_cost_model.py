"""Property-based invariants of the cost model.

The model must be *coherent* no matter what batch it prices: costs are
non-negative and finite, scale linearly in the access count, never get
cheaper inside the enclave for EPC data, and respect the documented
monotonicities (working-set size, parallelism, code variant).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import paper_calibration, paper_testbed
from repro.memory.access import AccessBatch, CodeVariant, Locality, PatternKind
from repro.memory.cost_model import CostEnvironment, MemoryCostModel

MODEL = MemoryCostModel(paper_testbed(), paper_calibration())
PLAIN = CostEnvironment(enclave_mode=False)
SGX = CostEnvironment(enclave_mode=True)

kinds = st.sampled_from(
    [
        PatternKind.SEQ_READ,
        PatternKind.SEQ_WRITE,
        PatternKind.RANDOM_READ,
        PatternKind.RANDOM_WRITE,
        PatternKind.DEPENDENT_READ,
        PatternKind.RMW_LOOP,
    ]
)
variants = st.sampled_from(list(CodeVariant))


@st.composite
def batches(draw):
    kind = draw(kinds)
    in_enclave = draw(st.booleans())
    locality = Locality(draw(st.integers(0, 1)), in_enclave)
    table_kwargs = {}
    if kind is PatternKind.RMW_LOOP:
        table_kwargs = dict(
            table_bytes=draw(st.floats(1e3, 1e10)),
            table_locality=locality,
            table_writes=draw(st.booleans()),
        )
    return AccessBatch(
        kind=kind,
        count=draw(st.floats(0, 1e8)),
        element_bytes=draw(st.sampled_from([1, 4, 8, 64])),
        working_set_bytes=draw(st.floats(0, 1e11)),
        locality=locality,
        variant=draw(variants),
        parallelism=draw(st.floats(1, 16)),
        compute_cycles_per_item=draw(st.floats(0, 50)),
        reorder_sensitivity=draw(st.floats(0, 1)),
        **table_kwargs,
    )


@st.composite
def environments(draw):
    return CostEnvironment(
        enclave_mode=draw(st.booleans()),
        thread_node=draw(st.integers(0, 1)),
        concurrency=draw(st.integers(1, 32)),
    )


class TestUniversalInvariants:
    @given(batch=batches(), env=environments())
    @settings(max_examples=200, deadline=None)
    def test_cost_finite_and_non_negative(self, batch, env):
        cycles = MODEL.batch_cycles(batch, env)
        assert cycles >= 0
        assert math.isfinite(cycles)

    @given(batch=batches(), env=environments())
    @settings(max_examples=100, deadline=None)
    def test_linear_in_count(self, batch, env):
        base = MODEL.batch_cycles(batch, env)
        doubled = MODEL.batch_cycles(batch.scaled(2.0), env)
        assert doubled == pytest.approx(2 * base, rel=1e-9, abs=1e-6)

    @given(batch=batches())
    @settings(max_examples=150, deadline=None)
    def test_enclave_never_cheaper(self, batch):
        plain = MODEL.batch_cycles(batch, PLAIN)
        sgx = MODEL.batch_cycles(batch, SGX)
        assert sgx >= plain * (1 - 1e-9)

    @given(batch=batches())
    @settings(max_examples=100, deadline=None)
    def test_untrusted_data_sequential_parity(self, batch):
        """Streaming untrusted data costs the same in both modes."""
        if batch.kind not in (PatternKind.SEQ_READ, PatternKind.SEQ_WRITE):
            return
        if batch.locality.in_enclave:
            return
        assert MODEL.batch_cycles(batch, SGX) == MODEL.batch_cycles(batch, PLAIN)


class TestMonotonicity:
    @given(
        count=st.floats(1e3, 1e6),
        small=st.floats(1e3, 1e8),
        factor=st.floats(1.5, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_random_cost_grows_with_working_set(self, count, small, factor):
        def cost(ws):
            batch = AccessBatch(
                kind=PatternKind.RANDOM_READ,
                count=count,
                element_bytes=8,
                working_set_bytes=ws,
                locality=Locality(0, True),
                parallelism=8.0,
            )
            return MODEL.batch_cycles(batch, SGX)

        assert cost(small * factor) >= cost(small) * (1 - 1e-9)

    @given(parallelism=st.floats(1, 15))
    @settings(max_examples=50, deadline=None)
    def test_more_parallelism_never_slower(self, parallelism):
        def cost(mlp):
            batch = AccessBatch(
                kind=PatternKind.RANDOM_READ,
                count=1e5,
                element_bytes=8,
                working_set_bytes=4e9,
                locality=Locality(0, True),
                parallelism=mlp,
            )
            return MODEL.batch_cycles(batch, PLAIN)

        assert cost(parallelism + 1) <= cost(parallelism) * (1 + 1e-9)

    @given(sens=st.floats(0, 1), table_bytes=st.floats(1e3, 1e10))
    @settings(max_examples=100, deadline=None)
    def test_variant_ordering_for_rmw(self, sens, table_bytes):
        def cost(variant):
            batch = AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=1e5,
                element_bytes=8,
                working_set_bytes=4e8,
                locality=Locality(0, True),
                variant=variant,
                parallelism=8.0,
                table_bytes=table_bytes,
                table_locality=Locality(0, True),
                reorder_sensitivity=sens,
            )
            return MODEL.batch_cycles(batch, SGX)

        naive = cost(CodeVariant.NAIVE)
        unrolled = cost(CodeVariant.UNROLLED)
        simd = cost(CodeVariant.SIMD)
        assert simd <= unrolled * (1 + 1e-9) <= naive * (1 + 1e-9) ** 2

    @given(concurrency=st.integers(1, 31))
    @settings(max_examples=40, deadline=None)
    def test_bandwidth_sharing_monotone(self, concurrency):
        def cost(threads):
            batch = AccessBatch(
                kind=PatternKind.SEQ_READ,
                count=1e6,
                element_bytes=8,
                working_set_bytes=4e9,
                locality=Locality(0, False),
                variant=CodeVariant.SIMD,
            )
            return MODEL.batch_cycles(
                batch, CostEnvironment(False, concurrency=threads)
            )

        assert cost(concurrency + 1) >= cost(concurrency) * (1 - 1e-9)
