"""Lock recording helpers and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.enclave.sync import LockKind, record_lock_ops
from repro.errors import ConfigurationError
from repro.memory.access import AccessProfile


class TestRecordLockOps:
    def test_mutex_sets_counts_and_ratio(self):
        profile = AccessProfile()
        record_lock_ops(profile, LockKind.SDK_MUTEX, 100, 0.5)
        assert profile.sync.mutex_acquisitions == 100
        assert profile.sync.mutex_contention_ratio == 0.5

    def test_mutex_ratio_weighted_across_calls(self):
        profile = AccessProfile()
        record_lock_ops(profile, LockKind.SDK_MUTEX, 100, 0.0)
        record_lock_ops(profile, LockKind.SDK_MUTEX, 300, 1.0)
        assert profile.sync.mutex_acquisitions == 400
        assert profile.sync.mutex_contention_ratio == pytest.approx(0.75)

    def test_spinlock_adds_spin_traffic(self):
        profile = AccessProfile()
        record_lock_ops(profile, LockKind.SPIN_LOCK, 100, 0.5)
        assert profile.sync.spinlock_acquisitions == 100
        assert profile.sync.atomic_ops == 200  # contention-driven retries

    def test_lock_free_adds_cas_retries(self):
        profile = AccessProfile()
        record_lock_ops(profile, LockKind.LOCK_FREE, 100, 0.0)
        assert profile.sync.atomic_ops == 100
        record_lock_ops(profile, LockKind.LOCK_FREE, 100, 1.0)
        assert profile.sync.atomic_ops == 100 + 300

    def test_validation(self):
        profile = AccessProfile()
        with pytest.raises(ConfigurationError):
            record_lock_ops(profile, LockKind.SDK_MUTEX, -1, 0.0)
        with pytest.raises(ConfigurationError):
            record_lock_ops(profile, LockKind.SDK_MUTEX, 1, 1.5)


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "tab01" in out

    def test_run_static_experiment(self, capsys):
        assert main(["tab01"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "EPC per socket" in out

    def test_csv_output(self, tmp_path, capsys):
        assert main(["tab01", "--csv", str(tmp_path)]) == 0
        csv = (tmp_path / "tab01.csv").read_text()
        assert csv.startswith("series,x,value,std,unit")

    def test_parser_flags(self):
        parser = build_parser()
        args = parser.parse_args(["fig08", "--full"])
        assert args.experiments == ["fig08"]
        assert args.full

    def test_parser_seed_flag(self):
        args = build_parser().parse_args(["fig08", "--seed", "123"])
        assert args.seed == 123
        assert build_parser().parse_args(["fig08"]).seed is None


class TestCliRobustness:
    def test_unknown_id_exits_2_and_names_known_ones(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment ids: fig99" in err
        assert "known experiments:" in err
        assert "fig08" in err and "wl01" in err

    def test_mixed_known_and_unknown_rejected(self, capsys):
        assert main(["tab01", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_typo_leaves_no_csv_dir_behind(self, tmp_path, capsys):
        target = tmp_path / "results"
        assert main(["fig99", "--csv", str(target)]) == 2
        capsys.readouterr()
        assert not target.exists()

    def test_seed_flag_threads_to_runner(self, capsys):
        from repro.bench import runner

        original = runner.DEFAULT_BASE_SEED
        try:
            assert main(["tab01", "--seed", "7"]) == 0
            capsys.readouterr()
            assert runner.DEFAULT_BASE_SEED == 7
        finally:
            runner.set_default_base_seed(original)

    def test_seed_rejects_non_integers(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tab01", "--seed", "abc"])
        capsys.readouterr()


class TestCliFaults:
    def test_parser_faults_flag(self):
        args = build_parser().parse_args(["wl01", "--faults", "chaos"])
        assert args.faults == "chaos"
        assert build_parser().parse_args(["wl01"]).faults is None

    def test_unknown_plan_exits_2_and_names_known_ones(self, capsys):
        assert main(["wl01", "--faults", "nope"]) == 2
        err = capsys.readouterr().err
        assert "nope" in err
        assert "chaos" in err  # the catalog is listed

    def test_unknown_plan_leaves_no_artifact_dirs_behind(self, tmp_path, capsys):
        csv_dir = tmp_path / "csv"
        trace_dir = tmp_path / "traces"
        assert main(
            [
                "wl01",
                "--faults", "nope",
                "--csv", str(csv_dir),
                "--trace", str(trace_dir),
            ]
        ) == 2
        capsys.readouterr()
        assert not csv_dir.exists()
        assert not trace_dir.exists()

    def test_faults_none_matches_baseline_byte_for_byte(self, tmp_path, capsys):
        plain_dir = tmp_path / "plain"
        none_dir = tmp_path / "none"
        assert main(["wl01", "--csv", str(plain_dir)]) == 0
        assert main(["wl01", "--faults", "none", "--csv", str(none_dir)]) == 0
        capsys.readouterr()
        assert (plain_dir / "wl01.csv").read_bytes() == \
            (none_dir / "wl01.csv").read_bytes()

    def test_fault_plan_changes_serving_results(self, tmp_path, capsys):
        plain_dir = tmp_path / "plain"
        chaos_dir = tmp_path / "chaos"
        assert main(["wl01", "--csv", str(plain_dir)]) == 0
        assert main(["wl01", "--faults", "chaos", "--csv", str(chaos_dir)]) == 0
        capsys.readouterr()
        assert (plain_dir / "wl01.csv").read_bytes() != \
            (chaos_dir / "wl01.csv").read_bytes()


class TestCliClusterAndStorage:
    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["wl01", "--cluster", "2x4", "--storage", "256m"]
        )
        assert args.cluster == "2x4"
        assert args.storage == "256m"
        assert build_parser().parse_args(["wl01"]).storage is None

    @pytest.mark.parametrize("bad", ["0x4", " 2x4", "2 x4", "axb"])
    def test_malformed_cluster_exits_2(self, bad, capsys):
        assert main(["wl01", "--cluster", bad]) == 2
        assert "cluster spec" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["nope", "1.5g", "256m:999"])
    def test_malformed_storage_exits_2(self, bad, capsys):
        assert main(["wl01", "--storage", bad]) == 2
        assert capsys.readouterr().err  # names the problem

    def test_malformed_flags_leave_no_artifact_dirs_behind(
        self, tmp_path, capsys
    ):
        for flag, bad in (("--cluster", "0x4"), ("--storage", "nope")):
            csv_dir = tmp_path / f"csv{flag}"
            assert main(
                ["wl01", flag, bad, "--csv", str(csv_dir)]
            ) == 2
            capsys.readouterr()
            assert not csv_dir.exists()

    def test_storage_budget_changes_serving_results(self, tmp_path, capsys):
        plain_dir = tmp_path / "plain"
        spill_dir = tmp_path / "spill"
        assert main(["wl01", "--csv", str(plain_dir)]) == 0
        assert main(
            ["wl01", "--storage", "200m", "--csv", str(spill_dir)]
        ) == 0
        capsys.readouterr()
        assert (plain_dir / "wl01.csv").read_bytes() != \
            (spill_dir / "wl01.csv").read_bytes()


class TestCsvRoundTrip:
    def test_cli_csv_parses_back(self, tmp_path, capsys):
        import csv

        from repro.bench.registry import run_experiment

        assert main(["tab01", "--csv", str(tmp_path)]) == 0
        capsys.readouterr()
        with open(tmp_path / "tab01.csv", newline="") as handle:
            parsed = list(csv.DictReader(handle))
        report = run_experiment("tab01", quick=True)
        assert len(parsed) == len(report.rows)
        for got, expected in zip(parsed, report.rows):
            assert got["series"] == expected.series
            assert got["unit"] == expected.unit
            assert float(got["value"]) == pytest.approx(expected.value)
            assert float(got["std"]) == pytest.approx(expected.std)


class TestCliTrace:
    def test_trace_writes_parseable_jsonl_and_csv(self, tmp_path, capsys):
        import json

        assert main(["fig06", "--trace", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig06.trace.jsonl" in out
        lines = (tmp_path / "fig06.trace.jsonl").read_text().splitlines()
        assert lines  # a traced figure run is never empty
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "span" in kinds
        csv_text = (tmp_path / "fig06.trace.csv").read_text()
        assert csv_text.startswith("kind,name,category")

    def test_trace_reproduces_phase_breakdown(self, tmp_path, capsys):
        from repro.bench.registry import run_experiment
        from repro.trace import phase_breakdown, read_jsonl

        assert main(["fig06", "--trace", str(tmp_path)]) == 0
        capsys.readouterr()
        records = read_jsonl(tmp_path / "fig06.trace.jsonl")
        phases = phase_breakdown(records, setting="SGX (Data in Enclave)")
        report = run_experiment("fig06", quick=True)
        # The exported trace holds naive + unrolled runs; the figure's
        # per-phase rows must be recoverable from (subsets of) it.
        for phase in ("hist1", "copy1", "build", "join"):
            assert phases[phase] >= report.value("naive: sgx", phase)

    def test_typo_leaves_no_trace_dir_behind(self, tmp_path, capsys):
        target = tmp_path / "traces"
        assert main(["fig99", "--trace", str(target)]) == 2
        capsys.readouterr()
        assert not target.exists()


class TestCliReportFlagCombinations:
    def test_report_honors_csv(self, tmp_path, capsys):
        report_path = tmp_path / "report.md"
        csv_dir = tmp_path / "csv"
        assert main(
            ["tab01", "--report", str(report_path), "--csv", str(csv_dir)]
        ) == 0
        capsys.readouterr()
        assert report_path.exists()
        csv_text = (csv_dir / "tab01.csv").read_text()
        assert csv_text.startswith("series,x,value,std,unit")

    def test_report_honors_trace(self, tmp_path, capsys):
        report_path = tmp_path / "report.md"
        trace_dir = tmp_path / "traces"
        assert main(
            ["fig06", "--report", str(report_path), "--trace", str(trace_dir)]
        ) == 0
        capsys.readouterr()
        assert report_path.exists()
        assert (trace_dir / "fig06.trace.jsonl").read_text().strip()

    def test_report_with_chart_exits_2(self, tmp_path, capsys):
        report_path = tmp_path / "report.md"
        assert main(["tab01", "--report", str(report_path), "--chart"]) == 2
        err = capsys.readouterr().err
        assert "--chart" in err and "--report" in err
        assert not report_path.exists()


class TestCliPlanner:
    def test_parser_planner_flag(self):
        args = build_parser().parse_args(["wl01", "--planner", "adaptive"])
        assert args.planner == "adaptive"
        assert build_parser().parse_args(["wl01"]).planner is None

    def test_unknown_mode_exits_2_and_names_known_ones(self, capsys):
        assert main(["wl01", "--planner", "greedy"]) == 2
        err = capsys.readouterr().err
        assert "greedy" in err
        assert "static" in err and "cost" in err and "adaptive" in err

    def test_oracle_mode_is_not_offered(self, capsys):
        # The oracle selector is the experiment-only upper bound; sessions
        # cannot request it.
        assert main(["wl01", "--planner", "oracle"]) == 2
        capsys.readouterr()

    def test_unknown_mode_leaves_no_artifact_dirs_behind(self, tmp_path, capsys):
        csv_dir = tmp_path / "csv"
        trace_dir = tmp_path / "traces"
        assert main(
            [
                "wl01",
                "--planner", "greedy",
                "--csv", str(csv_dir),
                "--trace", str(trace_dir),
            ]
        ) == 2
        capsys.readouterr()
        assert not csv_dir.exists()
        assert not trace_dir.exists()

    def test_planner_static_matches_baseline_byte_for_byte(self, tmp_path, capsys):
        plain_dir = tmp_path / "plain"
        static_dir = tmp_path / "static"
        assert main(["wl01", "--csv", str(plain_dir)]) == 0
        assert main(["wl01", "--planner", "static", "--csv", str(static_dir)]) == 0
        capsys.readouterr()
        assert (plain_dir / "wl01.csv").read_bytes() == \
            (static_dir / "wl01.csv").read_bytes()

    def test_cost_planner_changes_serving_results(self, tmp_path, capsys):
        plain_dir = tmp_path / "plain"
        cost_dir = tmp_path / "cost"
        assert main(["wl01", "--csv", str(plain_dir)]) == 0
        assert main(["wl01", "--planner", "cost", "--csv", str(cost_dir)]) == 0
        capsys.readouterr()
        assert (plain_dir / "wl01.csv").read_bytes() != \
            (cost_dir / "wl01.csv").read_bytes()


class TestCliExplain:
    def test_explain_prints_ranked_candidates(self, capsys):
        assert main(["explain", "join-medium"]) == 0
        out = capsys.readouterr().out
        assert "job: join-medium" in out
        assert "chosen:" in out
        assert "[chosen]" in out
        for label in ("PHT", "RHO-unrolled", "MWAY", "INL", "CrkJoin"):
            assert label in out

    def test_explain_multiple_jobs(self, capsys):
        assert main(["explain", "scan-small", "join-medium"]) == 0
        out = capsys.readouterr().out
        assert "job: scan-small" in out
        assert "job: join-medium" in out

    def test_explain_without_jobs_exits_2(self, capsys):
        assert main(["explain"]) == 2
        err = capsys.readouterr().err
        assert "join-medium" in err  # the known templates are listed

    def test_explain_unknown_job_exits_2_and_names_known_ones(self, capsys):
        assert main(["explain", "join-galactic"]) == 2
        err = capsys.readouterr().err
        assert "join-galactic" in err
        assert "join-medium" in err
