"""repro.rewrite: candidates, proofs, racing, Q-error feedback, wiring."""

from __future__ import annotations

import pytest

from repro.cache.keys import experiment_key
from repro.cli import main as cli_main
from repro.core.queries.tpch_queries import TPCH_QUERIES
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.hardware.platforms import sgxv1_calibration, sgxv1_testbed
from repro.machine import SimMachine
from repro.planner.stats import (
    QErrorTracker,
    estimate_plan_cardinalities,
    tpch_base_rows,
)
from repro.rewrite import (
    REWRITE_KINDS,
    actual_cardinalities,
    base_tables,
    current_rewrite,
    generate_rewrites,
    plan_rewrites,
    prove_candidate,
    static_physical,
    use_rewrite,
    validate_mode,
)
from repro.trace import Tracer, use_tracer
from repro.trace.breakdown import rewrite_breakdown
from repro.workload import (
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)
from repro.workload.jobs import JobCatalog, JobKind, JobTemplate

SETTING = ExecutionSetting.sgx_data_in_enclave()


def workload(**overrides) -> WorkloadConfig:
    return WorkloadConfig(
        setting=SETTING,
        open_streams=(
            OpenLoopStream(
                "clients", qps=1.0, mix=QueryMix.of({"q3": 1.0}), seed=1
            ),
        ),
        duration_s=1.0,
        **overrides,
    )


def tpch_template(query: str, scale_factor: float = 1.0) -> JobTemplate:
    return JobTemplate(
        name=f"{query.lower()}-test",
        kind=JobKind.TPCH,
        threads=4,
        query=query,
        scale_factor=scale_factor,
    )


def join_template() -> JobTemplate:
    return JobTemplate(
        name="join-test",
        kind=JobKind.JOIN,
        threads=4,
        build_bytes=8e6,
        probe_bytes=32e6,
    )


class TestConfig:
    def test_validate_mode(self):
        for mode in ("off", "prove", "race", "learned"):
            assert validate_mode(mode) == mode
        with pytest.raises(ConfigurationError, match="unknown rewrite mode"):
            validate_mode("aggressive")

    def test_ambient_channel_nests_and_restores(self):
        assert current_rewrite() is None
        with use_rewrite("learned"):
            assert current_rewrite() == "learned"
            with use_rewrite("prove"):
                assert current_rewrite() == "prove"
            assert current_rewrite() == "learned"
        assert current_rewrite() is None

    def test_ambient_channel_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            with use_rewrite("nope"):
                pass  # pragma: no cover - never entered


class TestCandidates:
    def test_every_tpch_template_has_candidates(self):
        for query in TPCH_QUERIES:
            names = [c.name for c in generate_rewrites(tpch_template(query))]
            assert len(names) == len(set(names))
            # The SET-style partition swaps and the pipeline fuse are
            # proposed everywhere; query-specific rewrites ride on top.
            assert "swap-join-pht" in names
            assert "swap-join-crkjoin" in names
            assert "fuse-pipeline" in names

    def test_non_tpch_template_has_none(self):
        assert generate_rewrites(join_template()) == ()

    def test_kinds_are_known_and_labels_prefixed(self):
        for query in TPCH_QUERIES:
            for candidate in generate_rewrites(tpch_template(query)):
                assert candidate.kind in REWRITE_KINDS
                assert candidate.label().startswith("rw:")

    def test_elimination_drops_the_base_table(self):
        candidates = {
            c.name: c for c in generate_rewrites(tpch_template("Q10"))
        }
        dropped = candidates["drop-customer-join"]
        assert "customer" not in base_tables(dropped.plan())
        assert "customer" in base_tables(TPCH_QUERIES["Q10"]())


class TestProofs:
    def test_sound_candidates_accepted_with_shared_digest(self):
        template = tpch_template("Q3")
        for candidate in generate_rewrites(template):
            proof = prove_candidate(template, candidate)
            assert proof.accepted, (candidate.name, proof.reason)
            assert proof.digest
            assert proof.rows > 0

    def test_unsound_candidate_rejected_not_raced(self):
        template = tpch_template("Q10")
        unsound = [
            c
            for c in generate_rewrites(template)
            if c.name == "build-on-orders"
        ]
        assert unsound, "the intentionally unsound candidate must exist"
        proof = prove_candidate(template, unsound[0])
        assert not proof.accepted
        assert "differ" in proof.reason
        decision = plan_rewrites(template, "race", SimMachine(), SETTING)
        raced = {est.candidate.name for est in decision.ranked}
        assert "build-on-orders" not in raced
        assert {p.candidate.name for p in decision.rejected} == {
            "build-on-orders"
        }

    def test_proofs_memoized(self):
        template = tpch_template("Q12")
        candidate = generate_rewrites(template)[0]
        first = prove_candidate(template, candidate)
        assert prove_candidate(template, candidate) is first


class TestRace:
    def test_prove_mode_races_nothing(self):
        decision = plan_rewrites(tpch_template("Q3"), "prove")
        assert decision.proofs
        assert decision.ranked == ()
        assert decision.winner is None
        assert decision.speedup == 1.0

    def test_off_mode_is_rejected(self):
        with pytest.raises(ConfigurationError, match="'off'"):
            plan_rewrites(tpch_template("Q3"), "off")

    def test_race_is_deterministic(self):
        template = tpch_template("Q3")
        first = plan_rewrites(template, "learned", SimMachine(), SETTING)
        second = plan_rewrites(template, "learned", SimMachine(), SETTING)
        assert [e.candidate.name for e in first.ranked] == [
            e.candidate.name for e in second.ranked
        ]
        assert [e.seconds for e in first.ranked] == [
            e.seconds for e in second.ranked
        ]

    def test_sgxv1_partition_swap_clears_the_bar(self):
        # The acceptance headline: past the legacy EPC cliff the learned
        # winner beats the static logical plan by >= 1.3x priced time.
        legacy = SimMachine(sgxv1_testbed(), sgxv1_calibration())
        decision = plan_rewrites(
            tpch_template("Q3", scale_factor=4.5), "learned", legacy, SETTING
        )
        assert decision.winner is not None
        assert decision.speedup >= 1.3

    def test_winner_is_fastest_proved(self):
        decision = plan_rewrites(
            tpch_template("Q10"), "learned", SimMachine(), SETTING
        )
        assert decision.ranked
        if decision.winner is not None:
            assert decision.winner == decision.ranked[0]
            assert decision.winner.seconds < decision.reference.seconds

    def test_trace_events_and_breakdown(self):
        tracer = Tracer(label="rewrite-test")
        with use_tracer(tracer):
            plan_rewrites(
                tpch_template("Q10"), "learned", SimMachine(), SETTING
            )
        breakdown = rewrite_breakdown(tracer)
        assert breakdown.proved == 4
        assert breakdown.rejected == 1
        assert breakdown.raced == 4
        assert breakdown.q_error_raw > breakdown.q_error_corrected

    def test_static_physical_honours_knob_hints(self):
        template = tpch_template("Q3")
        swaps = {
            c.name: c
            for c in generate_rewrites(template)
            if c.name.startswith("swap-join-")
        }
        assert static_physical(template).algorithm == "RHO"
        assert (
            static_physical(template, swaps["swap-join-pht"]).algorithm
            == "PHT"
        )


class TestQErrorBaseline:
    """Satellite: pinned estimate error vs executed cardinalities.

    The raw numbers are the analytic cardinality model's error against
    ground truth (deterministic: proofs execute the same witness data
    every run); feedback must close each to 1.0.  Future PRs that touch
    the estimator regress against these pins.
    """

    BASELINE = {
        # query: (max raw Q-error, median raw Q-error)
        "Q3": (3.2895, 1.9544),
        "Q10": (6.5217, 5.8687),
        "Q12": (1.2672, 1.2672),
        "Q19": (14.6484, 1.1331),
    }

    @pytest.mark.parametrize("query", sorted(BASELINE))
    def test_pinned_q_error(self, query):
        worst, median = self.BASELINE[query]
        template = tpch_template(query)
        tracker = QErrorTracker()
        tracker.register(
            query,
            estimate_plan_cardinalities(
                TPCH_QUERIES[query](), tpch_base_rows(1.0)
            ),
        )
        tracker.observe(query, actual_cardinalities(template))
        assert tracker.raw_worst(query) == pytest.approx(worst, rel=1e-3)
        assert tracker.raw_median(query) == pytest.approx(median, rel=1e-3)
        assert tracker.corrected_worst(query) == 1.0


class TestCacheKeys:
    def test_off_and_none_key_identically(self):
        base = dict(quick=True, base_seed=17)
        assert experiment_key("fig03", **base) == experiment_key(
            "fig03", rewrite="off", **base
        )

    def test_active_modes_key_differently(self):
        base = dict(quick=True, base_seed=17)
        default = experiment_key("fig03", **base)
        keys = {
            experiment_key("fig03", rewrite=mode, **base)
            for mode in ("prove", "race", "learned")
        }
        assert default not in keys
        assert len(keys) == 3


class TestEngineWiring:
    def test_config_validates_rewrite(self):
        with pytest.raises(ConfigurationError, match="unknown rewrite mode"):
            workload(rewrite="nope")

    def test_config_beats_ambient(self):
        engine = ServingEngine(JobCatalog(None, quick=True))
        config = workload(rewrite="prove")
        with use_rewrite("learned"):
            assert engine.rewrite_of(config) == "prove"
        assert engine.rewrite_of(workload()) is None
        with use_rewrite("race"):
            assert engine.rewrite_of(workload()) == "race"

    def test_learned_adds_rw_arm(self):
        engine = ServingEngine(JobCatalog(None, quick=True))
        config = workload(
            planner="adaptive", plan_top_k=3, rewrite="learned"
        )
        arms = engine.plan_arms(config)
        rw_arms = [
            arm
            for arm in arms["q3"]
            if arm.label.startswith("rw:")
        ]
        assert len(rw_arms) == 1
        assert rw_arms[0].service_s > 0
        # Off/None config: no rewrite arm, labels unchanged.
        plain = engine.plan_arms(
            workload(planner="adaptive", plan_top_k=3)
        )
        assert not any(a.label.startswith("rw:") for a in plain["q3"])


class TestCli:
    def test_unknown_mode_exits_2(self, capsys):
        assert cli_main(["fig03", "--rewrite", "sometimes"]) == 2
        assert "unknown rewrite mode" in capsys.readouterr().err

    def test_rewrite_with_engine_backend_exits_2(self, capsys):
        assert (
            cli_main(["wl01", "--rewrite", "learned", "--backend", "sqlite"])
            == 2
        )
        err = capsys.readouterr().err
        assert "--rewrite" in err and "--backend" in err

    def test_explain_ranks_rewrites(self, capsys):
        assert cli_main(["explain", "q3", "--rewrite", "race"]) == 0
        out = capsys.readouterr().out
        assert "rewrites (race)" in out
        assert "rw:q3/" in out

    def test_explain_without_rewrite_silent(self, capsys):
        assert cli_main(["explain", "q3"]) == 0
        assert "rewrites" not in capsys.readouterr().out
