"""ASCII chart rendering of experiment reports."""

import pytest

from repro.bench.charts import render, render_bars, render_series
from repro.bench.report import ExperimentReport
from repro.errors import BenchmarkError


def bar_report():
    report = ExperimentReport("figX", "bars", "Figure X")
    report.add("alpha", "throughput", 100.0, "M rows/s")
    report.add("beta", "throughput", 50.0, "M rows/s")
    report.add("gamma", "throughput", 25.0, "M rows/s")
    return report


def sweep_report():
    report = ExperimentReport("figY", "sweep", "Figure Y")
    for series, scale in (("plain", 1.0), ("sgx", 0.5)):
        for x in (1, 10, 100, 1000):
            report.add(series, x, scale * x, "GB/s")
    return report


class TestBars:
    def test_largest_bar_is_full_width(self):
        chart = render_bars(bar_report(), bar_width=20)
        lines = chart.splitlines()
        assert "█" * 20 in lines[1]  # alpha = peak
        assert "█" * 10 in lines[2]  # beta = half

    def test_values_printed(self):
        chart = render_bars(bar_report())
        assert "100" in chart and "M rows/s" in chart

    def test_empty_report_rejected(self):
        with pytest.raises(BenchmarkError):
            render_bars(ExperimentReport("x", "t", "r"))

    def test_non_positive_rejected(self):
        report = ExperimentReport("x", "t", "r")
        report.add("a", 1, 0.0, "")
        with pytest.raises(BenchmarkError):
            render_bars(report)


class TestSeries:
    def test_contains_markers_and_legend(self):
        chart = render_series(sweep_report())
        assert "o = plain" in chart
        assert "x = sgx" in chart
        assert chart.count("o") > 2

    def test_axis_extents(self):
        chart = render_series(sweep_report())
        assert "1000" in chart  # max value
        assert "0.5" in chart  # min value

    def test_single_x_rejected(self):
        report = ExperimentReport("x", "t", "r")
        report.add("a", 1, 1.0, "")
        report.add("b", 1, 2.0, "")
        with pytest.raises(BenchmarkError):
            render_series(report)


def wl04_latency_report():
    # The shape of wl04's headline comparison: three arms as series over
    # the shared percentile axis (50 / 95 / 99).
    report = ExperimentReport("wl04", "faults", "Fig. 11 extension")
    for series, scale in (
        ("baseline latency", 1.0),
        ("faults latency", 8.0),
        ("mitigated latency", 2.5),
    ):
        for percentile in (50, 95, 99):
            report.add(series, percentile, scale * percentile, "ms")
    return report


class TestWl04ThreeSeries:
    def test_latency_comparison_renders_as_three_series(self):
        chart = render(wl04_latency_report())
        assert "o = baseline latency" in chart
        assert "x = faults latency" in chart
        assert "+ = mitigated latency" in chart

    def test_percentile_axis_spans_50_to_99(self):
        chart = render_series(wl04_latency_report())
        assert "50 .. 99" in chart

    def test_real_wl04_report_renders(self):
        # The full report mixes the percentile axis with goodput /
        # availability arm labels, so auto-render falls back to bars;
        # the latency slice must still chart as a proper series.
        from repro.bench.registry import run_experiment

        full = run_experiment("wl04", quick=True)
        assert "█" in render(full)
        latency = ExperimentReport(
            full.experiment_id, full.title, full.paper_reference
        )
        latency.rows = [r for r in full.rows if r.series.endswith("latency")]
        chart = render(latency)
        for arm in ("baseline", "faults", "mitigated"):
            assert f"= {arm} latency" in chart


class TestAutoRender:
    def test_sweep_becomes_series(self):
        assert "+" + "-" * 10 in render(sweep_report()) or "o = plain" in render(
            sweep_report()
        )

    def test_categorical_becomes_bars(self):
        assert "█" in render(bar_report())

    def test_every_registered_experiment_renders(self):
        # Charts must handle the shape of every real experiment; tab01's
        # static rows and all sweeps included.
        from repro.bench.registry import run_experiment

        report = run_experiment("tab01")
        assert render(report)
