"""Shared fixtures: a fresh simulated machine and small canonical inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.enclave.runtime import ExecutionSetting
from repro.machine import SimMachine
from repro.tables import generate_join_relation_pair


@pytest.fixture
def machine() -> SimMachine:
    """A fresh paper-testbed machine (clean allocator state)."""
    return SimMachine()


@pytest.fixture
def settings():
    """The three execution settings in paper order."""
    return ExecutionSetting.all_settings()


@pytest.fixture
def small_join_tables():
    """A small but paper-shaped join input pair (logical 100 MB x 400 MB)."""
    return generate_join_relation_pair(
        100e6, 400e6, seed=7, physical_row_cap=40_000
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
