"""Golden-shape checks for the serving-workload experiments (wl01-wl04)."""

from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.faults import get_fault_plan, use_fault_plan

# One quick run of each wl experiment, shared across the module's tests
# (quick-mode serving metrics are deterministic per seed).
_cache = {}


def report_for(experiment_id):
    if experiment_id not in _cache:
        _cache[experiment_id] = run_experiment(experiment_id, quick=True)
    return _cache[experiment_id]


class TestRegistry:
    def test_wl_experiments_registered(self):
        for eid in ("wl01", "wl02", "wl03", "wl04"):
            assert eid in EXPERIMENTS


class TestWl01LatencyThroughput:
    def test_sgx_saturates_at_lower_qps(self):
        report = report_for("wl01")
        top = 1.3  # well past both capacities
        native = report.value("native achieved QPS", top)
        sgx = report.value("SGX achieved QPS", top)
        assert sgx < 0.8 * native

    def test_achieved_qps_tracks_offered_load_below_saturation(self):
        report = report_for("wl01")
        low, high = 0.4, 0.9
        assert report.value("native achieved QPS", low) < \
            report.value("native achieved QPS", high)

    def test_tails_blow_up_under_overload(self):
        report = report_for("wl01")
        for prefix in ("native", "SGX"):
            assert report.value(f"{prefix} p99", 1.3) > \
                3 * report.value(f"{prefix} p99", 0.4)
            assert report.value(f"{prefix} p99", 0.4) >= \
                report.value(f"{prefix} p50", 0.4)

    def test_sgx_latency_above_native_at_every_load(self):
        report = report_for("wl01")
        for fraction in (0.4, 0.7, 0.9, 1.1, 1.3):
            assert report.value("SGX p50", fraction) > \
                report.value("native p50", fraction)

    def test_deterministic_across_runs(self):
        first = report_for("wl01")
        second = run_experiment("wl01", quick=True)
        assert [(r.series, r.x, r.value) for r in first.rows] == \
            [(r.series, r.x, r.value) for r in second.rows]


class TestWl02AdmissionPolicies:
    def test_epc_aware_beats_fifo_on_p99(self):
        report = report_for("wl02")
        assert report.value("epc-aware p99", "latency") < \
            0.5 * report.value("fifo p99", "latency")

    def test_fifo_pays_edmm_penalties(self):
        report = report_for("wl02")
        assert report.value("fifo EDMM admissions", "latency") > 0
        assert report.value("epc-aware EDMM admissions", "latency") == 0

    def test_bypass_rescues_small_queries(self):
        report = report_for("wl02")
        assert report.value("epc-aware+bypass scan p99", "latency") < \
            0.1 * report.value("epc-aware scan p99", "latency")

    def test_epc_aware_sustains_higher_throughput(self):
        report = report_for("wl02")
        assert report.value("epc-aware achieved QPS", "latency") > \
            report.value("fifo achieved QPS", "latency")


class TestWl03TenantInterference:
    def test_sharing_inflates_interactive_tail(self):
        report = report_for("wl03")
        for prefix in ("native", "SGX"):
            assert report.value(f"{prefix} tenant-A p99", "shared") > \
                report.value(f"{prefix} tenant-A p99", "alone")

    def test_interference_is_worse_inside_the_enclave(self):
        report = report_for("wl03")
        assert report.value("SGX tenant-A p99 inflation", "shared") > \
            2 * report.value("native tenant-A p99 inflation", "shared")

    def test_interactive_tenant_alone_is_fast(self):
        report = report_for("wl03")
        for prefix in ("native", "SGX"):
            assert report.value(f"{prefix} tenant-A p99", "alone") < 20  # ms


class TestWl04FaultResilience:
    def test_faults_inflate_p99(self):
        report = report_for("wl04")
        assert report.value("faults latency", 99) > \
            3 * report.value("baseline latency", 99)

    def test_mitigation_recovers_at_least_half_the_p99_gap(self):
        # The PR's headline acceptance criterion.
        report = report_for("wl04")
        base = report.value("baseline latency", 99)
        faults = report.value("faults latency", 99)
        mitigated = report.value("mitigated latency", 99)
        assert mitigated <= base + 0.5 * (faults - base)

    def test_mitigation_strictly_improves_goodput(self):
        report = report_for("wl04")
        assert report.value("goodput", "mitigated") > \
            report.value("goodput", "faults")

    def test_baseline_arm_is_fully_available(self):
        report = report_for("wl04")
        assert report.value("availability", "baseline") == 100.0
        assert report.value("availability", "faults") < 100.0
        assert report.value("availability", "mitigated") > \
            report.value("availability", "faults")

    def test_baseline_arm_ignores_session_fault_plan(self):
        # wl04 pins every arm's plan explicitly, so running it under a
        # session-level --faults plan must not change a single row.
        clean = report_for("wl04")
        with use_fault_plan(get_fault_plan("chaos")):
            contaminated = run_experiment("wl04", quick=True)
        assert [(r.series, r.x, r.value) for r in clean.rows] == \
            [(r.series, r.x, r.value) for r in contaminated.rows]

    def test_deterministic_across_runs(self):
        first = report_for("wl04")
        second = run_experiment("wl04", quick=True)
        assert [(r.series, r.x, r.value) for r in first.rows] == \
            [(r.series, r.x, r.value) for r in second.rows]


class TestWl05AdaptivePlanner:
    def test_registered(self):
        assert "wl05" in EXPERIMENTS

    def test_squeeze_punishes_the_static_native_plan(self):
        report = report_for("wl05")
        assert report.value("static-native latency", 99) > \
            2 * report.value("oracle latency", 99)

    def test_adaptive_recovers_at_least_half_the_p99_gap(self):
        # The PR's headline acceptance criterion.
        report = report_for("wl05")
        static = report.value("static-native latency", 99)
        oracle = report.value("oracle latency", 99)
        adaptive = report.value("adaptive latency", 99)
        assert adaptive <= static - 0.5 * (static - oracle)

    def test_cost_planner_alone_closes_most_of_the_gap(self):
        # The analytical choice (no feedback) already avoids the
        # EPC-overflowing plan; adaptivity refines, it does not rescue.
        report = report_for("wl05")
        static = report.value("static-native latency", 99)
        oracle = report.value("oracle latency", 99)
        cost = report.value("cost latency", 99)
        assert cost <= static - 0.5 * (static - oracle)

    def test_adaptive_goodput_at_least_static(self):
        report = report_for("wl05")
        assert report.value("goodput", "adaptive") >= \
            report.value("goodput", "static-native")

    def test_notes_describe_choices_and_recovery(self):
        report = report_for("wl05")
        notes = "\n".join(report.notes)
        assert "planner[adaptive]" in notes
        assert "planner[cost]" in notes
        assert "static-to-oracle gap" in notes

    def test_deterministic_across_runs(self):
        first = report_for("wl05")
        second = run_experiment("wl05", quick=True)
        assert [(r.series, r.x, r.value) for r in first.rows] == \
            [(r.series, r.x, r.value) for r in second.rows]
