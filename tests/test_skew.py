"""Skew-aware working-set estimation and its effect on PHT."""

import numpy as np
import pytest

from repro.core.joins import ParallelHashJoin
from repro.core.joins.skew import (
    cache_hit_fraction,
    effective_working_set,
    skew_gain,
)
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.machine import SimMachine
from repro.tables.generator import skewed_probe_keys
from repro.tables.table import Column, Table

PLAIN = ExecutionSetting.plain_cpu()
SGX = ExecutionSetting.sgx_data_in_enclave()


class TestCacheHitFraction:
    def test_everything_fits(self):
        freq = np.ones(100)
        assert cache_hit_fraction(freq, 10, 10_000) == 1.0

    def test_nothing_fits(self):
        freq = np.ones(100)
        assert cache_hit_fraction(freq, 10, 5) == 0.0

    def test_uniform_partial(self):
        freq = np.ones(1000)
        # Cache holds 100 of 1000 equally hot entries.
        assert cache_hit_fraction(freq, 10, 1000) == pytest.approx(0.1)

    def test_skewed_beats_uniform(self):
        uniform = np.ones(1000)
        skewed = np.ones(1000)
        skewed[:10] = 1000  # ten very hot entries
        cache = 200  # holds 20 entries
        assert cache_hit_fraction(skewed, 10, cache) > cache_hit_fraction(
            uniform, 10, cache
        )

    def test_no_accesses(self):
        assert cache_hit_fraction(np.zeros(10), 10, 100) == 1.0

    def test_sim_scale_shrinks_capacity(self):
        freq = np.ones(1000)
        unscaled = cache_hit_fraction(freq, 10, 1000, sim_scale=1.0)
        scaled = cache_hit_fraction(freq, 10, 1000, sim_scale=10.0)
        assert scaled < unscaled

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cache_hit_fraction(np.ones(5), 0, 10)
        with pytest.raises(ConfigurationError):
            cache_hit_fraction(np.ones(5), 10, 10, sim_scale=0)


class TestSkewGain:
    def test_uniform_near_one(self, rng):
        # A genuinely uniform stream must not look skewed, even with
        # ~1 access per entry (the Poisson-noise trap).
        freq = np.bincount(rng.integers(0, 50_000, 50_000), minlength=50_000)
        gain = skew_gain(freq, 26.0, 24e6, sim_scale=80.0)
        assert gain < 1.3

    def test_zipf_detected(self, rng):
        keys = skewed_probe_keys(50_000, 200_000, 1.2, rng)
        freq = np.bincount(keys, minlength=50_000)
        gain = skew_gain(freq, 26.0, 24e6, sim_scale=80.0)
        assert gain > 2.0

    def test_empty_stream(self):
        assert skew_gain(np.zeros(10), 10, 100) == 1.0


class TestEffectiveWorkingSet:
    def test_uniform_keeps_nominal(self):
        freq = np.ones(10_000)
        ws = effective_working_set(freq, 10, 1000, uniform_ws_bytes=100_000)
        assert ws == pytest.approx(100_000, rel=0.05)

    def test_cache_resident_untouched(self):
        freq = np.ones(10)
        assert effective_working_set(freq, 10, 1000, 100) == 100

    def test_skew_shrinks(self):
        freq = np.ones(10_000)
        freq[:50] = 100_000
        ws = effective_working_set(freq, 10, 1000, uniform_ws_bytes=100_000)
        assert ws < 10_000

    def test_never_grows(self):
        freq = np.ones(100)
        assert (
            effective_working_set(freq, 10, 500, uniform_ws_bytes=1000) <= 1000
        )


class TestPhtUnderSkew:
    def _relative(self, theta, rng):
        from repro.tables import generate_key_value_table

        build = generate_key_value_table(
            "R", 100e6, rng=rng, physical_row_cap=100_000
        )
        indexes = skewed_probe_keys(build.num_rows, 100_000, theta, rng)
        probe = Table(
            "S",
            [
                Column("key", build["key"][indexes]),
                Column("payload", np.zeros(100_000, dtype=np.int32)),
            ],
            sim_scale=(400e6 / 8) / 100_000,
        )

        def cycles(setting):
            machine = SimMachine()
            with machine.context(setting, threads=16) as ctx:
                return ParallelHashJoin().run(ctx, build, probe).cycles

        return cycles(PLAIN) / cycles(SGX)

    def test_skew_improves_relative_performance(self, rng):
        uniform = self._relative(0.0, rng)
        skewed = self._relative(1.25, rng)
        assert skewed > uniform
