"""Smoke tests: every shipped example runs and prints its takeaway."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: (script, a string its output must contain)
EXAMPLES = [
    ("quickstart.py", "Takeaway"),
    ("custom_workload.py", "mean reading per station"),
    ("numa_placement.py", "fully remote"),
    ("operator_advisor.py", "recommendation:"),
    ("tpch_dashboard.py", "OK"),
    ("generations_tour.py", "Act 5"),
]


@pytest.mark.parametrize("script,marker", EXAMPLES)
def test_example_runs(script, marker):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert marker in completed.stdout
    # Examples must not leak tracebacks to stderr even on success.
    assert "Traceback" not in completed.stderr
