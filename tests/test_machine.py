"""SimMachine and ExecutionContext: wiring, allocation routing, cleanup."""

import pytest

from repro.enclave.enclave import EnclaveConfig
from repro.enclave.runtime import ExecutionSetting
from repro.errors import CapacityError, ConfigurationError
from repro.exec.placement import Placement
from repro.machine import SimMachine
from repro.memory.access import AccessProfile
from repro.units import GiB, MiB


class TestSimMachine:
    def test_defaults_to_paper_platform(self, machine):
        assert machine.spec.sockets == 2
        assert machine.frequency_hz == 2.9e9

    def test_seconds_conversion(self, machine):
        assert machine.seconds(2.9e9) == pytest.approx(1.0)

    def test_custom_spec_passthrough(self, machine):
        clone = SimMachine(machine.spec, machine.params)
        assert clone.spec is machine.spec


class TestContextCreation:
    def test_plain_context_has_no_enclave(self, machine):
        with machine.context(ExecutionSetting.plain_cpu(), threads=2) as ctx:
            assert ctx.enclave is None
            assert ctx.threads == 2

    def test_sgx_context_creates_enclave(self, machine):
        with machine.context(
            ExecutionSetting.sgx_data_in_enclave(), threads=2
        ) as ctx:
            assert ctx.enclave is not None
            assert machine.allocator.epc_used(0) > 0
        assert machine.allocator.epc_used(0) == 0  # destroyed on close

    def test_exec_node_places_threads_remotely(self, machine):
        with machine.context(
            ExecutionSetting.plain_cpu(), threads=4, data_node=0, exec_node=1
        ) as ctx:
            assert ctx.placement.nodes() == [1, 1, 1, 1]
            assert ctx.data_node == 0

    def test_explicit_placement_wins(self, machine):
        placement = Placement.all_cores(machine.topology)
        with machine.context(
            ExecutionSetting.plain_cpu(), placement=placement
        ) as ctx:
            assert ctx.threads == 32

    def test_enclave_node_must_match_data_node(self, machine):
        config = EnclaveConfig(heap_bytes=1 * GiB, node=1)
        with pytest.raises(ConfigurationError):
            machine.context(
                ExecutionSetting.sgx_data_in_enclave(),
                data_node=0,
                enclave_config=config,
            )


class TestAllocationRouting:
    def test_data_in_enclave_allocates_epc(self, machine):
        with machine.context(ExecutionSetting.sgx_data_in_enclave()) as ctx:
            before = machine.allocator.epc_used(0)
            region = ctx.allocate("table", 100 * MiB)
            assert region.in_enclave
            # Heap-backed: EPC was already reserved at enclave creation.
            assert machine.allocator.epc_used(0) == before

    def test_data_outside_allocates_untrusted(self, machine):
        with machine.context(ExecutionSetting.sgx_data_outside_enclave()) as ctx:
            region = ctx.allocate("table", 100 * MiB)
            assert not region.in_enclave

    def test_plain_allocates_untrusted(self, machine):
        with machine.context(ExecutionSetting.plain_cpu()) as ctx:
            region = ctx.allocate("table", 100 * MiB)
            assert not region.in_enclave
        assert machine.allocator.dram_used(0) == 0  # released on close

    def test_profile_charged_for_pages(self, machine):
        profile = AccessProfile()
        with machine.context(ExecutionSetting.plain_cpu()) as ctx:
            ctx.allocate("t", 1 * MiB, profile)
        assert profile.sync.pages_touched_statically == 256

    def test_static_enclave_overflow_raises(self, machine):
        config = EnclaveConfig(heap_bytes=10 * MiB, node=0)
        with machine.context(
            ExecutionSetting.sgx_data_in_enclave(), enclave_config=config
        ) as ctx:
            with pytest.raises(CapacityError):
                ctx.allocate("too-big", 100 * MiB)

    def test_dynamic_enclave_grows(self, machine):
        config = EnclaveConfig(
            heap_bytes=10 * MiB, node=0, dynamic=True, max_bytes=1 * GiB
        )
        profile = AccessProfile()
        with machine.context(
            ExecutionSetting.sgx_data_in_enclave(), enclave_config=config
        ) as ctx:
            ctx.allocate("grows", 100 * MiB, profile)
        assert profile.sync.pages_added_dynamically > 0


class TestExecutorFactory:
    def test_executor_matches_context(self, machine):
        with machine.context(
            ExecutionSetting.sgx_data_in_enclave(), threads=8
        ) as ctx:
            executor = ctx.executor()
            assert executor.threads == 8
            assert executor.setting.enclave_mode
