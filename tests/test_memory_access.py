"""Access profiles: batch validation, profile accumulation, sync merging."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.access import (
    AccessBatch,
    AccessProfile,
    CodeVariant,
    Locality,
    PatternKind,
    SyncCosts,
)


def _batch(**overrides):
    defaults = dict(
        kind=PatternKind.SEQ_READ,
        count=1000,
        element_bytes=8,
        working_set_bytes=8000,
        locality=Locality(0, False),
    )
    defaults.update(overrides)
    return AccessBatch(**defaults)


class TestLocality:
    def test_negative_node_rejected(self):
        with pytest.raises(ConfigurationError):
            Locality(-1, False)

    def test_frozen_equality(self):
        assert Locality(0, True) == Locality(0, True)
        assert Locality(0, True) != Locality(1, True)


class TestAccessBatch:
    def test_bytes_touched(self):
        assert _batch(count=10, element_bytes=8).bytes_touched == 80

    def test_compute_has_no_traffic(self):
        batch = _batch(kind=PatternKind.COMPUTE, count=500)
        assert batch.bytes_touched == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            _batch(count=-1)

    def test_zero_element_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            _batch(element_bytes=0)

    def test_parallelism_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            _batch(parallelism=0.5)

    def test_rmw_requires_table(self):
        with pytest.raises(ConfigurationError):
            _batch(kind=PatternKind.RMW_LOOP)

    def test_rmw_requires_table_locality(self):
        with pytest.raises(ConfigurationError):
            _batch(kind=PatternKind.RMW_LOOP, table_bytes=100)

    def test_rmw_complete(self):
        batch = _batch(
            kind=PatternKind.RMW_LOOP,
            table_bytes=100,
            table_locality=Locality(0, True),
        )
        assert batch.table_writes

    def test_sensitivities_bounded(self):
        with pytest.raises(ConfigurationError):
            _batch(reorder_sensitivity=1.5)
        with pytest.raises(ConfigurationError):
            _batch(mlp_sensitivity=-0.1)

    def test_scaled(self):
        scaled = _batch(count=100).scaled(0.5)
        assert scaled.count == 50

    def test_scaled_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            _batch().scaled(-1)


class TestAccessProfile:
    def test_convenience_constructors(self):
        profile = AccessProfile()
        loc = Locality(0, True)
        profile.seq_read(100, 8, loc)
        profile.seq_write(50, 8, loc)
        profile.compute(1234)
        assert len(profile) == 3
        kinds = [b.kind for b in profile]
        assert kinds == [
            PatternKind.SEQ_READ,
            PatternKind.SEQ_WRITE,
            PatternKind.COMPUTE,
        ]

    def test_total_bytes(self):
        profile = AccessProfile()
        loc = Locality(0, False)
        profile.seq_read(100, 8, loc)
        profile.seq_write(10, 4, loc)
        assert profile.total_bytes() == 840

    def test_merge_combines_batches_and_sync(self):
        a, b = AccessProfile(), AccessProfile()
        a.seq_read(10, 8, Locality(0, False))
        a.sync.transitions = 2
        b.compute(5)
        b.sync.transitions = 3
        a.merge(b)
        assert len(a) == 2
        assert a.sync.transitions == 5

    def test_variant_default_is_simd_for_streams(self):
        profile = AccessProfile()
        profile.seq_read(1, 8, Locality(0, False))
        assert profile.batches[0].variant is CodeVariant.SIMD


class TestSyncCosts:
    def test_merge_weights_contention(self):
        a = SyncCosts(mutex_acquisitions=100, mutex_contention_ratio=0.0)
        b = SyncCosts(mutex_acquisitions=100, mutex_contention_ratio=1.0)
        a.merge(b)
        assert a.mutex_acquisitions == 200
        assert a.mutex_contention_ratio == pytest.approx(0.5)

    def test_merge_accumulates_counters(self):
        a = SyncCosts(transitions=1, atomic_ops=2, barriers=3)
        b = SyncCosts(transitions=10, atomic_ops=20, barriers=30)
        a.merge(b)
        assert (a.transitions, a.atomic_ops, a.barriers) == (11, 22, 33)

    def test_merge_with_no_mutexes_keeps_ratio(self):
        a = SyncCosts(mutex_contention_ratio=0.0)
        b = SyncCosts()
        a.merge(b)
        assert a.mutex_contention_ratio == 0.0
