"""Bit-packed columns, the packed scan, and the hash aggregate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops.aggregate import AggFunc, HashAggregate
from repro.core.scans.packed_scan import PackedScan
from repro.core.scans.predicate import RangePredicate
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables.bitpack import BitPackedColumn

PLAIN = ExecutionSetting.plain_cpu()
SGX = ExecutionSetting.sgx_data_in_enclave()


class TestBitPackedColumn:
    @pytest.mark.parametrize("bits", [1, 3, 7, 8, 12, 16, 17, 24, 31, 32])
    def test_roundtrip(self, rng, bits):
        values = rng.integers(0, 1 << bits, 5000, dtype=np.uint64)
        column = BitPackedColumn(values, bits)
        assert np.array_equal(column.unpack(), values.astype(np.uint32))

    def test_empty(self):
        column = BitPackedColumn(np.array([], dtype=np.uint64), 8)
        assert column.num_values == 0
        assert len(column.unpack()) == 0

    def test_compression_ratio(self, rng):
        values = rng.integers(0, 16, 1000, dtype=np.uint64)
        column = BitPackedColumn(values, 4)
        assert column.compression_ratio() == pytest.approx(8.0)
        assert column.packed_bytes <= 1000 * 4 / 8 + 8

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ConfigurationError):
            BitPackedColumn(np.array([16]), 4)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            BitPackedColumn(np.array([0]), 0)
        with pytest.raises(ConfigurationError):
            BitPackedColumn(np.array([0]), 33)

    @given(
        bits=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=2**31),
        n=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, bits, seed, n):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << bits, n, dtype=np.uint64)
        column = BitPackedColumn(values, bits)
        assert np.array_equal(column.unpack(), values.astype(np.uint32))


class TestPackedScan:
    def test_matches_equal_unpacked_predicate(self, rng):
        values = rng.integers(0, 4096, 20_000, dtype=np.uint64)
        column = BitPackedColumn(values, 12)
        predicate = RangePredicate(100, 2000)
        machine = SimMachine()
        with machine.context(PLAIN, threads=4) as ctx:
            result = PackedScan().run(ctx, column, predicate)
        assert result.matches == int(predicate.evaluate(values).sum())
        assert np.array_equal(
            result.bitvector, np.packbits(predicate.evaluate(values))
        )

    def test_narrow_codes_scan_faster(self, rng):
        def values_per_s(bits):
            values = rng.integers(0, 1 << bits, 20_000, dtype=np.uint64)
            column = BitPackedColumn(values, bits)
            machine = SimMachine()
            scan = PackedScan()
            with machine.context(PLAIN, threads=16) as ctx:
                result = scan.run(
                    ctx, column, RangePredicate(0, 1 << (bits - 1)),
                    sim_scale=4e9 / column.num_values,
                )
            return scan.values_per_second(result, machine.frequency_hz)

        # Bandwidth ideal would be 4x/2x; the in-register unpack work caps
        # the realized gain below that.
        assert values_per_s(4) > 1.8 * values_per_s(16)
        assert values_per_s(16) > 1.5 * values_per_s(32)

    def test_enclave_overhead_stays_small(self, rng):
        values = rng.integers(0, 256, 20_000, dtype=np.uint64)
        column = BitPackedColumn(values, 8)
        scan = PackedScan()

        def cycles(setting):
            machine = SimMachine()
            with machine.context(setting, threads=16) as ctx:
                return scan.run(
                    ctx, column, RangePredicate(0, 128),
                    sim_scale=4e9 / column.num_values,
                ).cycles

        assert cycles(SGX) / cycles(PLAIN) < 1.05


class TestHashAggregate:
    def _run(self, keys, values, functions, variant=CodeVariant.NAIVE,
             setting=PLAIN):
        machine = SimMachine()
        with machine.context(setting, threads=4) as ctx:
            return HashAggregate(variant).run(ctx, keys, values, functions)

    def test_count_and_sum(self):
        keys = np.array([1, 2, 1, 3, 2, 1])
        values = np.array([10, 20, 30, 40, 50, 60])
        result = self._run(keys, values, (AggFunc.COUNT, AggFunc.SUM))
        assert list(result.group_keys) == [1, 2, 3]
        assert list(result.aggregates["count"]) == [3, 2, 1]
        assert list(result.aggregates["sum"]) == [100, 70, 40]

    def test_min_max(self):
        keys = np.array([5, 5, 9])
        values = np.array([3.0, -1.0, 7.0])
        result = self._run(keys, values, (AggFunc.MIN, AggFunc.MAX))
        assert list(result.aggregates["min"]) == [-1.0, 7.0]
        assert list(result.aggregates["max"]) == [3.0, 7.0]

    def test_matches_numpy_reference(self, rng):
        keys = rng.integers(0, 500, 20_000)
        values = rng.integers(0, 1000, 20_000)
        result = self._run(keys, values, (AggFunc.SUM,))
        for key in (0, 100, 499):
            expected = values[keys == key].sum()
            index = np.searchsorted(result.group_keys, key)
            assert result.aggregates["sum"][index] == expected

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._run(np.arange(3), np.arange(4), (AggFunc.COUNT,))
        with pytest.raises(ConfigurationError):
            self._run(np.arange(3), np.arange(3), ())

    def test_enclave_penalty_mirrors_histogram(self, rng):
        keys = rng.integers(0, 1000, 50_000)
        values = rng.integers(0, 100, 50_000)

        def cycles(setting, variant):
            machine = SimMachine()
            with machine.context(setting, threads=16) as ctx:
                return HashAggregate(variant).run(
                    ctx, keys, values, (AggFunc.COUNT,), sim_scale=1000.0
                ).cycles

        naive_ratio = cycles(SGX, CodeVariant.NAIVE) / cycles(
            PLAIN, CodeVariant.NAIVE
        )
        opt_ratio = cycles(SGX, CodeVariant.UNROLLED) / cycles(
            PLAIN, CodeVariant.UNROLLED
        )
        assert naive_ratio > 2.5  # cache-resident table, full loop penalty
        assert opt_ratio < 1.35

    def test_throughput_metric(self, rng):
        keys = rng.integers(0, 10, 1000)
        result = self._run(keys, keys, (AggFunc.COUNT,))
        assert result.throughput_rows_per_s(2.9e9) > 0
        assert result.num_groups == 10
