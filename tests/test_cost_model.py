"""The cost model: every paper-anchored behaviour, pattern by pattern."""

import pytest

from repro.hardware import paper_calibration, paper_testbed
from repro.memory.access import (
    AccessBatch,
    AccessProfile,
    CodeVariant,
    Locality,
    PatternKind,
    SyncCosts,
)
from repro.memory.cost_model import CostEnvironment, MemoryCostModel

EPC = Locality(0, True)
UNTRUSTED = Locality(0, False)
PLAIN = CostEnvironment(enclave_mode=False)
SGX = CostEnvironment(enclave_mode=True)


@pytest.fixture
def model():
    return MemoryCostModel(paper_testbed(), paper_calibration())


def chase(ws, locality=EPC, count=1e6):
    return AccessBatch(
        kind=PatternKind.DEPENDENT_READ,
        count=count,
        element_bytes=8,
        working_set_bytes=ws,
        locality=locality,
        parallelism=1.0,
    )


def stream(kind, ws, locality=EPC, variant=CodeVariant.SIMD, count=1e6):
    return AccessBatch(
        kind=kind,
        count=count,
        element_bytes=8,
        working_set_bytes=ws,
        locality=locality,
        variant=variant,
    )


def rmw(table_bytes, variant=CodeVariant.NAIVE, locality=EPC, sens=1.0, mlp=None):
    return AccessBatch(
        kind=PatternKind.RMW_LOOP,
        count=1e6,
        element_bytes=8,
        working_set_bytes=4e8,
        locality=locality,
        variant=variant,
        parallelism=8.0,
        compute_cycles_per_item=1.3,
        table_bytes=table_bytes,
        table_locality=locality,
        reorder_sensitivity=sens,
        mlp_sensitivity=mlp,
    )


class TestEnvironment:
    def test_invalid_concurrency_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CostEnvironment(False, concurrency=0)

    def test_invalid_node_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CostEnvironment(False, thread_node=-1)


class TestCompute:
    def test_compute_is_identity(self, model):
        batch = AccessBatch(
            kind=PatternKind.COMPUTE,
            count=1234.0,
            element_bytes=1,
            working_set_bytes=0,
            locality=UNTRUSTED,
        )
        assert model.batch_cycles(batch, PLAIN) == 1234.0
        assert model.batch_cycles(batch, SGX) == 1234.0


class TestSequential:
    def test_in_cache_equal_across_modes(self, model):
        batch = stream(PatternKind.SEQ_READ, 1e6, count=1e5)
        assert model.batch_cycles(batch, PLAIN) == model.batch_cycles(batch, SGX)

    def test_dram_read_penalty_small(self, model):
        batch = stream(PatternKind.SEQ_READ, 4e9)
        ratio = model.batch_cycles(batch, SGX) / model.batch_cycles(batch, PLAIN)
        assert ratio == pytest.approx(1.03, rel=0.01)  # Fig. 12/15

    def test_scalar_read_penalty_larger(self, model):
        batch = stream(PatternKind.SEQ_READ, 4e9, variant=CodeVariant.NAIVE)
        ratio = model.batch_cycles(batch, SGX) / model.batch_cycles(batch, PLAIN)
        assert ratio == pytest.approx(1.055, rel=0.01)  # Fig. 15

    def test_write_penalty_two_percent(self, model):
        batch = stream(PatternKind.SEQ_WRITE, 4e9)
        ratio = model.batch_cycles(batch, SGX) / model.batch_cycles(batch, PLAIN)
        assert ratio == pytest.approx(1.02, rel=0.01)

    def test_untrusted_data_no_penalty(self, model):
        batch = stream(PatternKind.SEQ_READ, 4e9, locality=UNTRUSTED)
        assert model.batch_cycles(batch, SGX) == model.batch_cycles(batch, PLAIN)

    def test_bandwidth_shared_across_threads(self, model):
        batch = stream(PatternKind.SEQ_READ, 4e9)
        one = model.batch_cycles(batch, CostEnvironment(False, concurrency=1))
        sixteen = model.batch_cycles(batch, CostEnvironment(False, concurrency=16))
        # Same per-thread byte count, but 16 threads share the socket:
        # per-thread time grows.
        assert sixteen > one

    def test_cross_numa_slower(self, model):
        batch = stream(PatternKind.SEQ_READ, 4e9)
        local = model.batch_cycles(batch, CostEnvironment(False, thread_node=0))
        cross = model.batch_cycles(batch, CostEnvironment(False, thread_node=1))
        assert cross > local

    def test_cross_numa_sgx_matches_fig16_curve(self, model):
        batch = stream(PatternKind.SEQ_READ, 4e9)
        for threads, expected in ((1, 0.77), (16, 0.95)):
            env_plain = CostEnvironment(False, thread_node=1, concurrency=threads)
            env_sgx = CostEnvironment(True, thread_node=1, concurrency=threads)
            rel = model.batch_cycles(batch, env_plain) / model.batch_cycles(
                batch, env_sgx
            )
            assert rel == pytest.approx(expected, abs=0.02)


class TestRandom:
    def test_pointer_chase_53_percent_at_16gb(self, model):
        batch = chase(16e9)
        rel = model.batch_cycles(batch, PLAIN) / model.batch_cycles(batch, SGX)
        assert rel == pytest.approx(0.53, abs=0.02)

    def test_pointer_chase_in_cache_no_penalty(self, model):
        batch = chase(1e6)
        assert model.batch_cycles(batch, PLAIN) == pytest.approx(
            model.batch_cycles(batch, SGX)
        )

    def test_dependent_ignores_parallelism(self, model):
        dependent = chase(8e9)
        independent = AccessBatch(
            kind=PatternKind.RANDOM_READ,
            count=1e6,
            element_bytes=8,
            working_set_bytes=8e9,
            locality=EPC,
            parallelism=8.0,
        )
        assert model.batch_cycles(dependent, PLAIN) > model.batch_cycles(
            independent, PLAIN
        )

    def test_random_write_worse_than_read(self, model):
        read = AccessBatch(
            kind=PatternKind.RANDOM_READ, count=1e6, element_bytes=8,
            working_set_bytes=8e9, locality=EPC, parallelism=8.0,
            compute_cycles_per_item=0.0,
        )
        write = AccessBatch(
            kind=PatternKind.RANDOM_WRITE, count=1e6, element_bytes=8,
            working_set_bytes=8e9, locality=EPC, parallelism=8.0,
            compute_cycles_per_item=0.0,
        )
        read_ratio = model.batch_cycles(read, SGX) / model.batch_cycles(read, PLAIN)
        write_ratio = model.batch_cycles(write, SGX) / model.batch_cycles(
            write, PLAIN
        )
        assert write_ratio > read_ratio > 1.0

    def test_untrusted_random_access_unpenalized(self, model):
        batch = AccessBatch(
            kind=PatternKind.RANDOM_WRITE, count=1e6, element_bytes=8,
            working_set_bytes=8e9, locality=UNTRUSTED, parallelism=8.0,
        )
        assert model.batch_cycles(batch, SGX) == model.batch_cycles(batch, PLAIN)


class TestRmwLoop:
    def test_fig7_naive_penalty(self, model):
        batch = rmw(64e3, CodeVariant.NAIVE)
        ratio = model.batch_cycles(batch, SGX) / model.batch_cycles(batch, PLAIN)
        assert ratio == pytest.approx(3.3, rel=0.05)

    def test_fig7_unrolled_penalty(self, model):
        batch = rmw(64e3, CodeVariant.UNROLLED)
        ratio = model.batch_cycles(batch, SGX) / model.batch_cycles(batch, PLAIN)
        assert ratio == pytest.approx(1.22, rel=0.05)

    def test_fig7_simd_even_smaller(self, model):
        unrolled = rmw(64e3, CodeVariant.UNROLLED)
        simd = rmw(64e3, CodeVariant.SIMD)
        assert model.batch_cycles(simd, SGX) < model.batch_cycles(unrolled, SGX)

    def test_penalty_independent_of_data_location(self, model):
        # Fig. 7: the slowdown does not depend on where the data lives.
        in_epc = rmw(64e3, locality=EPC)
        outside = rmw(64e3, locality=UNTRUSTED)
        ratio_in = model.batch_cycles(in_epc, SGX) / model.batch_cycles(
            in_epc, PLAIN
        )
        ratio_out = model.batch_cycles(outside, SGX) / model.batch_cycles(
            outside, PLAIN
        )
        assert ratio_in == pytest.approx(ratio_out, rel=0.06)

    def test_sensitivity_scales_penalty(self, model):
        exposed = rmw(64e3, sens=1.0)
        shielded = rmw(64e3, sens=0.1)
        ratio_exposed = model.batch_cycles(exposed, SGX) / model.batch_cycles(
            exposed, PLAIN
        )
        ratio_shielded = model.batch_cycles(shielded, SGX) / model.batch_cycles(
            shielded, PLAIN
        )
        assert ratio_shielded < ratio_exposed

    def test_mlp_sensitivity_separate_from_body(self, model):
        # PHT-style loop: cheap body, but DRAM overlap fully restricted.
        pht_like = rmw(256e6, sens=0.05, mlp=1.0)
        ratio = model.batch_cycles(pht_like, SGX) / model.batch_cycles(
            pht_like, PLAIN
        )
        cache_like = rmw(64e3, sens=0.05, mlp=1.0)
        cache_ratio = model.batch_cycles(cache_like, SGX) / model.batch_cycles(
            cache_like, PLAIN
        )
        # Near-zero penalty in cache, large penalty once the table misses.
        assert cache_ratio < 1.2
        assert ratio > 2.0

    def test_read_only_table_cheaper_than_writing(self, model):
        write = rmw(256e6)
        read = AccessBatch(
            kind=PatternKind.RMW_LOOP, count=1e6, element_bytes=8,
            working_set_bytes=4e8, locality=EPC, parallelism=8.0,
            compute_cycles_per_item=1.3, table_bytes=256e6,
            table_locality=EPC, table_writes=False, reorder_sensitivity=1.0,
        )
        assert model.batch_cycles(read, SGX) < model.batch_cycles(write, SGX)


class TestSyncCosts:
    def test_transitions_expensive_only_in_enclave(self, model):
        sync = SyncCosts(transitions=100)
        assert model.sync_cycles(sync, SGX) > 50 * model.sync_cycles(sync, PLAIN)

    def test_contended_mutex_explodes_in_enclave(self, model):
        contended = SyncCosts(mutex_acquisitions=1000, mutex_contention_ratio=0.9)
        uncontended = SyncCosts(mutex_acquisitions=1000, mutex_contention_ratio=0.0)
        assert model.sync_cycles(contended, SGX) > 100 * model.sync_cycles(
            uncontended, SGX
        )

    def test_spinlock_stays_cheap_in_enclave(self, model):
        mutex = SyncCosts(mutex_acquisitions=1000, mutex_contention_ratio=0.9)
        spin = SyncCosts(spinlock_acquisitions=1000, mutex_contention_ratio=0.9)
        assert model.sync_cycles(spin, SGX) < model.sync_cycles(mutex, SGX) / 10

    def test_edmm_pages_cost_more_than_static(self, model):
        dynamic = SyncCosts(pages_added_dynamically=1000)
        static = SyncCosts(pages_touched_statically=1000)
        assert model.sync_cycles(dynamic, SGX) > 10 * model.sync_cycles(static, SGX)

    def test_profile_cycles_includes_sync(self, model):
        profile = AccessProfile()
        profile.compute(1000)
        profile.sync.transitions = 10
        total = model.profile_cycles(profile, SGX)
        assert total > 1000 + 10 * 7000
