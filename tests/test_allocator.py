"""Memory allocator: NUMA placement, EPC capacity, free semantics."""

import pytest

from repro.errors import AccessViolationError, AllocationError, EpcExhaustedError
from repro.hardware import Topology, paper_testbed
from repro.memory.allocator import MemoryAllocator
from repro.units import GiB


@pytest.fixture
def allocator():
    return MemoryAllocator(Topology(paper_testbed()))


class TestAllocation:
    def test_untrusted_allocation_counts_dram_only(self, allocator):
        allocator.allocate("buf", 1 * GiB, node=0)
        assert allocator.dram_used(0) == 1 * GiB
        assert allocator.epc_used(0) == 0

    def test_enclave_allocation_counts_epc(self, allocator):
        allocator.allocate("heap", 2 * GiB, node=1, in_enclave=True)
        assert allocator.epc_used(1) == 2 * GiB
        assert allocator.dram_used(1) == 2 * GiB
        assert allocator.epc_used(0) == 0

    def test_epc_is_per_node(self, allocator):
        allocator.allocate("a", 60 * GiB, node=0, in_enclave=True)
        # Node 1 still has its full 64 GiB.
        assert allocator.epc_free(1) == 64 * GiB

    def test_epc_exhaustion_raises(self, allocator):
        allocator.allocate("a", 60 * GiB, node=0, in_enclave=True)
        with pytest.raises(EpcExhaustedError):
            allocator.allocate("b", 8 * GiB, node=0, in_enclave=True)

    def test_epc_exhaustion_is_also_capacity_error(self, allocator):
        from repro.errors import CapacityError

        allocator.allocate("a", 64 * GiB, node=0, in_enclave=True)
        with pytest.raises(CapacityError):
            allocator.allocate("b", 1, node=0, in_enclave=True)

    def test_dram_exhaustion_raises(self, allocator):
        allocator.allocate("a", 255 * GiB, node=0)
        with pytest.raises(AllocationError):
            allocator.allocate("b", 2 * GiB, node=0)

    def test_negative_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate("bad", -1)

    def test_peak_epc_tracked(self, allocator):
        a = allocator.allocate("a", 4 * GiB, node=0, in_enclave=True)
        allocator.free(a)
        allocator.allocate("b", 1 * GiB, node=0, in_enclave=True)
        assert allocator.peak_epc_bytes == 4 * GiB


class TestFree:
    def test_free_returns_capacity(self, allocator):
        region = allocator.allocate("a", 1 * GiB, node=0, in_enclave=True)
        allocator.free(region)
        assert allocator.epc_used(0) == 0
        assert allocator.dram_used(0) == 0

    def test_double_free_raises(self, allocator):
        region = allocator.allocate("a", 1024)
        allocator.free(region)
        with pytest.raises(AccessViolationError):
            allocator.free(region)

    def test_use_after_free_raises(self, allocator):
        region = allocator.allocate("a", 1024)
        allocator.free(region)
        with pytest.raises(AccessViolationError):
            _ = region.locality

    def test_free_all(self, allocator):
        allocator.allocate("a", 1024)
        allocator.allocate("b", 2048, node=1, in_enclave=True)
        allocator.free_all()
        assert allocator.live_regions == 0
        assert allocator.dram_used(0) == 0
        assert allocator.epc_used(1) == 0

    def test_resolve_live_and_dead(self, allocator):
        region = allocator.allocate("a", 1024)
        assert allocator.resolve(region.region_id) is region
        allocator.free(region)
        assert allocator.resolve(region.region_id) is None


class TestLocality:
    def test_region_locality_matches_placement(self, allocator):
        region = allocator.allocate("a", 1024, node=1, in_enclave=True)
        locality = region.locality
        assert locality.node == 1
        assert locality.in_enclave
