"""Alternative platforms: the SGXv1 legacy model and its EPC paging."""

import pytest

from repro.core.joins import CrkJoin, ParallelHashJoin, RadixJoin
from repro.enclave.enclave import EnclaveConfig
from repro.enclave.runtime import ExecutionSetting
from repro.hardware.platforms import (
    emerald_rapids_testbed,
    sgxv1_calibration,
    sgxv1_testbed,
)
from repro.machine import SimMachine
from repro.memory.access import AccessBatch, Locality, PatternKind
from repro.memory.cost_model import CostEnvironment, MemoryCostModel
from repro.tables import generate_join_relation_pair
from repro.units import GiB, MiB

SGX = ExecutionSetting.sgx_data_in_enclave()


@pytest.fixture
def legacy():
    return SimMachine(sgxv1_testbed(), sgxv1_calibration())


class TestPlatformSpecs:
    def test_sgxv1_epc_tiny(self):
        spec = sgxv1_testbed()
        assert spec.epc_bytes_per_socket == 93 * MiB
        assert spec.sockets == 1

    def test_sgxv1_paging_enabled(self):
        params = sgxv1_calibration()
        assert params.epc_paging_enabled
        assert params.epc_page_fault_cycles > 10_000

    def test_sgxv2_paging_disabled(self):
        machine = SimMachine()
        assert not machine.params.epc_paging_enabled

    def test_emerald_rapids_bigger(self):
        spec = emerald_rapids_testbed()
        base = SimMachine().spec
        assert spec.cores_per_socket > base.cores_per_socket
        assert spec.epc_bytes_per_socket > base.epc_bytes_per_socket


class TestPagingCostModel:
    def _model(self):
        return MemoryCostModel(sgxv1_testbed(), sgxv1_calibration())

    def test_within_epc_no_paging(self):
        model = self._model()
        batch = AccessBatch(
            kind=PatternKind.RANDOM_READ, count=1e5, element_bytes=8,
            working_set_bytes=50 * MiB, locality=Locality(0, True),
            parallelism=8.0,
        )
        sgx = model.batch_cycles(batch, CostEnvironment(True))
        plain = model.batch_cycles(batch, CostEnvironment(False))
        assert sgx < 10 * plain  # slow MEE, but no paging collapse

    def test_beyond_epc_random_collapses(self):
        model = self._model()
        batch = AccessBatch(
            kind=PatternKind.RANDOM_READ, count=1e5, element_bytes=8,
            working_set_bytes=1 * GiB, locality=Locality(0, True),
            parallelism=8.0,
        )
        sgx = model.batch_cycles(batch, CostEnvironment(True))
        plain = model.batch_cycles(batch, CostEnvironment(False))
        assert sgx > 100 * plain  # the orders-of-magnitude regime

    def test_untrusted_data_never_pages(self):
        model = self._model()
        batch = AccessBatch(
            kind=PatternKind.RANDOM_READ, count=1e5, element_bytes=8,
            working_set_bytes=1 * GiB, locality=Locality(0, False),
            parallelism=8.0,
        )
        assert model.batch_cycles(
            batch, CostEnvironment(True)
        ) == model.batch_cycles(batch, CostEnvironment(False))

    def test_sequential_paging_cheaper_than_random(self):
        model = self._model()
        common = dict(
            count=1e6, element_bytes=8, working_set_bytes=1 * GiB,
            locality=Locality(0, True), parallelism=8.0,
        )
        seq = AccessBatch(kind=PatternKind.SEQ_READ, **common)
        rnd = AccessBatch(kind=PatternKind.RANDOM_READ, **common)
        env = CostEnvironment(True)
        assert model.batch_cycles(seq, env) < model.batch_cycles(rnd, env) / 10


class TestOversubscription:
    def test_legacy_machine_allows_big_enclaves(self, legacy):
        config = EnclaveConfig(heap_bytes=1 * GiB, node=0)
        with legacy.context(SGX, enclave_config=config) as ctx:
            region = ctx.allocate("big", 500 * MiB)
            assert region.in_enclave

    def test_sgxv2_machine_still_enforces_epc(self):
        from repro.errors import EpcExhaustedError

        machine = SimMachine()
        config = EnclaveConfig(heap_bytes=100 * GiB, node=0)
        with pytest.raises(EpcExhaustedError):
            machine.context(SGX, enclave_config=config)


class TestLegacyJoins:
    """The CrkJoin story: right for SGXv1, wrong for SGXv2."""

    @pytest.fixture(scope="class")
    def tables(self):
        return generate_join_relation_pair(
            50e6, 200e6, seed=17, physical_row_cap=60_000
        )

    def _throughput(self, machine, join, tables):
        build, probe = tables
        config = EnclaveConfig(heap_bytes=2 * GiB, node=0)
        with machine.context(
            SGX, threads=machine.spec.cores_per_socket, enclave_config=config
        ) as ctx:
            result = join.run(ctx, build, probe)
        return result.throughput_rows_per_s(machine.frequency_hz)

    def test_crkjoin_wins_on_sgxv1(self, legacy, tables):
        crk = self._throughput(legacy, CrkJoin(), tables)
        rho = self._throughput(
            SimMachine(sgxv1_testbed(), sgxv1_calibration()), RadixJoin(), tables
        )
        pht = self._throughput(
            SimMachine(sgxv1_testbed(), sgxv1_calibration()),
            ParallelHashJoin(), tables,
        )
        assert crk > rho > pht

    def test_ordering_inverts_on_sgxv2(self, tables):
        crk = self._throughput(SimMachine(), CrkJoin(), tables)
        rho = self._throughput(SimMachine(), RadixJoin(), tables)
        assert rho > 5 * crk
