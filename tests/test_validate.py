"""The calibration validator: all anchors hold; failures are detected."""

import dataclasses

import pytest

from repro.bench.validate import (
    AnchorCheck,
    CalibrationValidator,
    validate_calibration,
)
from repro.hardware import paper_calibration, paper_testbed
from repro.machine import SimMachine


class TestAnchorCheck:
    def test_pass_within_tolerance(self):
        check = AnchorCheck("x", "src", 2.0, 2.1, 0.08)
        assert check.passed

    def test_fail_outside_tolerance(self):
        check = AnchorCheck("x", "src", 2.0, 2.5, 0.08)
        assert not check.passed

    def test_zero_expected_uses_absolute(self):
        assert AnchorCheck("x", "src", 0.0, 0.05, 0.08).passed
        assert not AnchorCheck("x", "src", 0.0, 0.2, 0.08).passed

    def test_describe_contains_status(self):
        assert "[ok ]" in AnchorCheck("x", "src", 1.0, 1.0, 0.1).describe()
        assert "[FAIL]" in AnchorCheck("x", "src", 1.0, 9.0, 0.1).describe()


class TestValidator:
    def test_default_calibration_passes_every_anchor(self):
        checks = validate_calibration()
        failures = [check for check in checks if not check.passed]
        assert not failures, "\n".join(c.describe() for c in failures)

    def test_anchor_count(self):
        assert len(validate_calibration()) == 13

    def test_detects_broken_calibration(self):
        broken = dataclasses.replace(
            paper_calibration(), rmw_loop_penalty_naive=2.0
        )
        machine = SimMachine(paper_testbed(), broken)
        checks = CalibrationValidator(machine).run()
        by_name = {check.name: check for check in checks}
        assert not by_name["naive RMW loop"].passed
        # The rest of the anchors are unaffected.
        assert by_name["dependent reads at 16 GB"].passed

    def test_report_summarizes(self):
        report = CalibrationValidator().report()
        assert report.startswith("calibration validation: 13/13")
        assert report.count("[ok ]") == 13

    def test_tolerance_parameter(self):
        # With a near-zero tolerance some model/paper rounding must fail...
        tight = CalibrationValidator().run(tolerance=1e-6)
        assert any(not check.passed for check in tight)
        # ...and a loose one passes everything.
        loose = CalibrationValidator().run(tolerance=0.5)
        assert all(check.passed for check in loose)
