"""repro.backends: equivalence gate, SGX cost envelope, backend wiring."""

from __future__ import annotations

import importlib.util
import json
import re

import pytest

from repro.backends import (
    BACKENDS_EXTRA,
    SQLiteBackend,
    SimBackend,
    assert_equivalent,
    bag_digest,
    canonical_bag,
    current_backend_mode,
    make_engine,
    materialize,
    missing_reason,
    use_backend_mode,
    validate_mode,
)
from repro.backends.envelope import (
    SgxCostEnvelope,
    get_profile,
    load_profiles,
)
from repro.backends.serving import engine_profile, gate_template
from repro.cache.keys import experiment_key
from repro.cli import main as cli_main
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError, EquivalenceError
from repro.hardware.platforms import sgxv1_calibration, sgxv1_testbed
from repro.machine import SimMachine
from repro.trace import Tracer, backend_breakdown, use_tracer
from repro.workload.jobs import (
    JobCatalog,
    JobKind,
    JobTemplate,
    serving_templates,
)

HAVE_DUCKDB = importlib.util.find_spec("duckdb") is not None


class TestEquivalence:
    def test_empty_bags_agree(self):
        assert assert_equivalent({"a": [], "b": []}) == bag_digest([])

    def test_empty_vs_nonempty_fails(self):
        with pytest.raises(EquivalenceError, match="row counts differ"):
            assert_equivalent({"a": [], "b": [(1,)]})

    def test_all_null_columns(self):
        rows = [(None, None), (None, None)]
        assert assert_equivalent({"a": rows, "b": list(rows)})
        with pytest.raises(EquivalenceError):
            assert_equivalent({"a": rows, "b": [(None, None), (None, 0)]})

    def test_duplicate_rows_are_a_bag_not_a_set(self):
        with pytest.raises(EquivalenceError):
            assert_equivalent({"a": [(1,), (1,)], "b": [(1,)]})
        assert assert_equivalent({"a": [(1,), (1,)], "b": [(1,), (1,)]})

    def test_float_ties_at_quantization_boundary(self):
        # Differences far below the quantum collapse to one digest...
        assert bag_digest([(0.1 + 0.2,)]) == bag_digest([(0.3,)])
        assert bag_digest([(1.0000000000004,)]) == bag_digest([(1,)])
        # ...but real differences above it stay distinct.
        assert bag_digest([(1.00001,)]) != bag_digest([(1,)])

    def test_int_float_unify(self):
        assert bag_digest([(1,)]) == bag_digest([(1.0,)])
        assert bag_digest([(-0.0,)]) == bag_digest([(0,)])
        assert bag_digest([(True,)]) == bag_digest([(1,)])

    def test_nan_and_infinities_are_stable(self):
        weird = [(float("nan"), float("inf"), float("-inf"))]
        assert bag_digest(weird) == bag_digest(list(weird))

    def test_column_order_insensitivity(self):
        assert bag_digest([(1, 2), (3, 4)]) == bag_digest([(2, 1), (4, 3)])

    def test_column_order_insensitivity_for_large_ints(self):
        # Regression guard: value ordering must be exact, not via a lossy
        # float rendering (2**60 and 2**60 + 1 format identically there).
        a, b = 2**60, 2**60 + 1
        assert bag_digest([(a, b)]) == bag_digest([(b, a)])

    def test_row_order_insensitivity(self):
        assert bag_digest([(1,), (2,)]) == bag_digest([(2,), (1,)])

    def test_canonical_bag_is_json_stable(self):
        bag = canonical_bag([(2, None), (1.5, "x")])
        json.dumps(bag)  # must be serializable as-is

    def test_error_names_backends_and_first_difference(self):
        with pytest.raises(EquivalenceError, match="sim.*other"):
            assert_equivalent(
                {"sim": [(1,)], "other": [(2,)]}, context="t"
            )


class TestBackendsAgree:
    """Sim and SQLite must produce identical bags on every template."""

    @pytest.mark.parametrize("name", sorted(serving_templates()))
    def test_serving_template_bags_match(self, name):
        catalog = JobCatalog()
        digest = gate_template(catalog, serving_templates()[name], "sqlite")
        assert len(digest) == 64

    def test_sqlite_rows_match_sim_rows_directly(self):
        template = serving_templates()["scan-small"]
        catalog = JobCatalog()
        dataset = materialize(
            template, seed=13, row_cap=catalog.row_cap, sf_cap=catalog.sf_cap
        )
        sim_rows = SimBackend(catalog).compute_rows(dataset)
        engine_rows, profile = SQLiteBackend().run_template(
            template, seed=13, row_cap=catalog.row_cap, sf_cap=catalog.sf_cap
        )
        assert canonical_bag(sim_rows) == canonical_bag(engine_rows)
        assert profile.simulated is False
        assert profile.rows == len(engine_rows)


class TestEnvelope:
    def test_artifact_loads_and_prices(self):
        profiles = load_profiles()
        template = serving_templates()["q12"]
        cost = SgxCostEnvelope().price(
            get_profile("sqlite", template, profiles), template
        )
        assert cost.plain_s > 0
        assert cost.init_s > 0
        assert cost.in_enclave_s > cost.plain_s
        assert cost.overhead > 1.0
        assert cost.paging_s == 0.0  # SGXv2: no EPC paging

    def test_sgxv1_pays_paging_beyond_the_epc(self):
        profiles = load_profiles()
        template = serving_templates()["join-medium"]
        profile = get_profile("sqlite", template, profiles)
        v2 = SgxCostEnvelope().price(profile, template)
        v1 = SgxCostEnvelope(
            SimMachine(sgxv1_testbed(), sgxv1_calibration())
        ).price(profile, template)
        assert v1.paging_s > 0.0
        assert v1.in_enclave_s > v2.in_enclave_s

    def test_unknown_profile_names_the_calibrate_command(self):
        template = JobTemplate(
            name="nowhere", kind=JobKind.SCAN, scan_bytes=1e6
        )
        with pytest.raises(ConfigurationError, match="calibrate"):
            get_profile("sqlite", template, load_profiles())


class TestConfig:
    def test_validate_mode(self):
        assert validate_mode("sim") == "sim"
        with pytest.raises(ConfigurationError, match="unknown backend"):
            validate_mode("postgres")

    def test_ambient_channel_nests_and_restores(self):
        assert current_backend_mode() is None
        with use_backend_mode("sqlite"):
            assert current_backend_mode() == "sqlite"
            with use_backend_mode("sim"):
                assert current_backend_mode() == "sim"
            assert current_backend_mode() == "sqlite"
        assert current_backend_mode() is None

    def test_missing_reason_names_the_extra(self):
        assert missing_reason("sim") is None
        assert missing_reason("sqlite") is None
        if not HAVE_DUCKDB:
            assert BACKENDS_EXTRA in missing_reason("duckdb")

    @pytest.mark.skipif(HAVE_DUCKDB, reason="duckdb wheel installed")
    def test_unavailable_engine_raises_one_configuration_error(self):
        with pytest.raises(ConfigurationError, match=re.escape(BACKENDS_EXTRA)):
            make_engine("duckdb")


class TestCatalogRegression:
    def test_duplicate_template_name_rejected(self):
        catalog = JobCatalog()
        first = JobTemplate(
            name="dup", kind=JobKind.SCAN, threads=1, scan_bytes=1e6
        )
        catalog.profile(first)
        # Same name, same fields: fine (the cache answers).
        catalog.profile(
            JobTemplate(name="dup", kind=JobKind.SCAN, threads=1,
                        scan_bytes=1e6)
        )
        with pytest.raises(ConfigurationError, match="already registered"):
            catalog.profile(
                JobTemplate(name="dup", kind=JobKind.SCAN, threads=1,
                            scan_bytes=2e6)
            )
        with pytest.raises(ConfigurationError, match="already registered"):
            catalog.cost(
                JobTemplate(name="dup", kind=JobKind.SCAN, threads=2,
                            scan_bytes=1e6),
                ExecutionSetting.plain_cpu(),
            )

    def test_engine_and_sim_profiles_do_not_share_cache_entries(self):
        catalog = JobCatalog()
        template = serving_templates()["scan-small"]
        sim_cost = catalog.cost(template, ExecutionSetting.plain_cpu())
        with use_backend_mode("sqlite"):
            engine_cost = catalog.cost(template, ExecutionSetting.plain_cpu())
        assert engine_cost.service_s != sim_cost.service_s
        # And the sim entry is still intact afterwards.
        again = catalog.cost(template, ExecutionSetting.plain_cpu())
        assert again.service_s == sim_cost.service_s


class TestServingBridge:
    def test_engine_profile_prices_both_settings_and_traces(self):
        catalog = JobCatalog()
        template = serving_templates()["q12"]
        tracer = Tracer()
        with use_tracer(tracer):
            profile = engine_profile(catalog, template, "sqlite")
        plain, enclave = JobCatalog.SETTINGS
        assert (
            profile.service_seconds_by_setting[enclave.label]
            > profile.service_seconds_by_setting[plain.label]
        )
        assert profile.working_set_bytes > 0
        names = [r.name for r in tracer.records]
        assert names.count("backend.equivalence") == 1
        assert names.count("backend.envelope") == 1
        breakdown = backend_breakdown(tracer)
        assert breakdown.gates_passed == 1
        assert breakdown.priced == 1
        assert breakdown.in_enclave_s > breakdown.plain_s * 0  # well-formed
        assert breakdown.gated_rows > 0

    def test_gate_runs_once_per_catalog_and_template(self):
        catalog = JobCatalog()
        template = serving_templates()["scan-small"]
        tracer = Tracer()
        with use_tracer(tracer):
            engine_profile(catalog, template, "sqlite")
            engine_profile(catalog, template, "sqlite")
        names = [r.name for r in tracer.records]
        assert names.count("backend.equivalence") == 1


class TestCacheKeys:
    def test_backend_none_and_sim_key_identically(self):
        base = experiment_key("wl01", quick=True, base_seed=42)
        assert base == experiment_key(
            "wl01", quick=True, base_seed=42, backend=None
        )
        assert base == experiment_key(
            "wl01", quick=True, base_seed=42, backend="sim"
        )

    def test_engine_backends_never_alias_sim(self):
        base = experiment_key("wl01", quick=True, base_seed=42)
        sqlite = experiment_key(
            "wl01", quick=True, base_seed=42, backend="sqlite"
        )
        duckdb = experiment_key(
            "wl01", quick=True, base_seed=42, backend="duckdb"
        )
        assert len({base, sqlite, duckdb}) == 3


class TestCli:
    def test_unknown_backend_exits_2(self, capsys):
        assert cli_main(["wl01", "--backend", "postgres"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    @pytest.mark.skipif(HAVE_DUCKDB, reason="duckdb wheel installed")
    def test_unavailable_backend_exits_2_naming_the_extra(
        self, capsys, tmp_path
    ):
        out = tmp_path / "csv"
        assert cli_main(
            ["wl01", "--backend", "duckdb", "--csv", str(out)]
        ) == 2
        err = capsys.readouterr().err
        assert BACKENDS_EXTRA in err
        assert "Traceback" not in err
        assert not out.exists()  # fail-fast: no dirs created

    def test_engine_backend_rejects_nonstatic_planner(self, capsys):
        assert cli_main(
            ["wl01", "--backend", "sqlite", "--planner", "cost"]
        ) == 2
        assert "static" in capsys.readouterr().err

    def test_sim_backend_allows_planners(self, capsys):
        # 'sim' + a planner is fine; unknown experiment keeps it cheap.
        assert cli_main(
            ["nope", "--backend", "sim", "--planner", "cost"]
        ) == 2
        assert "unknown experiment" in capsys.readouterr().err
