"""Unit helpers: conversions and formatting."""

import pytest

from repro import units


class TestConversions:
    def test_cycles_to_seconds_roundtrip(self):
        cycles = 2.9e9
        seconds = units.cycles_to_seconds(cycles, 2.9e9)
        assert seconds == pytest.approx(1.0)
        assert units.seconds_to_cycles(seconds, 2.9e9) == pytest.approx(cycles)

    def test_nanoseconds_to_cycles(self):
        # 89 ns at 2.9 GHz is ~258 cycles (the testbed's DRAM latency).
        assert units.nanoseconds_to_cycles(89, 2.9e9) == pytest.approx(258.1)

    def test_bandwidth_cycles_per_byte(self):
        # 29 GB/s at 2.9 GHz -> 0.1 cycles per byte.
        assert units.bandwidth_cycles_per_byte(29e9, 2.9e9) == pytest.approx(0.1)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_zero_or_negative_frequency_rejected(self, bad):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(1.0, bad)
        with pytest.raises(ValueError):
            units.seconds_to_cycles(1.0, bad)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.bandwidth_cycles_per_byte(0, 2.9e9)


class TestPrefixes:
    def test_decimal_and_binary_differ(self):
        assert units.MB == 1_000_000
        assert units.MiB == 1_048_576
        assert units.GiB > units.GB

    def test_cache_line_and_page(self):
        assert units.CACHE_LINE_BYTES == 64
        assert units.PAGE_BYTES == 4096


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (400e6, "400 MB"),
            (1e9, "1 GB"),
            (512, "512 B"),
            (1500, "1.5 KB"),
        ],
    )
    def test_format_bytes(self, value, expected):
        assert units.format_bytes(value) == expected

    def test_format_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_bytes(-1)

    @pytest.mark.parametrize(
        "value,expected",
        [
            (60e6, "60 M rows/s"),
            (1.2e9, "1.20 B rows/s"),
            (5e3, "5 K rows/s"),
            (12, "12 rows/s"),
        ],
    )
    def test_format_throughput(self, value, expected):
        assert units.format_throughput_rows(value) == expected

    def test_format_bandwidth(self):
        assert units.format_bandwidth(67.2e9) == "67.2 GB/s"

    @pytest.mark.parametrize(
        "value,expected",
        [
            (2.0, "2 s"),
            (0.005, "5 ms"),
            (2e-6, "2 us"),
            (3e-9, "3 ns"),
        ],
    )
    def test_format_seconds(self, value, expected):
        assert units.format_seconds(value) == expected
