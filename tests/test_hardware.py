"""Hardware spec, topology, and calibration validation."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    CacheSpec,
    CostParameters,
    MemorySpec,
    Topology,
    paper_calibration,
    paper_testbed,
)
from repro.units import GiB, KiB, MiB


class TestPaperTestbed:
    """The default spec must encode Table 1 exactly."""

    def test_table1_values(self):
        spec = paper_testbed()
        assert spec.sockets == 2
        assert spec.cores_per_socket == 16
        assert spec.threads_per_core == 2
        assert spec.base_frequency_hz == 2.9e9
        assert spec.l1d.capacity_bytes == 48 * KiB
        assert spec.l2.capacity_bytes == 1280 * KiB
        assert spec.l3.capacity_bytes == 24 * MiB
        assert spec.memory.channels == 8
        assert spec.epc_bytes_per_socket == 64 * GiB
        assert spec.memory.capacity_bytes == 256 * GiB

    def test_derived_totals(self):
        spec = paper_testbed()
        assert spec.total_cores == 32
        assert spec.total_threads == 64

    def test_upi_bound_is_fig16_limit(self):
        # Sec. 5.5: "the theoretical upper bound ... is 67.2 GB/s".
        spec = paper_testbed()
        assert spec.upi_total_bandwidth_bytes == pytest.approx(67.2e9)

    def test_socket_bandwidth_below_theoretical_peak(self):
        spec = paper_testbed()
        assert spec.socket_stream_bandwidth_bytes() < spec.memory.peak_bandwidth_bytes

    def test_single_core_below_socket_bandwidth(self):
        spec = paper_testbed()
        assert (
            spec.single_core_stream_bandwidth_bytes()
            < spec.socket_stream_bandwidth_bytes()
        )

    def test_notes_record_microcode(self):
        assert "20231114" in paper_testbed().notes["microcode"]


class TestSpecValidation:
    def test_cache_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            CacheSpec("L1", 0, shared_by=1, latency_cycles=4)

    def test_memory_rejects_zero_channels(self):
        with pytest.raises(ConfigurationError):
            MemorySpec(0, 25.6e9, 1 * GiB, 90, 50)

    def test_spec_rejects_zero_sockets(self):
        spec = paper_testbed()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(spec, sockets=0)


class TestTopology:
    def test_core_count_and_node_assignment(self):
        topo = Topology(paper_testbed())
        assert len(topo.nodes) == 2
        assert topo.node_of_core(0) == 0
        assert topo.node_of_core(15) == 0
        assert topo.node_of_core(16) == 1
        assert topo.node_of_core(31) == 1

    def test_cores_on_node(self):
        topo = Topology(paper_testbed())
        assert topo.cores_on_node(1, 4) == [16, 17, 18, 19]

    def test_cores_on_node_over_capacity_rejected(self):
        topo = Topology(paper_testbed())
        with pytest.raises(ConfigurationError):
            topo.cores_on_node(0, 17)

    def test_unknown_node_rejected(self):
        topo = Topology(paper_testbed())
        with pytest.raises(ConfigurationError):
            topo.node(2)

    def test_unknown_core_rejected(self):
        topo = Topology(paper_testbed())
        with pytest.raises(ConfigurationError):
            topo.core(64)

    def test_interleaved_cores_alternate_nodes(self):
        topo = Topology(paper_testbed())
        cores = topo.interleaved_cores(4)
        nodes = [topo.node_of_core(c) for c in cores]
        assert nodes == [0, 1, 0, 1]

    def test_is_cross_numa(self):
        topo = Topology(paper_testbed())
        assert not topo.is_cross_numa(0, 0)
        assert topo.is_cross_numa(0, 1)
        assert topo.is_cross_numa(16, 0)


class TestCalibration:
    def test_paper_anchors(self):
        params = paper_calibration()
        # Fig. 5: 53 % relative reads at 16 GB.
        assert params.random_read_penalty_max == pytest.approx(1 / 0.53)
        # Fig. 5: writes 2x at 256 MB, ~3x at 8 GB.
        assert params.random_write_penalty_at_256mb == pytest.approx(2.0)
        assert params.random_write_penalty_max == pytest.approx(2.95)
        # Fig. 7: 225 % naive, 20 % unrolled.
        assert params.rmw_loop_penalty_naive == pytest.approx(3.25)
        assert params.rmw_loop_penalty_unrolled == pytest.approx(1.20)
        # Fig. 16: 77 % -> 96 %.
        assert params.upi_seq_single_thread_relative == pytest.approx(0.77)
        assert params.upi_seq_saturated_relative == pytest.approx(0.96)

    def test_rejects_speedup_factors(self):
        params = paper_calibration()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(params, rmw_loop_penalty_naive=0.9)

    def test_rejects_misordered_rmw_penalties(self):
        params = paper_calibration()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(params, rmw_loop_penalty_simd=2.0)

    def test_rejects_inverted_upi_curve(self):
        params = paper_calibration()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(params, upi_seq_single_thread_relative=0.99)

    def test_rejects_out_of_range_linear_penalty(self):
        params = paper_calibration()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(params, linear_write_penalty=1.5)

    def test_is_frozen(self):
        params = paper_calibration()
        with pytest.raises(dataclasses.FrozenInstanceError):
            params.transition_cycles = 0


class TestCrossSocketBytes:
    """The UPI transfer-pricing helper behind cluster shuffles."""

    def test_same_socket_is_free(self):
        topo = Topology(paper_testbed())
        assert topo.cross_socket_bytes(0, 15, 1e9) == 0.0

    def test_zero_bytes_cost_nothing(self):
        topo = Topology(paper_testbed())
        assert topo.cross_socket_bytes(0, 16, 0.0) == 0.0

    def test_negative_bytes_rejected(self):
        topo = Topology(paper_testbed())
        with pytest.raises(ConfigurationError):
            topo.cross_socket_bytes(0, 16, -1.0)

    def test_single_thread_regime_pinned(self):
        # One core drives the transfer: its own DRAM concurrency limit
        # binds, scaled by the calibrated SGX single-thread relative.
        spec = paper_testbed()
        params = paper_calibration()
        topo = Topology(spec)
        nbytes = 1e9
        plain = min(
            spec.single_core_stream_bandwidth_bytes(),
            spec.upi_total_bandwidth_bytes,
        )
        expected = nbytes / (plain * params.upi_seq_single_thread_relative)
        assert topo.cross_socket_bytes(0, 16, nbytes) == pytest.approx(
            expected
        )

    def test_saturated_regime_pinned(self):
        # Many cores pull concurrently: the aggregate UPI bandwidth binds,
        # scaled by the saturated relative (Fig. 16's plateau).
        spec = paper_testbed()
        params = paper_calibration()
        topo = Topology(spec)
        nbytes = 1e9
        expected = nbytes / (
            spec.upi_total_bandwidth_bytes
            * params.upi_seq_saturated_relative
        )
        assert topo.cross_socket_bytes(
            0, 16, nbytes, saturated=True
        ) == pytest.approx(expected)

    def test_saturated_beats_single_thread(self):
        topo = Topology(paper_testbed())
        single = topo.cross_socket_bytes(0, 16, 1e9)
        saturated = topo.cross_socket_bytes(0, 16, 1e9, saturated=True)
        assert saturated < single

    def test_explicit_params_override_ambient_calibration(self):
        spec = paper_testbed()
        params = dataclasses.replace(
            paper_calibration(),
            upi_seq_single_thread_relative=0.5,
            upi_seq_saturated_relative=1.0,
        )
        topo = Topology(spec)
        default = topo.cross_socket_bytes(0, 16, 1e9)
        slower = topo.cross_socket_bytes(0, 16, 1e9, params=params)
        assert slower > default
