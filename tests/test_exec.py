"""Execution layer: clock, placement, task-queue model, phase executor."""

import pytest

from repro.enclave.runtime import ExecutionSetting
from repro.enclave.sync import LockKind
from repro.errors import ConfigurationError, ExecutionError
from repro.exec.executor import ParallelExecutor
from repro.exec.placement import Placement
from repro.exec.queue import TaskQueueModel
from repro.exec.simclock import SimClock
from repro.hardware import Topology, paper_calibration, paper_testbed
from repro.memory.access import AccessProfile, Locality
from repro.memory.cost_model import MemoryCostModel


@pytest.fixture
def topology():
    return Topology(paper_testbed())


@pytest.fixture
def cost_model():
    return MemoryCostModel(paper_testbed(), paper_calibration())


class TestSimClock:
    def test_advance_and_seconds(self):
        clock = SimClock(2.9e9)
        clock.advance(2.9e9)
        assert clock.seconds == pytest.approx(1.0)

    def test_negative_advance_rejected(self):
        clock = SimClock(1e9)
        with pytest.raises(ConfigurationError):
            clock.advance(-1)

    def test_marks_nest(self):
        clock = SimClock(1e9)
        clock.mark()
        clock.advance(100)
        clock.mark()
        clock.advance(50)
        assert clock.elapsed_since_mark() == 50
        assert clock.elapsed_since_mark() == 150

    def test_elapsed_without_mark_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock(1e9).elapsed_since_mark()


class TestPlacement:
    def test_on_node(self, topology):
        placement = Placement.on_node(topology, 1, 4)
        assert placement.threads == 4
        assert placement.nodes() == [1, 1, 1, 1]

    def test_all_cores(self, topology):
        placement = Placement.all_cores(topology)
        assert placement.threads == 32
        assert set(placement.nodes()) == {0, 1}

    def test_single(self, topology):
        placement = Placement.single(topology, core=17)
        assert placement.node_of(0) == 1

    def test_duplicate_cores_rejected(self, topology):
        with pytest.raises(ConfigurationError):
            Placement((0, 0), topology)

    def test_empty_placement_rejected(self, topology):
        with pytest.raises(ConfigurationError):
            Placement((), topology)

    def test_unknown_thread_index_rejected(self, topology):
        placement = Placement.single(topology)
        with pytest.raises(ConfigurationError):
            placement.node_of(1)


class TestTaskQueueModel:
    def test_uncontended_single_thread(self):
        model = TaskQueueModel(LockKind.SDK_MUTEX, paper_calibration())
        usage = model.resolve(
            tasks=100, threads=1, task_cycles=1000, enclave_mode=True
        )
        assert usage.contention_ratio == 0.0

    def test_small_tasks_force_contention(self):
        model = TaskQueueModel(LockKind.SDK_MUTEX, paper_calibration())
        usage = model.resolve(
            tasks=100_000, threads=16, task_cycles=100, enclave_mode=True
        )
        assert usage.contention_ratio > 0.9

    def test_enclave_mutex_costlier_than_plain(self):
        model = TaskQueueModel(LockKind.SDK_MUTEX, paper_calibration())
        sgx = model.resolve(tasks=10_000, threads=16, task_cycles=500,
                            enclave_mode=True)
        plain = model.resolve(tasks=10_000, threads=16, task_cycles=500,
                              enclave_mode=False)
        assert sgx.lock_cycles > 10 * plain.lock_cycles

    def test_lock_free_cheap_even_contended(self):
        model = TaskQueueModel(LockKind.LOCK_FREE, paper_calibration())
        usage = model.resolve(
            tasks=100_000, threads=16, task_cycles=100, enclave_mode=True
        )
        assert usage.lock_cycles < 500

    def test_ops_split_across_threads(self):
        model = TaskQueueModel(LockKind.LOCK_FREE, paper_calibration())
        usage = model.resolve(tasks=160, threads=16, task_cycles=1e4,
                              enclave_mode=False)
        assert usage.operations_per_thread == 20  # 2 ops/task / 16 threads

    def test_invalid_inputs_rejected(self):
        model = TaskQueueModel(LockKind.SPIN_LOCK, paper_calibration())
        with pytest.raises(ConfigurationError):
            model.resolve(tasks=-1, threads=1, task_cycles=1, enclave_mode=False)
        with pytest.raises(ConfigurationError):
            model.resolve(tasks=1, threads=0, task_cycles=1, enclave_mode=False)


class TestParallelExecutor:
    def _executor(self, topology, cost_model, threads=4):
        placement = Placement.on_node(topology, 0, threads)
        return ParallelExecutor(
            cost_model, ExecutionSetting.plain_cpu(), placement
        )

    def _profile(self, cycles):
        profile = AccessProfile()
        profile.compute(cycles)
        return profile

    def test_phase_takes_slowest_thread(self, topology, cost_model):
        executor = self._executor(topology, cost_model)
        result = executor.run_phase(
            "p", [self._profile(c) for c in (100, 400, 200, 300)]
        )
        assert max(result.per_thread_cycles) == 400
        assert result.cycles > 400  # barrier cost on top

    def test_uniform_phase_replicates(self, topology, cost_model):
        executor = self._executor(topology, cost_model)
        result = executor.run_uniform_phase("p", self._profile(123))
        assert result.threads == 4
        assert all(c == 123 for c in result.per_thread_cycles)

    def test_single_thread_skips_barrier(self, topology, cost_model):
        executor = self._executor(topology, cost_model, threads=1)
        result = executor.run_phase("p", [self._profile(100)])
        assert result.cycles == 100

    def test_trace_accumulates(self, topology, cost_model):
        executor = self._executor(topology, cost_model, threads=1)
        executor.run_phase("a", [self._profile(100)])
        executor.run_phase("b", [self._profile(200)])
        executor.run_phase("a", [self._profile(50)])
        assert executor.total_cycles() == 350
        assert executor.trace.phase_cycles("a") == 150
        assert executor.trace.breakdown() == {"a": 150, "b": 200}

    def test_imbalance_metric(self, topology, cost_model):
        executor = self._executor(topology, cost_model, threads=2)
        result = executor.run_phase("p", [self._profile(100), self._profile(300)])
        assert result.imbalance == pytest.approx(1.5)

    def test_too_many_profiles_rejected(self, topology, cost_model):
        executor = self._executor(topology, cost_model, threads=2)
        with pytest.raises(ExecutionError):
            executor.run_phase("p", [self._profile(1)] * 3)

    def test_empty_phase_rejected(self, topology, cost_model):
        executor = self._executor(topology, cost_model)
        with pytest.raises(ExecutionError):
            executor.run_phase("p", [])

    def test_environment_reflects_placement(self, topology, cost_model):
        placement = Placement.on_node(topology, 1, 2)
        executor = ParallelExecutor(
            cost_model, ExecutionSetting.sgx_data_in_enclave(), placement
        )
        env = executor.environment(0)
        assert env.enclave_mode
        assert env.thread_node == 1
        assert env.concurrency == 2
