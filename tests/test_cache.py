"""Content-addressed cache: canonical keys and the memo store."""

import dataclasses
import json

import pytest

from repro.cache import (
    MemoStore,
    calibration_digest,
    canonical,
    experiment_key,
    fingerprint,
)
from repro.enclave.runtime import ExecutionSetting
from repro.errors import CacheError
from repro.hardware.calibration import paper_calibration
from repro.hardware.platforms import sgxv1_calibration


class TestCanonical:
    def test_scalars_pass_through(self):
        assert canonical(3) == 3
        assert canonical(2.5) == 2.5
        assert canonical("x") == "x"
        assert canonical(None) is None
        assert canonical(True) is True

    def test_sequences_and_dicts(self):
        assert canonical((1, 2)) == [1, 2]
        assert canonical({"b": 2, "a": (1,)}) == {"a": [1], "b": 2}

    def test_dataclasses_carry_type_name(self):
        setting = ExecutionSetting.sgx_data_in_enclave()
        payload = canonical(setting)
        assert payload["__dataclass__"] == "ExecutionSetting"
        assert payload["data_in_enclave"] is True
        assert payload["mode"] == {"__enum__": "Mode.SGX"}

    def test_canonical_is_json_safe(self):
        json.dumps(canonical(paper_calibration()), sort_keys=True)

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(CacheError):
            canonical({1: "x"})

    def test_unhashable_object_rejected(self):
        with pytest.raises(CacheError):
            canonical(object())


class TestFingerprint:
    def test_deterministic_and_order_insensitive(self):
        assert fingerprint(a=1, b=2) == fingerprint(b=2, a=1)
        assert len(fingerprint(a=1)) == 64

    def test_distinguishes_values_and_names(self):
        assert fingerprint(a=1) != fingerprint(a=2)
        assert fingerprint(a=1) != fingerprint(b=1)

    def test_settings_distinguished(self):
        inside = fingerprint(setting=ExecutionSetting.sgx_data_in_enclave())
        outside = fingerprint(setting=ExecutionSetting.sgx_data_outside_enclave())
        assert inside != outside


class TestExperimentKey:
    def test_every_component_rotates_the_key(self):
        base = dict(quick=True, base_seed=42)
        key = experiment_key("fig08", **base)
        assert key != experiment_key("fig09", **base)
        assert key != experiment_key("fig08", quick=False, base_seed=42)
        assert key != experiment_key("fig08", quick=True, base_seed=43)
        assert key != experiment_key("fig08", traced=True, **base)

    def test_calibration_change_invalidates(self):
        default = experiment_key("fig08", quick=True, base_seed=42)
        nudged = dataclasses.replace(
            paper_calibration(), transition_cycles=9_000.0
        )
        assert default != experiment_key(
            "fig08", quick=True, base_seed=42, params=nudged
        )

    def test_calibration_digest_differs_across_platforms(self):
        assert calibration_digest() != calibration_digest(sgxv1_calibration())

    def test_extra_operator_params_keyed(self):
        plain = experiment_key("fig08", quick=True, base_seed=42)
        with_setting = experiment_key(
            "fig08",
            quick=True,
            base_seed=42,
            extra={"setting": ExecutionSetting.plain_cpu()},
        )
        assert plain != with_setting


class TestMemoStore:
    def test_roundtrip_and_stats(self, tmp_path):
        store = MemoStore(tmp_path)
        assert store.get("a" * 64) is None
        store.put("a" * 64, {"value": 1})
        assert store.get("a" * 64) == {"value": 1}
        assert store.stats == {"hits": 1, "misses": 1, "entries": 1}

    def test_memory_only_store(self):
        store = MemoStore()
        store.put("k", {"v": 2})
        assert store.get("k") == {"v": 2}
        assert store.path_for("k") is None

    def test_disk_persistence_across_instances(self, tmp_path):
        MemoStore(tmp_path).put("key1", {"x": [1, 2]})
        fresh = MemoStore(tmp_path)
        assert fresh.get("key1") == {"x": [1, 2]}
        assert fresh.hits == 1

    def test_lru_evicts_memory_not_disk(self, tmp_path):
        store = MemoStore(tmp_path, memory_entries=2)
        for i in range(4):
            store.put(f"key{i}", {"i": i})
        assert len(store._memory) == 2
        # Evicted entries re-promote from disk.
        assert store.get("key0") == {"i": 0}
        assert len(store) == 4

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = MemoStore(tmp_path)
        store.put("key1", {"ok": True})
        store.path_for("key1").write_text("{not json")
        fresh = MemoStore(tmp_path)
        assert fresh.get("key1") is None
        assert fresh.misses == 1

    def test_malformed_keys_rejected(self, tmp_path):
        store = MemoStore(tmp_path)
        for bad in ("", "../escape", "a/b", "a.b"):
            with pytest.raises(CacheError):
                store.path_for(bad)

    def test_non_json_value_rejected(self, tmp_path):
        store = MemoStore(tmp_path)
        with pytest.raises(CacheError):
            store.put("key1", {"bad": object()})
        with pytest.raises(CacheError):
            store.put("key1", [1, 2])

    def test_zero_capacity_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            MemoStore(tmp_path, memory_entries=0)
        with pytest.raises(CacheError):
            MemoStore(tmp_path, disk_entries=0)

    def test_disk_tier_capped_oldest_out_first(self, tmp_path):
        import os

        store = MemoStore(tmp_path, disk_entries=3)
        for i in range(5):
            store.put(f"key{i}", {"i": i})
            # Distinct mtimes so the eviction order is age, not name.
            os.utime(store.path_for(f"key{i}"), (i, i))
        assert len(list(tmp_path.glob("*.json"))) == 3
        assert store.path_for("key0").exists() is False
        assert store.path_for("key1").exists() is False
        assert store.path_for("key4").exists()

    def test_disk_cap_holds_across_sessions(self, tmp_path):
        import os

        # Session one fills the directory to its cap...
        first = MemoStore(tmp_path, disk_entries=2)
        for i in range(2):
            first.put(f"key{i}", {"i": i})
            os.utime(first.path_for(f"key{i}"), (i, i))
        # ...and a later session's writes evict the oldest survivors
        # instead of growing the directory without bound.
        second = MemoStore(tmp_path, disk_entries=2)
        second.put("key9", {"i": 9})
        assert len(list(tmp_path.glob("*.json"))) == 2
        assert second.get("key0") is None  # oldest, evicted
        assert second.get("key9") == {"i": 9}  # just written, kept

    def test_uncapped_default_is_generous(self, tmp_path):
        from repro.cache.store import DEFAULT_DISK_ENTRIES

        assert DEFAULT_DISK_ENTRIES >= 1024
        store = MemoStore(tmp_path)
        for i in range(8):
            store.put(f"key{i}", {"i": i})
        assert len(list(tmp_path.glob("*.json"))) == 8
