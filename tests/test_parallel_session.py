"""Parallel session driver: fan-out, memoization, deterministic merges.

Process-pool tests use the two cheapest experiments (tab01 is static,
fig15 is the fastest sweep) so the spawn overhead dominates, not the
simulation.
"""

import json

import pytest

from repro.bench.parallel import run_session
from repro.bench.session import build_report
from repro.cache import MemoStore
from repro.cli import main
from repro.errors import BenchmarkError

FAST_IDS = ["tab01", "fig15"]


def _report_dicts(session):
    return [run.report.as_dict() for run in session.runs]


class TestRunSession:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_session(FAST_IDS, traced=True)

    def test_runs_in_request_order(self, serial):
        assert [r.experiment_id for r in serial.runs] == FAST_IDS
        assert all(not r.from_cache for r in serial.runs)

    def test_jobs_output_is_byte_identical(self, serial):
        parallel = run_session(FAST_IDS, jobs=2, traced=True)
        assert _report_dicts(parallel) == _report_dicts(serial)
        for a, b in zip(parallel.runs, serial.runs):
            assert a.trace_jsonl == b.trace_jsonl
            assert a.trace_csv == b.trace_csv

    def test_explicit_seed_reaches_spawned_workers(self):
        # ext04 (skewed probes) is seed-sensitive; two experiments force
        # the spawn pool, where the parent's DEFAULT_BASE_SEED mutation
        # would be invisible — only the explicit threading can work.
        ids = ["tab01", "ext04"]
        seeded = run_session(ids, jobs=2, base_seed=7)
        serial = run_session(ids, base_seed=7)
        default = run_session(ids)
        assert _report_dicts(seeded) == _report_dicts(serial)
        assert _report_dicts(seeded) != _report_dicts(default)

    def test_unknown_experiment_rejected_before_running(self):
        with pytest.raises(BenchmarkError):
            run_session(["fig99"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(BenchmarkError):
            run_session(["tab01"], jobs=0)

    def test_duplicate_ids_run_once_and_merge_per_request(self):
        session = run_session(["tab01", "tab01"])
        assert len(session.runs) == 2
        assert session.runs[0].report.as_dict() == session.runs[1].report.as_dict()


class TestSessionCache:
    def test_warm_rerun_is_pure_replay(self, tmp_path):
        cold = run_session(FAST_IDS, cache=MemoStore(tmp_path), traced=True)
        assert cold.cache_hits == 0 and cold.cache_misses == 2

        warm = run_session(FAST_IDS, cache=MemoStore(tmp_path), traced=True)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert all(run.from_cache for run in warm.runs)
        # Zero re-simulation, identical artifacts.
        assert _report_dicts(warm) == _report_dicts(cold)
        for a, b in zip(warm.runs, cold.runs):
            assert a.trace_jsonl == b.trace_jsonl

    def test_session_tracer_names_each_experiment(self, tmp_path):
        session = run_session(FAST_IDS, cache=MemoStore(tmp_path))
        events = [
            (r.name, r.attrs["experiment"])
            for r in session.tracer.records
            if r.name.startswith("bench.cache.")
        ]
        assert events == [
            ("bench.cache.miss", "tab01"),
            ("bench.cache.miss", "fig15"),
        ]
        assert session.tracer.counters["bench.cache.misses"] == 2

    def test_worker_wall_time_gauged_for_computed_runs_only(self, tmp_path):
        store = MemoStore(tmp_path)
        cold = run_session(["tab01"], cache=store)
        assert "bench.worker.wall_s.tab01" in cold.tracer.gauges
        warm = run_session(["tab01"], cache=store)
        assert "bench.worker.wall_s.tab01" not in warm.tracer.gauges
        assert warm.runs[0].wall_s == 0.0

    def test_seed_rotates_cache_key(self, tmp_path):
        store = MemoStore(tmp_path)
        run_session(["tab01"], cache=store, base_seed=1)
        second = run_session(["tab01"], cache=store, base_seed=2)
        assert second.cache_misses == 1

    def test_untraced_entry_not_served_to_traced_run(self, tmp_path):
        store = MemoStore(tmp_path)
        run_session(["tab01"], cache=store, traced=False)
        traced = run_session(["tab01"], cache=store, traced=True)
        assert traced.cache_misses == 1
        assert traced.runs[0].trace_jsonl is not None

    def test_cache_accepts_plain_directory(self, tmp_path):
        run_session(["tab01"], cache=tmp_path / "c")
        warm = run_session(["tab01"], cache=tmp_path / "c")
        assert warm.cache_hits == 1

    def test_session_trace_export(self, tmp_path):
        session = run_session(["tab01"], cache=MemoStore(tmp_path / "c"))
        path = session.write_session_trace(tmp_path / "t")
        assert path.name == "_session.trace.jsonl"
        names = {json.loads(line)["name"] for line in path.read_text().splitlines()}
        assert "bench.cache.misses" in names


class TestBuildReportParallel:
    def test_report_identical_across_jobs_and_cache(self, tmp_path):
        plain = build_report(FAST_IDS)
        cached = build_report(
            FAST_IDS, jobs=2, cache=MemoStore(tmp_path / "c")
        )
        warm = build_report(
            FAST_IDS, jobs=2, cache=MemoStore(tmp_path / "c")
        )
        assert plain == cached == warm

    def test_report_writes_session_trace_only_for_parallel_or_cached(
        self, tmp_path
    ):
        build_report(["tab01"], trace_dir=tmp_path / "plain")
        assert not (tmp_path / "plain" / "_session.trace.jsonl").exists()
        build_report(
            ["tab01"], trace_dir=tmp_path / "cached", cache=MemoStore(tmp_path / "c")
        )
        assert (tmp_path / "cached" / "_session.trace.jsonl").exists()
        assert (tmp_path / "cached" / "tab01.trace.jsonl").exists()


class TestCliParallelFlags:
    def test_jobs_zero_exits_2(self, capsys):
        assert main(["tab01", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_cache_summary_printed(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["tab01", "--cache", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cache: 0 hits, 1 misses, 1 entries" in out
        assert main(["tab01", "--cache", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cache: 1 hits, 0 misses, 1 entries" in out

    def test_cached_run_prints_identical_tables(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")

        def tables():
            assert main(["tab01", "fig15", "--cache", cache_dir]) == 0
            out = capsys.readouterr().out
            return [l for l in out.splitlines() if not l.startswith("cache:")]

        assert tables() == tables()

    def test_report_honors_jobs_and_cache(self, tmp_path, capsys):
        report = tmp_path / "r.md"
        args = [
            "tab01",
            "--report",
            str(report),
            "--jobs",
            "2",
            "--cache",
            str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        first = report.read_text()
        assert main(args) == 0
        assert "cache: 1 hits" in capsys.readouterr().out
        assert report.read_text() == first

    def test_typo_still_exits_before_creating_cache_dir(self, tmp_path, capsys):
        target = tmp_path / "cache"
        assert main(["fig99", "--cache", str(target)]) == 2
        capsys.readouterr()
        assert not target.exists()
