"""Hash table and B+-tree: correctness against brute force."""

import numpy as np
import pytest

from repro.core.structures.btree import BPlusTree
from repro.core.structures.hashtable import (
    ChainedHashTable,
    next_power_of_two,
    table_bytes_for,
)
from repro.errors import ConfigurationError


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (1023, 1024), (1024, 1024)],
    )
    def test_values(self, value, expected):
        assert next_power_of_two(value) == expected


class TestTableBytes:
    def test_paper_hash_table_size(self):
        # Sec. 4.1: the 100 MB build side (12.5 M tuples) produces a hash
        # table of roughly 256 MB; our layout model lands in that band.
        size = table_bytes_for(12_500_000)
        assert 250e6 < size < 350e6

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            table_bytes_for(-1)


class TestChainedHashTable:
    def test_probe_first_unique_keys(self, rng):
        keys = rng.permutation(5000).astype(np.int64)
        payloads = rng.integers(0, 1 << 30, 5000)
        table = ChainedHashTable(keys, payloads)
        probe = rng.integers(-1000, 6000, 2000)
        index, hits = table.probe_first(probe)
        expected_hits = np.isin(probe, keys)
        assert np.array_equal(hits, expected_hits)
        assert (keys[index[hits]] == probe[hits]).all()
        assert (index[~hits] == -1).all()

    def test_probe_count_with_duplicates(self, rng):
        keys = np.array([1, 1, 1, 2, 2, 3])
        table = ChainedHashTable(keys, np.arange(6))
        counts = table.probe_count(np.array([1, 2, 3, 4]))
        assert list(counts) == [3, 2, 1, 0]

    def test_empty_table(self):
        table = ChainedHashTable(np.array([], dtype=np.int64), np.array([]))
        index, hits = table.probe_first(np.array([1, 2, 3]))
        assert not hits.any()
        assert table.max_chain_length == 0

    def test_chain_order_matches_sequential_insertion(self):
        # Sequential insertion prepends, so the head of a bucket must be
        # the *last* inserted (highest index) element.
        keys = np.zeros(4, dtype=np.int64)  # all collide in one bucket
        table = ChainedHashTable(keys, np.arange(4), load_factor=1.0)
        heads = table.heads[table.heads >= 0]
        assert len(heads) == 1
        assert heads[0] == 3  # last insert is the head
        # And the chain walks 3 -> 2 -> 1 -> 0.
        chain = [int(heads[0])]
        while table.links[chain[-1]] >= 0:
            chain.append(int(table.links[chain[-1]]))
        assert chain == [3, 2, 1, 0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            ChainedHashTable(np.arange(3), np.arange(4))

    def test_load_factor_changes_buckets(self):
        keys = np.arange(1000)
        dense = ChainedHashTable(keys, keys, load_factor=4.0)
        sparse = ChainedHashTable(keys, keys, load_factor=0.5)
        assert dense.num_buckets < sparse.num_buckets

    def test_footprint_grows_with_tuples(self):
        small = ChainedHashTable(np.arange(100), np.arange(100))
        large = ChainedHashTable(np.arange(10_000), np.arange(10_000))
        assert large.footprint_bytes > small.footprint_bytes


class TestBPlusTree:
    def test_lookup_hits_and_misses(self, rng):
        keys = rng.permutation(10_000)[:4000].astype(np.int64)
        payloads = keys * 7
        tree = BPlusTree(keys, payloads)
        probe = rng.integers(0, 10_000, 3000)
        positions, hits = tree.lookup(probe)
        assert np.array_equal(hits, np.isin(probe, keys))
        found = tree.leaf_keys[positions[hits]]
        assert (found == probe[hits]).all()

    def test_payloads_follow_keys(self, rng):
        keys = rng.permutation(1000).astype(np.int64)
        tree = BPlusTree(keys, keys * 3)
        positions, hits = tree.lookup(keys)
        assert hits.all()
        assert (tree.payloads_for(positions) == keys * 3).all()

    def test_payloads_for_missed_rejected(self):
        tree = BPlusTree(np.array([1, 2]), np.array([10, 20]))
        with pytest.raises(ConfigurationError):
            tree.payloads_for(np.array([-1]))

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            BPlusTree(np.array([1, 1, 2]), np.arange(3))

    def test_height_logarithmic(self):
        # 16^3 keys with fanout 16: leaf + two inner levels (the root node
        # holds exactly 16 separators).
        tree = BPlusTree(np.arange(16**3), np.arange(16**3), fanout=16)
        assert tree.height == 3
        bigger = BPlusTree(np.arange(16**3 + 1), np.arange(16**3 + 1), fanout=16)
        assert bigger.height == 4

    def test_empty_tree(self):
        tree = BPlusTree(np.array([], dtype=np.int64), np.array([]))
        positions, hits = tree.lookup(np.array([1, 2]))
        assert not hits.any()

    def test_cache_resident_levels(self):
        tree = BPlusTree(np.arange(100_000), np.arange(100_000), fanout=16)
        assert tree.cache_resident_levels(1 << 30) == tree.height
        assert tree.cache_resident_levels(0) == 0
        partial = tree.cache_resident_levels(64 * 1024)
        assert 0 < partial < tree.height

    def test_small_fanout_rejected(self):
        with pytest.raises(ConfigurationError):
            BPlusTree(np.arange(4), np.arange(4), fanout=1)

    def test_footprint_includes_inner_levels(self):
        flat = BPlusTree(np.arange(10), np.arange(10))
        deep = BPlusTree(np.arange(10_000), np.arange(10_000))
        assert deep.footprint_bytes > 10_000 * 12 > flat.footprint_bytes
