"""Enclave lifecycle, heap accounting, EDMM growth, execution settings."""

import pytest

from repro.enclave.enclave import Enclave, EnclaveConfig, EnclaveState
from repro.enclave.runtime import ExecutionSetting, Mode
from repro.errors import CapacityError, ConfigurationError, EnclaveStateError
from repro.hardware import Topology, paper_testbed
from repro.memory.access import AccessProfile
from repro.memory.allocator import MemoryAllocator
from repro.units import GiB, MiB, PAGE_BYTES


@pytest.fixture
def allocator():
    return MemoryAllocator(Topology(paper_testbed()))


def make_enclave(allocator, heap=1 * GiB, dynamic=False, max_bytes=0):
    config = EnclaveConfig(
        heap_bytes=heap, node=0, dynamic=dynamic,
        max_bytes=max_bytes or (heap if not dynamic else 4 * GiB),
    )
    enclave = Enclave(config, allocator)
    enclave.initialize()
    return enclave


class TestLifecycle:
    def test_create_reserves_epc(self, allocator):
        Enclave(EnclaveConfig(heap_bytes=1 * GiB), allocator)
        assert allocator.epc_used(0) == 1 * GiB

    def test_allocate_before_init_rejected(self, allocator):
        enclave = Enclave(EnclaveConfig(heap_bytes=1 * MiB), allocator)
        with pytest.raises(EnclaveStateError):
            enclave.allocate("x", 100)

    def test_double_initialize_rejected(self, allocator):
        enclave = make_enclave(allocator)
        with pytest.raises(EnclaveStateError):
            enclave.initialize()

    def test_destroy_releases_epc(self, allocator):
        enclave = make_enclave(allocator)
        enclave.destroy()
        assert enclave.state is EnclaveState.DESTROYED
        assert allocator.epc_used(0) == 0

    def test_double_destroy_is_idempotent(self, allocator):
        enclave = make_enclave(allocator)
        enclave.destroy()
        enclave.destroy()  # crash-recovery handlers may race; must not raise
        assert enclave.state is EnclaveState.DESTROYED
        assert allocator.epc_used(0) == 0

    def test_operations_on_destroyed_enclave_rejected(self, allocator):
        enclave = make_enclave(allocator, heap=1 * MiB)
        enclave.allocate("a", 512 * 1024)
        enclave.destroy()
        with pytest.raises(EnclaveStateError):
            enclave.allocate("x", 100)
        with pytest.raises(EnclaveStateError):
            enclave.release_heap(1)
        with pytest.raises(EnclaveStateError):
            enclave.grow("x", 100)
        with pytest.raises(EnclaveStateError):
            enclave.initialize()


class TestStaticHeap:
    def test_heap_allocation_within_budget(self, allocator):
        enclave = make_enclave(allocator, heap=10 * MiB)
        profile = AccessProfile()
        enclave.allocate("table", 4 * MiB, profile)
        assert enclave.heap_free_bytes == 6 * MiB
        assert profile.sync.pages_touched_statically == 4 * MiB // PAGE_BYTES
        assert profile.sync.pages_added_dynamically == 0

    def test_static_overflow_rejected(self, allocator):
        enclave = make_enclave(allocator, heap=1 * MiB)
        with pytest.raises(CapacityError):
            enclave.allocate("big", 2 * MiB)

    def test_release_heap(self, allocator):
        enclave = make_enclave(allocator, heap=1 * MiB)
        enclave.allocate("a", 512 * 1024)
        enclave.release_heap(512 * 1024)
        enclave.allocate("b", 1 * MiB)  # fits again

    def test_release_more_than_used_rejected(self, allocator):
        enclave = make_enclave(allocator)
        with pytest.raises(ConfigurationError):
            enclave.release_heap(1)


class TestEdmm:
    def test_dynamic_growth_charges_pages(self, allocator):
        enclave = make_enclave(allocator, heap=1 * MiB, dynamic=True)
        profile = AccessProfile()
        enclave.allocate("big", 3 * MiB, profile)
        # 1 MiB from the heap, 2 MiB via EDMM.
        assert profile.sync.pages_added_dynamically == 2 * MiB // PAGE_BYTES
        assert enclave.pages_added_total == 2 * MiB // PAGE_BYTES
        assert enclave.total_bytes == 3 * MiB

    def test_dynamic_growth_occupies_epc(self, allocator):
        enclave = make_enclave(allocator, heap=1 * MiB, dynamic=True)
        enclave.allocate("big", 3 * MiB)
        assert allocator.epc_used(0) == 3 * MiB

    def test_growth_beyond_max_rejected(self, allocator):
        enclave = make_enclave(
            allocator, heap=1 * MiB, dynamic=True, max_bytes=2 * MiB
        )
        with pytest.raises(CapacityError):
            enclave.allocate("big", 4 * MiB)

    def test_config_requires_max_for_dynamic(self):
        with pytest.raises(ConfigurationError):
            EnclaveConfig(heap_bytes=2 * MiB, dynamic=True, max_bytes=1 * MiB)

    def test_explicit_grow_commits_pages(self, allocator):
        enclave = make_enclave(allocator, heap=1 * MiB, dynamic=True)
        profile = AccessProfile()
        enclave.grow("buffer", 2 * MiB, profile)
        assert enclave.pages_added_total == 2 * MiB // PAGE_BYTES
        assert enclave.total_bytes == 3 * MiB
        assert profile.sync.pages_added_dynamically == 2 * MiB // PAGE_BYTES
        assert allocator.epc_used(0) == 3 * MiB

    def test_grow_static_enclave_rejected(self, allocator):
        enclave = make_enclave(allocator, heap=1 * MiB)
        with pytest.raises(CapacityError):
            enclave.grow("buffer", PAGE_BYTES)

    def test_grow_beyond_max_rejected(self, allocator):
        enclave = make_enclave(
            allocator, heap=1 * MiB, dynamic=True, max_bytes=2 * MiB
        )
        with pytest.raises(CapacityError):
            enclave.grow("buffer", 2 * MiB)

    def test_grow_needs_positive_size(self, allocator):
        enclave = make_enclave(allocator, heap=1 * MiB, dynamic=True)
        with pytest.raises(ConfigurationError):
            enclave.grow("buffer", 0)


class TestExecutionSettings:
    def test_three_paper_settings(self):
        settings = ExecutionSetting.all_settings()
        labels = [s.label for s in settings]
        assert labels == [
            "Plain CPU",
            "SGX (Data in Enclave)",
            "SGX (Data outside Enclave)",
        ]

    def test_enclave_mode_flags(self):
        plain, sgx_in, sgx_out = ExecutionSetting.all_settings()
        assert not plain.enclave_mode
        assert sgx_in.enclave_mode and sgx_in.data_in_enclave
        assert sgx_out.enclave_mode and not sgx_out.data_in_enclave

    def test_plain_with_enclave_data_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionSetting(Mode.PLAIN, data_in_enclave=True, label="bad")
