"""End-to-end experiment shape checks: the paper's claims must reproduce.

Each experiment module runs once (quick fidelity) and the resulting report
is asserted against the qualitative shape of the corresponding paper figure
— who wins, by roughly what factor, where crossovers fall.
"""

import pytest

from repro.bench.registry import run_experiment

# Quick-mode experiment results are deterministic per seed; cache one run
# of each so the module's tests share it.
_cache = {}


def report_for(experiment_id):
    if experiment_id not in _cache:
        _cache[experiment_id] = run_experiment(experiment_id, quick=True)
    return _cache[experiment_id]


class TestFig01:
    def test_bar_ordering(self):
        report = report_for("fig01")
        crk = report.value("CrkJoin (SGXv1-opt.) in SGX", "throughput")
        rho = report.value("RHO in SGX", "throughput")
        opt = report.value("RHO SGXv2-optimized in SGX", "throughput")
        native = report.value("RHO outside enclave", "throughput")
        assert crk < rho < opt < native

    def test_optimized_vs_crk_factor(self):
        report = report_for("fig01")
        factor = report.value(
            "RHO SGXv2-optimized in SGX", "throughput"
        ) / report.value("CrkJoin (SGXv1-opt.) in SGX", "throughput")
        assert 15 < factor < 30  # paper: ~20x


class TestFig03:
    def test_crk_slowest_and_near_60m(self):
        report = report_for("fig03")
        crk = report.value("SGX (Data in Enclave)", "CrkJoin")
        assert 40 < crk < 90  # paper: ~60 M rows/s
        for name in ("PHT", "RHO", "MWAY", "INL"):
            assert report.value("SGX (Data in Enclave)", name) > crk

    def test_hash_joins_have_largest_overhead(self):
        report = report_for("fig03")

        def rel(name):
            return report.value("SGX (Data in Enclave)", name) / report.value(
                "Plain CPU", name
            )

        assert rel("PHT") < 0.5
        assert rel("RHO") < 0.6
        assert rel("MWAY") > 0.9
        assert rel("INL") > 0.7


class TestFig04:
    def test_relative_throughput_declines(self):
        report = report_for("fig04")
        series = report.series("SGX relative throughput")
        values = [row.value for row in series]
        assert values[0] > 0.9  # ~95 % at 1 MB
        assert values[-1] < 0.5
        assert values[0] > values[-1]

    def test_build_worse_than_probe(self):
        report = report_for("fig04")
        assert report.value("SGX phase slowdown", "build") > report.value(
            "SGX phase slowdown", "probe"
        )


class TestFig05:
    def test_in_cache_unpenalized(self):
        report = report_for("fig05")
        assert report.value("random reads (pointer chase)", 1e6) == pytest.approx(
            1.0, abs=0.01
        )
        assert report.value("random writes (LCG)", 1e6) == pytest.approx(
            1.0, abs=0.01
        )

    def test_read_floor_53_percent(self):
        report = report_for("fig05")
        assert report.value(
            "random reads (pointer chase)", 16e9
        ) == pytest.approx(0.53, abs=0.03)

    def test_writes_below_reads(self):
        report = report_for("fig05")
        for size in (256e6, 8e9):
            assert report.value("random writes (LCG)", size) < report.value(
                "random reads (pointer chase)", size
            )


class TestFig06:
    def test_histograms_slowest_naive_phase(self):
        report = report_for("fig06")
        hist = report.value("naive: sgx slowdown", "hist1")
        join = report.value("naive: sgx slowdown", "join")
        assert hist > 3  # paper: up to ~4x
        assert join < 1.6  # probe barely affected
        for phase in ("copy1", "copy2", "build"):
            assert 1.3 < report.value("naive: sgx slowdown", phase) < hist

    def test_unrolling_improves_slow_phases(self):
        report = report_for("fig06")
        for phase in ("hist1", "hist2", "copy1", "copy2", "build"):
            assert report.value("unrolled: sgx slowdown", phase) < report.value(
                "naive: sgx slowdown", phase
            )


class TestFig07:
    def test_slowdowns_match_paper(self):
        report = report_for("fig07")
        bins = 256
        naive = report.value("naive: SGX (Data in Enclave)", bins) / report.value(
            "naive: Plain CPU", bins
        )
        unrolled = report.value(
            "unrolled: SGX (Data in Enclave)", bins
        ) / report.value("unrolled: Plain CPU", bins)
        assert naive == pytest.approx(3.3, rel=0.1)
        assert unrolled == pytest.approx(1.22, rel=0.1)

    def test_location_independence(self):
        report = report_for("fig07")
        bins = 1024
        inside = report.value("naive: SGX (Data in Enclave)", bins)
        outside = report.value("naive: SGX (Data outside Enclave)", bins)
        assert inside == pytest.approx(outside, rel=0.06)


class TestFig08:
    def test_optimization_gains(self):
        report = report_for("fig08")
        for name in ("RHO", "PHT"):
            naive = report.value("SGX naive", name)
            opt = report.value("SGX optimized", name)
            plain = report.value("plain CPU", name)
            assert opt > 1.4 * naive  # paper: +53 % / +94 %
            assert opt < plain

    def test_relative_levels(self):
        report = report_for("fig08")
        rho_rel = report.value("SGX optimized", "RHO") / report.value(
            "plain CPU", "RHO"
        )
        pht_rel = report.value("SGX optimized", "PHT") / report.value(
            "plain CPU", "PHT"
        )
        assert rho_rel == pytest.approx(0.85, abs=0.07)  # paper 0.83
        assert pht_rel == pytest.approx(0.68, abs=0.07)  # paper 0.68
        assert pht_rel < rho_rel


class TestFig09:
    def test_remote_penalty(self):
        report = report_for("fig09")
        base = report.value("SGX Join Single Node", "throughput")
        remote = report.value("SGX Join Fully Remote", "throughput")
        assert 0.55 < remote / base < 0.85  # paper: -25 %

    def test_doubling_cores_does_not_help(self):
        report = report_for("fig09")
        base = report.value("SGX Join Single Node", "throughput")
        half_local = report.value("SGX Join Half Local", "throughput")
        assert half_local < base * 1.05

    def test_all_sgx_below_half_optimal(self):
        report = report_for("fig09")
        best = report.value("Native Join NUMA local", "throughput")
        for case in ("SGX Join Single Node", "SGX Join Fully Remote",
                     "SGX Join Half Local"):
            assert report.value(case, "throughput") < 0.5 * best


class TestFig10:
    def test_queue_choice_irrelevant_outside(self):
        report = report_for("fig10")
        ratio = report.value("plain + mutex queue", "throughput") / report.value(
            "plain + lock-free queue", "throughput"
        )
        assert ratio == pytest.approx(1.0, abs=0.07)

    def test_mutex_collapses_inside(self):
        report = report_for("fig10")
        ratio = report.value("SGX + mutex queue", "throughput") / report.value(
            "SGX + lock-free queue", "throughput"
        )
        assert ratio == pytest.approx(0.25, abs=0.08)  # paper: -75 %

    def test_lock_free_near_native_inside(self):
        report = report_for("fig10")
        ratio = report.value("SGX + lock-free queue", "throughput") / report.value(
            "plain + lock-free queue", "throughput"
        )
        assert ratio > 0.8  # paper: ~90 %


class TestFig11:
    def test_dynamic_collapse(self):
        report = report_for("fig11")
        ratio = report.value("dynamic enclave", "throughput") / report.value(
            "static enclave", "throughput"
        )
        assert ratio == pytest.approx(0.045, abs=0.02)  # paper: 4.5 %


class TestFig12:
    def test_in_cache_equal(self):
        report = report_for("fig12")
        for size in (1e6, 8e6):
            plain = report.value("Plain CPU", size)
            sgx = report.value("SGX (Data in Enclave)", size)
            assert sgx == pytest.approx(plain, rel=0.01)

    def test_out_of_cache_three_percent(self):
        report = report_for("fig12")
        rel = report.value("SGX (Data in Enclave)", 4e9) / report.value(
            "Plain CPU", 4e9
        )
        assert rel == pytest.approx(0.97, abs=0.01)

    def test_data_outside_matches_plain(self):
        report = report_for("fig12")
        assert report.value(
            "SGX (Data outside Enclave)", 4e9
        ) == pytest.approx(report.value("Plain CPU", 4e9), rel=0.005)


class TestFig13:
    def test_scaling_equal_inside_and_outside(self):
        report = report_for("fig13")
        for threads in (1, 4, 16):
            plain = report.value("Plain CPU", threads)
            sgx = report.value("SGX (Data in Enclave)", threads)
            assert sgx == pytest.approx(plain, rel=0.05)

    def test_bandwidth_saturation(self):
        report = report_for("fig13")
        assert report.value("Plain CPU", 16) > 3 * report.value("Plain CPU", 1)
        assert report.value("Plain CPU", 16) < 180  # below theoretical peak


class TestFig14:
    def test_equal_degradation(self):
        report = report_for("fig14")
        for selectivity in (0.5, 1.0):
            plain_rel = report.value("Plain CPU", selectivity) / report.value(
                "Plain CPU", 0.0
            )
            sgx_rel = report.value(
                "SGX (Data in Enclave)", selectivity
            ) / report.value("SGX (Data in Enclave)", 0.0)
            assert sgx_rel == pytest.approx(plain_rel, abs=0.03)


class TestFig15:
    def test_out_of_cache_penalties(self):
        report = report_for("fig15")
        assert report.value("read_64", 8e9) == pytest.approx(0.948, abs=0.01)
        assert report.value("read_512", 8e9) == pytest.approx(0.971, abs=0.01)
        assert report.value("write_64", 8e9) == pytest.approx(0.98, abs=0.01)

    def test_in_cache_unpenalized(self):
        report = report_for("fig15")
        for op in ("read_64", "read_512", "write_64", "write_512"):
            assert report.value(op, 1e6) == pytest.approx(1.0)


class TestFig16:
    def test_upi_curve(self):
        report = report_for("fig16")
        rel1 = report.value("SGX, cross-NUMA", 1) / report.value(
            "plain, cross-NUMA", 1
        )
        rel16 = report.value("SGX, cross-NUMA", 16) / report.value(
            "plain, cross-NUMA", 16
        )
        assert rel1 == pytest.approx(0.77, abs=0.03)
        assert rel16 == pytest.approx(0.96, abs=0.03)
        assert rel16 > rel1

    def test_cross_numa_capped_by_upi(self):
        report = report_for("fig16")
        assert report.value("plain, cross-NUMA", 16) <= 67.2
        assert report.value("plain, NUMA-local", 16) > report.value(
            "plain, cross-NUMA", 16
        )


class TestFig17:
    def test_overheads(self):
        report = report_for("fig17")
        for query in ("Q3", "Q10", "Q12", "Q19"):
            plain = report.value("plain CPU", query)
            naive = report.value("SGX", query)
            opt = report.value("SGX optimized", query)
            assert plain < opt < naive

    def test_q12_gains_most_q19_least(self):
        report = report_for("fig17")

        def gain(query):
            return 1 - report.value("SGX optimized", query) / report.value(
                "SGX", query
            )

        assert gain("Q12") > gain("Q19")  # paper: 30 % vs 7 %


class TestTab01:
    def test_key_rows(self):
        report = report_for("tab01")
        assert report.value("Sockets", "count") == 2
        assert report.value("EPC per socket", "GB") == 64
        assert report.value("UPI aggregate bandwidth", "GB/s") == pytest.approx(
            67.2
        )


class TestGoldenValues:
    """Regression snapshots: every reported row within 15 % of its golden.

    The goldens (tests/goldens.json) were produced by the same quick-mode
    configuration these tests run; drifting outside the band means a model
    or operator change altered results and either the change or the
    goldens need a conscious update (regenerate with
    ``python - <<'PY' ... PY`` per the comment in the JSON's git history).
    """

    TOLERANCE = 0.15

    @pytest.fixture(scope="class")
    def goldens(self):
        import json
        import pathlib

        path = pathlib.Path(__file__).parent / "goldens.json"
        return json.loads(path.read_text())

    @pytest.mark.parametrize(
        "experiment_id",
        ["fig01", "fig03", "fig05", "fig07", "fig08", "fig10", "fig11",
         "fig12", "fig13", "fig15", "fig16", "tab01", "ext01"],
    )
    def test_rows_match_goldens(self, goldens, experiment_id):
        report = report_for(experiment_id)
        drifted = []
        for entry in goldens[experiment_id]:
            measured = report.value(entry["series"], entry["x"])
            expected = entry["value"]
            if expected == 0:
                ok = abs(measured) < 1e-9
            else:
                ok = abs(measured - expected) <= self.TOLERANCE * abs(expected)
            if not ok:
                drifted.append(
                    f"{entry['series']} @ {entry['x']}: "
                    f"golden {expected:.4g}, measured {measured:.4g}"
                )
        assert not drifted, "\n".join(drifted)
