"""wl07 golden-shape checks and the storage determinism gate."""

from repro.bench.experiments.wl07_spill_scaleout import (
    BUDGET_FRACTIONS,
    SHARD_SPEC,
)
from repro.bench.parallel import run_session
from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.cache import MemoStore
from repro.storage import StorageConfig

# One quick wl07 run shared across the module (deterministic per seed).
_cache = {}


def report_for(experiment_id):
    if experiment_id not in _cache:
        _cache[experiment_id] = run_experiment(experiment_id, quick=True)
    return _cache[experiment_id]


class TestWl07Registered:
    def test_wl07_in_registry(self):
        assert "wl07" in EXPERIMENTS


class TestWl07Sweep:
    def test_squeeze_forces_the_spill_regime(self):
        report = report_for("wl07")
        for fraction in BUDGET_FRACTIONS:
            assert report.value("spills", fraction) > 0
            assert report.value("seal time", fraction) > 0
            assert report.value("unseal time", fraction) > 0

    def test_spill_volume_grows_as_the_budget_shrinks(self):
        report = report_for("wl07")
        ordered = sorted(BUDGET_FRACTIONS, reverse=True)  # roomy -> tight
        volumes = [report.value("spilled volume", f) for f in ordered]
        assert volumes == sorted(volumes)

    def test_sealed_spill_beats_edmm_thrash_when_deep(self):
        report = report_for("wl07")
        tight = BUDGET_FRACTIONS[-1]
        assert report.value("spill p99", tight) < \
            report.value("edmm p99", tight)
        assert report.value("spill goodput", tight) > \
            report.value("edmm goodput", tight)

    def test_reference_arm_is_the_floor(self):
        report = report_for("wl07")
        ref_p99 = report.value("reference latency", 99)
        for fraction in BUDGET_FRACTIONS:
            assert report.value("spill p99", fraction) > ref_p99


class TestWl07FaultAndShardArms:
    def test_faulted_arm_hits_both_hazards(self):
        report = report_for("wl07")
        assert report.value("stalled spills", "spill-faulted") > 0

    def test_sharded_arm_spills(self):
        report = report_for("wl07")
        assert report.value("sharded spills", SHARD_SPEC) > 0


class TestWl07Determinism:
    def test_repeat_runs_are_identical(self):
        first = report_for("wl07")
        second = run_experiment("wl07", quick=True)
        assert [(r.series, r.x, r.value) for r in first.rows] == \
            [(r.series, r.x, r.value) for r in second.rows]
        assert first.notes == second.notes


class TestStorageDeterminismGate:
    """Serial == --jobs N == cached replay under --storage 200m --seed 7."""

    def test_serial_parallel_and_replay_agree(self, tmp_path):
        storage = StorageConfig.parse("200m")
        ids = ["wl01", "tab01"]  # two pending: exercises the spawn pool
        serial = run_session(ids, base_seed=7, storage=storage)
        store = MemoStore(tmp_path / "cache")
        cold = run_session(
            ids, jobs=2, base_seed=7, storage=storage, cache=store
        )
        warm = run_session(
            ids, jobs=2, base_seed=7, storage=storage, cache=store
        )
        for runs in zip(serial.runs, cold.runs, warm.runs):
            texts = {run.report.to_csv() for run in runs}
            assert len(texts) == 1
        assert all(run.from_cache for run in warm.runs)
        assert not any(run.from_cache for run in cold.runs)

    def test_ambient_storage_reshapes_wl01(self):
        spilling = run_experiment(
            "wl01", quick=True, base_seed=7,
            storage=StorageConfig.parse("200m"),
        )
        plain = run_experiment("wl01", quick=True, base_seed=7)
        assert [(r.series, r.x, r.value) for r in spilling.rows] != \
            [(r.series, r.x, r.value) for r in plain.rows]

    def test_spec_string_accepted_too(self):
        by_string = run_experiment(
            "wl01", quick=True, base_seed=7, storage="200m"
        )
        by_config = run_experiment(
            "wl01", quick=True, base_seed=7,
            storage=StorageConfig.parse("200m"),
        )
        assert [(r.series, r.x, r.value) for r in by_string.rows] == \
            [(r.series, r.x, r.value) for r in by_config.rows]
