"""Sort and top-k operators: correctness and enclave cost shape."""

import numpy as np
import pytest

from repro.core.ops import ParallelSort, TopK
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.machine import SimMachine

PLAIN = ExecutionSetting.plain_cpu()
SGX = ExecutionSetting.sgx_data_in_enclave()


class TestParallelSort:
    def test_sorts_correctly(self, machine, rng):
        keys = rng.integers(0, 1 << 20, 10_000)
        with machine.context(PLAIN, threads=4) as ctx:
            result = ParallelSort().run(ctx, keys)
        assert np.array_equal(result.sorted_keys, np.sort(keys))
        assert np.array_equal(keys[result.order], result.sorted_keys)

    def test_descending(self, machine, rng):
        keys = rng.integers(0, 100, 1000)
        with machine.context(PLAIN) as ctx:
            result = ParallelSort().run(ctx, keys, descending=True)
        assert np.array_equal(result.sorted_keys, np.sort(keys)[::-1])

    def test_stable(self, machine):
        keys = np.array([3, 1, 3, 1])
        with machine.context(PLAIN) as ctx:
            result = ParallelSort().run(ctx, keys)
        # Equal keys keep input order.
        assert list(result.order) == [1, 3, 0, 2]

    def test_enclave_overhead_small(self, rng):
        keys = rng.integers(0, 1 << 20, 50_000)

        def cycles(setting):
            machine = SimMachine()
            with machine.context(setting, threads=16) as ctx:
                return ParallelSort().run(ctx, keys, sim_scale=1000.0).cycles

        ratio = cycles(SGX) / cycles(PLAIN)
        assert ratio < 1.1  # sorting is MWAY-like: nearly unaffected

    def test_validation(self, machine):
        with pytest.raises(ConfigurationError):
            ParallelSort(row_bytes=0)
        with machine.context(PLAIN) as ctx:
            with pytest.raises(ConfigurationError):
                ParallelSort().run(ctx, np.zeros((2, 2)))

    def test_throughput_metric(self, machine, rng):
        keys = rng.integers(0, 100, 1000)
        with machine.context(PLAIN) as ctx:
            result = ParallelSort().run(ctx, keys)
        assert result.throughput_rows_per_s(2.9e9) > 0


class TestTopK:
    def test_matches_numpy(self, machine, rng):
        keys = rng.integers(0, 1 << 30, 20_000)
        with machine.context(PLAIN, threads=4) as ctx:
            top, _cycles = TopK(10).run(ctx, keys)
        expected = np.sort(keys)[-10:][::-1]
        assert np.array_equal(keys[top], expected)

    def test_smallest(self, machine, rng):
        keys = rng.integers(0, 1 << 30, 5_000)
        with machine.context(PLAIN) as ctx:
            top, _ = TopK(5).run(ctx, keys, largest=False)
        assert np.array_equal(keys[top], np.sort(keys)[:5])

    def test_k_larger_than_input(self, machine):
        keys = np.array([3, 1, 2])
        with machine.context(PLAIN) as ctx:
            top, _ = TopK(10).run(ctx, keys)
        assert np.array_equal(keys[top], np.array([3, 2, 1]))

    def test_cheaper_than_full_sort(self, rng):
        keys = rng.integers(0, 1 << 30, 50_000)
        machine = SimMachine()
        with machine.context(PLAIN, threads=16) as ctx:
            _, topk_cycles = TopK(100).run(ctx, keys, sim_scale=1000.0)
        machine = SimMachine()
        with machine.context(PLAIN, threads=16) as ctx:
            sort_cycles = ParallelSort().run(
                ctx, keys, sim_scale=1000.0
            ).cycles
        assert topk_cycles < sort_cycles / 5

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            TopK(0)
