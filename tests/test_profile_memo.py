"""The per-query profile memo: keys, scoping, invalidation, byte-identity.

The memo sits *below* the experiment cache: it memoizes composed access
profiles and priced service times per (template, plan, setting, sizes,
calibration), so repeated pricing skips operator re-execution.  These
tests pin the load-bearing contracts: keys rotate with every component,
calibration changes invalidate at the query level, hit/miss traffic is
counted, and — above all — memoized runs are byte-identical to
unmemoized ones.
"""

import dataclasses

import pytest

from repro.bench.experiments.common import SETTING_PLAIN, SETTING_SGX_IN
from repro.cache import (
    DISABLED_MEMO,
    ProfileMemo,
    profile_memo,
    query_profile_key,
    use_profile_memo,
)
from repro.hardware.calibration import paper_calibration
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.planner.candidates import static_candidate
from repro.trace import Tracer, to_jsonl, use_tracer
from repro.workload import (
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)
from repro.workload.jobs import serving_templates

TEMPLATES = serving_templates()


def _key(**overrides):
    template = TEMPLATES["scan-small"]
    defaults = dict(
        kind="catalog-price",
        template=template.name,
        setting=SETTING_SGX_IN,
        candidate=static_candidate(template, CodeVariant.NAIVE),
        pricing_seed=13,
        row_cap=100_000,
        sf_cap=0.01,
    )
    defaults.update(overrides)
    return query_profile_key(**defaults)


class TestQueryProfileKey:
    def test_stable_for_identical_inputs(self):
        assert _key() == _key()

    def test_every_component_rotates_the_key(self):
        base = _key()
        template = TEMPLATES["join-medium"]
        assert _key(kind="plan-estimate") != base
        assert _key(template=template.name) != base
        assert _key(setting=SETTING_PLAIN) != base
        assert (
            _key(candidate=static_candidate(template, CodeVariant.NAIVE))
            != base
        )
        assert _key(pricing_seed=14) != base
        assert _key(row_cap=200_000) != base
        assert _key(sf_cap=0.02) != base

    def test_calibration_rotates_the_key(self):
        params = paper_calibration()
        nudged = dataclasses.replace(
            params,
            linear_write_penalty=params.linear_write_penalty * 1.5,
        )
        assert _key(params=params) != _key(params=nudged)


class TestMemoScoping:
    def test_ambient_memo_is_enabled_by_default(self):
        assert profile_memo().enabled

    def test_none_installs_the_disabled_sentinel(self):
        with use_profile_memo(None) as memo:
            assert memo is DISABLED_MEMO
            assert profile_memo() is DISABLED_MEMO
            assert not memo.enabled
            memo.put("k" * 8, {"x": 1})
            assert memo.get("k" * 8) is None
            assert memo.hits == memo.misses == 0

    def test_scopes_nest_and_restore(self):
        outer = ProfileMemo()
        with use_profile_memo(outer):
            assert profile_memo() is outer
            with use_profile_memo(None):
                assert profile_memo() is DISABLED_MEMO
            assert profile_memo() is outer
        assert profile_memo() is not outer

    def test_scope_restores_after_an_exception(self):
        before = profile_memo()
        with pytest.raises(RuntimeError):
            with use_profile_memo(None):
                raise RuntimeError("boom")
        assert profile_memo() is before


class TestCatalogMemoization:
    def catalog(self, machine=None):
        return JobCatalog(machine, quick=True, variant=CodeVariant.NAIVE)

    def test_fresh_catalog_hits_a_warm_memo(self):
        memo = ProfileMemo()
        template = TEMPLATES["scan-small"]
        with use_profile_memo(memo):
            cold = self.catalog().cost(template, SETTING_SGX_IN)
            assert memo.misses > 0 and memo.hits == 0
            misses_after_cold = memo.misses
            # A *fresh* catalog has no instance-level cache: only the
            # ambient memo can explain skipping the operator run.
            warm = self.catalog().cost(template, SETTING_SGX_IN)
            assert memo.hits > 0
            assert memo.misses == misses_after_cold
        assert warm == cold

    def test_calibration_change_invalidates_at_query_level(self):
        memo = ProfileMemo()
        template = TEMPLATES["scan-small"]
        params = paper_calibration()
        nudged = dataclasses.replace(
            params,
            linear_write_penalty=params.linear_write_penalty * 1.5,
        )
        with use_profile_memo(memo):
            self.catalog(SimMachine(params=params)).cost(
                template, SETTING_SGX_IN
            )
            assert memo.hits == 0
            # Same template, same setting, different calibration: the
            # memo must miss, never serve the stale profile.
            self.catalog(SimMachine(params=nudged)).cost(
                template, SETTING_SGX_IN
            )
            assert memo.hits == 0
            # And the original calibration still hits its own entries.
            self.catalog(SimMachine(params=params)).cost(
                template, SETTING_SGX_IN
            )
            assert memo.hits > 0

    def test_disk_tier_shares_profiles_across_memos(self, tmp_path):
        template = TEMPLATES["scan-small"]
        with use_profile_memo(ProfileMemo(tmp_path / "profiles")) as first:
            cold = self.catalog().cost(template, SETTING_SGX_IN)
            assert first.misses > 0
        # A brand-new memo over the same directory: pure disk hits.
        with use_profile_memo(ProfileMemo(tmp_path / "profiles")) as second:
            warm = self.catalog().cost(template, SETTING_SGX_IN)
            assert second.hits > 0
            assert second.misses == 0
        assert warm == cold
        assert list((tmp_path / "profiles").glob("*.json"))


def _serve(*, queries=40):
    """One small traced serving run; returns (metrics, trace jsonl text)."""
    catalog = JobCatalog(quick=True, variant=CodeVariant.NAIVE)
    engine = ServingEngine(catalog)
    mix = QueryMix.of({"scan-small": 0.7, "join-medium": 0.3})
    qps = 50.0
    config = WorkloadConfig(
        setting=SETTING_SGX_IN,
        open_streams=(OpenLoopStream("tenant", qps=qps, mix=mix, seed=42),),
        duration_s=queries / qps,
        cores=8,
        policy="fifo",
    )
    tracer = Tracer(label="memo-identity")
    with use_tracer(tracer):
        metrics = engine.run(config)
    return metrics, to_jsonl(tracer)


class TestByteIdentity:
    """The memo is a wall-clock optimization ONLY: results and traces of
    memoized runs must equal the unmemoized runs byte for byte."""

    def test_serving_run_identical_with_and_without_memo(self):
        with use_profile_memo(None):
            bare_metrics, bare_trace = _serve()
        memo = ProfileMemo()
        with use_profile_memo(memo):
            _serve()  # priming run
            warm_metrics, warm_trace = _serve()
        assert memo.hits > 0
        assert warm_trace == bare_trace
        assert warm_metrics.records == bare_metrics.records
        assert vars(warm_metrics.counters) == vars(bare_metrics.counters)

    def test_clustered_run_identical_with_and_without_memo(self):
        from repro.cluster import ClusterConfig, use_cluster

        cluster = ClusterConfig.parse("1x2")
        with use_cluster(cluster), use_profile_memo(None):
            bare_metrics, bare_trace = _serve()
        memo = ProfileMemo()
        with use_cluster(cluster), use_profile_memo(memo):
            warm_metrics, warm_trace = _serve()
        assert warm_trace == bare_trace
        assert warm_metrics.records == bare_metrics.records


class TestSessionCounters:
    """The session driver reports memo traffic in the session trace."""

    def run(self, *, memo):
        from repro.bench.parallel import run_session

        scope = ProfileMemo() if memo else None
        with use_profile_memo(scope):
            return run_session(["wl01"], quick=True, memo=memo)

    def test_memoized_session_counts_traffic(self):
        session = self.run(memo=True)
        assert session.memo_misses > 0
        counters = session.tracer.counters
        assert counters.get("bench.memo.misses") == session.memo_misses

    def test_no_memo_session_reports_zero_traffic(self):
        session = self.run(memo=False)
        assert session.memo_hits == 0
        assert session.memo_misses == 0
        assert "bench.memo.hits" not in session.tracer.counters
        assert "bench.memo.misses" not in session.tracer.counters

    def test_memo_counters_never_enter_the_result_cache(self, tmp_path):
        from repro.bench.parallel import run_session
        from repro.cache import MemoStore

        store = MemoStore(tmp_path / "cache")
        with use_profile_memo(ProfileMemo()):
            run_session(["wl01"], quick=True, cache=store, memo=True)
        for path in (tmp_path / "cache").glob("*.json"):
            text = path.read_text()
            assert "memo_hits" not in text
            assert "memo_misses" not in text
