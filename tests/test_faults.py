"""The fault-injection + resilience subsystem: plans, injector, scheduler."""

import pytest

from repro.cache import experiment_key
from repro.errors import ConfigurationError
from repro.faults import (
    NO_FAULTS,
    NULL_INJECTOR,
    CircuitBreaker,
    FaultKind,
    FaultPlan,
    FaultSpec,
    PlanInjector,
    ResiliencePolicy,
    current_fault_plan,
    fault_plans,
    get_fault_plan,
    make_injector,
    use_fault_plan,
)
from repro.trace import Tracer, fault_breakdown, use_tracer
from repro.trace.breakdown import FAILED, RETRY, SHED
from repro.workload import (
    ClosedLoopStream,
    JobCost,
    OpenLoopStream,
    QueryMix,
    WorkloadScheduler,
    make_policy,
)

MB = 1_000_000

COSTS = {
    "small": JobCost("small", threads=1, service_s=0.01,
                     working_set_bytes=10 * MB),
    "big": JobCost("big", threads=4, service_s=0.10,
                   working_set_bytes=400 * MB),
}


def scheduler(policy="fifo", *, cores=8, epc=1_000 * MB, injector=None,
              resilience=None):
    return WorkloadScheduler(
        COSTS,
        make_policy(policy),
        cores=cores,
        epc_budget_bytes=epc,
        setting_label="test",
        injector=injector,
        resilience=resilience,
    )


def stream(qps=50.0, mix=None, seed=7, name="s"):
    return OpenLoopStream(
        name, qps=qps, mix=QueryMix.of(mix or {"small": 1.0}), seed=seed
    )


def run(sched, *, duration=2.0, streams=None, closed=()):
    return sched.run(
        open_streams=streams if streams is not None else (stream(),),
        closed_streams=closed,
        duration_s=duration,
    )


def plan_of(*specs, seed=23):
    return FaultPlan(name="t", seed=seed, specs=tuple(specs))


class TestFaultSpec:
    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.AEX_STORM, start_s=2.0, end_s=2.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.AEX_STORM, start_s=-1.0)

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.ENCLAVE_CRASH, probability=1.5)

    def test_storm_cannot_speed_up(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.AEX_STORM, magnitude=0.5)

    def test_squeeze_magnitude_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.EPC_SQUEEZE, magnitude=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.EPC_SQUEEZE, magnitude=0.0)

    def test_poison_needs_template(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.POISON_JOB)

    def test_active_window(self):
        spec = FaultSpec(FaultKind.AEX_STORM, start_s=1.0, end_s=2.0)
        assert not spec.active(0.5)
        assert spec.active(1.0)
        assert not spec.active(2.0)


class TestFaultPlan:
    def test_catalog_contains_chaos(self):
        plans = fault_plans()
        assert "none" in plans and "chaos" in plans
        assert plans["none"].empty
        assert len(plans["chaos"].specs) == 5

    def test_unknown_plan_lists_known(self):
        with pytest.raises(ConfigurationError, match="chaos"):
            get_fault_plan("nope")

    def test_window_edges_only_squeezes(self):
        plan = plan_of(
            FaultSpec(FaultKind.EPC_SQUEEZE, start_s=1.0, end_s=3.0,
                      magnitude=0.5),
            FaultSpec(FaultKind.AEX_STORM, start_s=0.5, end_s=2.5),
        )
        assert plan.window_edges(10.0) == (1.0, 3.0)
        assert plan.window_edges(2.0) == (1.0,)  # end past the horizon

    def test_use_fault_plan_scopes(self):
        assert current_fault_plan() is None
        with use_fault_plan(get_fault_plan("chaos")) as plan:
            assert current_fault_plan() is plan
        assert current_fault_plan() is None


class TestInjector:
    def test_null_injector_is_identity(self):
        inj = NULL_INJECTOR
        assert not inj.active
        assert inj.service_multiplier(1.0, 0, 0) == 1.0
        assert inj.epc_multiplier(1.0) == 1.0
        assert not inj.edmm_denied(1.0, 0, 0)
        assert not inj.squeezed(1.0)
        assert inj.crash(1.0, 0, 0) is None
        assert not inj.poisoned(1.0, "small")
        assert inj.wake_times(10.0) == ()

    def test_make_injector_empty_plan_is_null(self):
        assert make_injector(None) is NULL_INJECTOR
        assert make_injector(NO_FAULTS) is NULL_INJECTOR
        assert make_injector(get_fault_plan("chaos")).active

    def test_storms_compose(self):
        inj = PlanInjector(plan_of(
            FaultSpec(FaultKind.AEX_STORM, end_s=5.0, magnitude=2.0),
            FaultSpec(FaultKind.AEX_STORM, end_s=5.0, magnitude=3.0),
        ))
        assert inj.service_multiplier(1.0, 0, 0) == 6.0
        assert inj.service_multiplier(7.0, 0, 0) == 1.0

    def test_draws_are_order_independent(self):
        plan = plan_of(FaultSpec(FaultKind.ENCLAVE_CRASH, probability=0.5))
        a, b = PlanInjector(plan), PlanInjector(plan)
        # Query the two instances in different orders: per-query outcomes
        # must match exactly (pure function of identity, not call order).
        ids = list(range(50))
        first = {i: a.crash(0.0, i, 0) is not None for i in ids}
        second = {i: b.crash(0.0, i, 0) is not None for i in reversed(ids)}
        assert first == second
        assert any(first.values()) and not all(first.values())

    def test_seed_changes_draws(self):
        spec = FaultSpec(FaultKind.ENCLAVE_CRASH, probability=0.5)
        a = PlanInjector(plan_of(spec, seed=1))
        b = PlanInjector(plan_of(spec, seed=2))
        outcomes_a = [a.crash(0.0, i, 0) is not None for i in range(64)]
        outcomes_b = [b.crash(0.0, i, 0) is not None for i in range(64)]
        assert outcomes_a != outcomes_b

    def test_crash_fraction_strictly_inside_service(self):
        inj = PlanInjector(plan_of(
            FaultSpec(FaultKind.ENCLAVE_CRASH, probability=1.0, reinit_s=0.4)
        ))
        for i in range(32):
            draw = inj.crash(0.0, i, 0)
            assert 0.0 < draw.fraction < 1.0
            assert draw.reinit_s == 0.4


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(breaker_threshold=0)

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = ResiliencePolicy(backoff_base_s=0.1, backoff_multiplier=2.0,
                                  jitter=0.0)
        assert policy.backoff_s(5, 1) == pytest.approx(0.1)
        assert policy.backoff_s(5, 2) == pytest.approx(0.2)
        assert policy.backoff_s(5, 3) == pytest.approx(0.4)

    def test_jitter_is_bounded_and_deterministic(self):
        policy = ResiliencePolicy(backoff_base_s=0.1, jitter=0.5)
        delays = [policy.backoff_s(q, 1) for q in range(32)]
        assert delays == [policy.backoff_s(q, 1) for q in range(32)]
        assert all(0.05 <= d <= 0.15 for d in delays)
        assert len(set(delays)) > 1  # jitter actually varies per query


class TestCircuitBreaker:
    def test_opens_after_threshold_and_cools_down(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=1.0)
        assert not breaker.record_failure("t", 0.0)
        assert not breaker.record_failure("t", 0.1)
        assert breaker.record_failure("t", 0.2)  # opens exactly here
        assert breaker.is_open("t", 0.5)
        assert not breaker.is_open("t", 1.3)  # cooldown elapsed: closed
        assert breaker.opened_total == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=1.0)
        breaker.record_failure("t", 0.0)
        breaker.record_success("t")
        assert not breaker.record_failure("t", 0.1)
        assert breaker.record_failure("t", 0.2)

    def test_streams_are_independent(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure("a", 0.0)
        assert breaker.is_open("a", 1.0)
        assert not breaker.is_open("b", 1.0)


class TestScheduledFaults:
    def test_null_injector_equals_plain_run(self):
        plain = run(scheduler())
        nulled = run(scheduler(injector=NULL_INJECTOR))
        assert plain.records == nulled.records
        assert plain.counters == nulled.counters
        assert nulled.failures == [] and nulled.downtime_s == 0.0

    def test_aex_storm_inflates_services(self):
        inj = make_injector(plan_of(
            FaultSpec(FaultKind.AEX_STORM, magnitude=3.0)
        ))
        base = run(scheduler())
        stormy = run(scheduler(injector=inj))
        assert stormy.counters.aex_inflations == stormy.counters.completed
        assert stormy.makespan_s > base.makespan_s
        # Same arrivals, same completions: the storm only stretches time.
        assert [r.query_id for r in stormy.records] == [
            r.query_id for r in base.records
        ]

    def test_crash_without_resilience_fails_terminally(self):
        inj = make_injector(plan_of(
            FaultSpec(FaultKind.ENCLAVE_CRASH, probability=0.3, reinit_s=0.2)
        ))
        metrics = run(scheduler(injector=inj))
        assert metrics.counters.crashes > 0
        assert metrics.counters.failed == len(metrics.failures) > 0
        assert all(f.outcome == "crash" and f.attempts == 1
                   for f in metrics.failures)
        assert metrics.downtime_s == pytest.approx(
            0.2 * metrics.counters.crashes
        )
        assert metrics.availability < 1.0

    def test_crash_with_retries_recovers(self):
        plan = plan_of(
            FaultSpec(FaultKind.ENCLAVE_CRASH, probability=0.3, reinit_s=0.05)
        )
        unmitigated = run(scheduler(injector=make_injector(plan)))
        mitigated = run(scheduler(
            injector=make_injector(plan),
            resilience=ResiliencePolicy(max_retries=5, breaker_threshold=100),
        ))
        assert mitigated.counters.retries > 0
        assert mitigated.counters.completed > unmitigated.counters.completed
        assert mitigated.availability > unmitigated.availability
        assert any(r.attempts > 1 for r in mitigated.records)

    def test_poison_breaker_sheds_stream(self):
        inj = make_injector(plan_of(
            FaultSpec(FaultKind.POISON_JOB, template="small")
        ))
        metrics = run(scheduler(
            injector=inj,
            resilience=ResiliencePolicy(
                max_retries=0, breaker_threshold=3, breaker_cooldown_s=100.0
            ),
        ))
        assert metrics.counters.completed == 0
        assert metrics.counters.poisoned >= 3
        assert metrics.counters.shed > 0
        # Shed arrivals fail instantly: no service time burned.
        shed = [f for f in metrics.failures if f.outcome == "shed"]
        assert shed and all(f.failed_s == f.arrival_s for f in shed)

    def test_epc_squeeze_overflows_without_degradation(self):
        inj = make_injector(plan_of(
            FaultSpec(FaultKind.EPC_SQUEEZE, end_s=10.0, magnitude=0.3)
        ))
        base = run(scheduler(epc=1_000 * MB),
                   streams=(stream(mix={"big": 1.0}, qps=30.0),))
        squeezed = run(scheduler(epc=1_000 * MB, injector=inj),
                       streams=(stream(mix={"big": 1.0}, qps=30.0),))
        assert base.counters.edmm_admissions == 0
        assert squeezed.counters.edmm_admissions > 0
        assert squeezed.counters.degraded == 0

    def test_degradation_replaces_overflow_under_squeeze(self):
        inj = make_injector(plan_of(
            FaultSpec(FaultKind.EPC_SQUEEZE, end_s=10.0, magnitude=0.3)
        ))
        degraded = run(
            scheduler(
                epc=1_000 * MB,
                injector=inj,
                resilience=ResiliencePolicy(degrade_on_squeeze=True),
            ),
            streams=(stream(mix={"big": 1.0}, qps=30.0),),
        )
        assert degraded.counters.degraded > 0
        assert degraded.counters.edmm_admissions == 0
        assert degraded.counters.completed == degraded.counters.arrivals
        # Degradation is far cheaper than the EDMM overflow penalty.
        overflowed = run(
            scheduler(epc=1_000 * MB, injector=inj),
            streams=(stream(mix={"big": 1.0}, qps=30.0),),
        )
        assert (degraded.latency_percentile_s(99)
                < overflowed.latency_percentile_s(99))

    def test_edmm_denied_fails_overflow_admissions(self):
        inj = make_injector(plan_of(
            FaultSpec(FaultKind.EDMM_DENIED, probability=1.0),
            FaultSpec(FaultKind.EPC_SQUEEZE, end_s=10.0, magnitude=0.3),
        ))
        metrics = run(scheduler(epc=1_000 * MB, injector=inj),
                      streams=(stream(mix={"big": 1.0}, qps=30.0),))
        assert metrics.counters.edmm_denied > 0
        assert any(f.outcome == "edmm_denied" for f in metrics.failures)

    def test_timeout_bounds_attempts(self):
        inj = make_injector(plan_of(
            FaultSpec(FaultKind.AEX_STORM, magnitude=50.0)
        ))
        metrics = run(
            scheduler(
                injector=inj,
                resilience=ResiliencePolicy(
                    max_retries=0, timeout_s=0.05, breaker_threshold=1000
                ),
            ),
            streams=(stream(qps=5.0),),
        )
        assert metrics.counters.timeouts > 0
        assert all(f.outcome == "timeout" for f in metrics.failures)
        # A timed-out attempt burns exactly the timeout, never the full
        # inflated service.
        assert metrics.makespan_s < 50.0 * 0.01 * metrics.counters.arrivals

    def test_closed_loop_resubmits_after_terminal_failure(self):
        # A poisoned closed-loop stream must keep cycling: each client
        # resubmits after its query fails, so failures accumulate well
        # beyond the client count instead of the stream going silent.
        inj = make_injector(plan_of(
            FaultSpec(FaultKind.POISON_JOB, template="small")
        ))
        closed = ClosedLoopStream(
            "loop", clients=2, think_s=0.01,
            mix=QueryMix.of({"small": 1.0}), seed=3,
        )
        metrics = scheduler(injector=inj).run(
            open_streams=(), closed_streams=(closed,), duration_s=1.0
        )
        assert metrics.counters.completed == 0
        assert len(metrics.failures) > 2 * 5

    def test_faulted_run_is_deterministic(self):
        plan = get_fault_plan("chaos")
        resilience = ResiliencePolicy()

        def once():
            return run(
                scheduler(injector=make_injector(plan),
                          resilience=resilience),
                streams=(stream(mix={"small": 0.8, "big": 0.2}),),
            )

        a, b = once(), once()
        assert a.records == b.records
        assert a.failures == b.failures
        assert a.counters == b.counters
        assert a.downtime_s == b.downtime_s


class TestFaultTracing:
    def test_unfaulted_trace_has_no_fault_events(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run(scheduler())
        names = {e.name for e in tracer.records}
        assert not any(n.startswith(("fault.", "resilience."))
                       for n in names)
        assert FAILED not in names
        breakdown = fault_breakdown(tracer)
        assert breakdown.lost_s == 0.0 and breakdown.retries == 0

    def test_fault_breakdown_matches_counters(self):
        plan = plan_of(
            FaultSpec(FaultKind.ENCLAVE_CRASH, probability=0.3, reinit_s=0.1)
        )
        tracer = Tracer()
        with use_tracer(tracer):
            metrics = run(scheduler(
                injector=make_injector(plan),
                resilience=ResiliencePolicy(max_retries=2,
                                            breaker_threshold=1000),
            ))
        breakdown = fault_breakdown(tracer)
        assert breakdown.retries == metrics.counters.retries
        assert breakdown.failed == metrics.counters.failed
        assert breakdown.downtime_s == pytest.approx(metrics.downtime_s)
        assert breakdown.retry_wait_s > 0
        names = {e.name for e in tracer.records}
        assert RETRY in names

    def test_shed_events_emitted(self):
        tracer = Tracer()
        inj = make_injector(plan_of(
            FaultSpec(FaultKind.POISON_JOB, template="small")
        ))
        with use_tracer(tracer):
            run(scheduler(
                injector=inj,
                resilience=ResiliencePolicy(max_retries=0,
                                            breaker_threshold=2,
                                            breaker_cooldown_s=100.0),
            ))
        names = [e.name for e in tracer.records]
        assert SHED in names


class TestFaultCacheKeys:
    def test_plan_changes_experiment_key(self):
        base = experiment_key("wl01", quick=True, base_seed=42)
        chaos = experiment_key("wl01", quick=True, base_seed=42,
                               faults=get_fault_plan("chaos"))
        storm = experiment_key("wl01", quick=True, base_seed=42,
                               faults=get_fault_plan("aex-storm"))
        assert len({base, chaos, storm}) == 3

    def test_same_plan_same_key(self):
        a = experiment_key("wl01", quick=True, base_seed=42,
                           faults=get_fault_plan("chaos"))
        b = experiment_key("wl01", quick=True, base_seed=42,
                           faults=get_fault_plan("chaos"))
        assert a == b

    def test_plan_seed_changes_key(self):
        plan = get_fault_plan("chaos")
        reseeded = FaultPlan(name=plan.name, seed=plan.seed + 1,
                             specs=plan.specs)
        assert experiment_key("wl01", quick=True, base_seed=42, faults=plan) \
            != experiment_key("wl01", quick=True, base_seed=42,
                              faults=reseeded)
