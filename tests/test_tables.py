"""Columnar tables, join-input generators, and the TPC-H generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tables import (
    JOIN_TUPLE_BYTES,
    Column,
    Table,
    generate_join_relation_pair,
    generate_key_value_table,
    generate_tpch,
    rows_for_bytes,
)
from repro.tables.generator import skewed_probe_keys
from repro.tables.tpch import (
    MKTSEGMENTS,
    RETURNFLAGS,
    SHIPMODES,
    date_code,
    returnflag_code,
    segment_code,
    shipmode_code,
)


class TestTable:
    def test_basic_structure(self):
        table = Table.from_arrays(
            "t", a=np.arange(10, dtype=np.int32), b=np.zeros(10, dtype=np.int64)
        )
        assert len(table) == 10
        assert table.column_names == ["a", "b"]
        assert table.row_bytes == 12
        assert "a" in table and "c" not in table

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            Table("t", [Column("a", np.arange(3)), Column("b", np.arange(4))])

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Table("t", [Column("a", np.arange(3)), Column("a", np.arange(3))])

    def test_unknown_column_rejected(self):
        table = Table.from_arrays("t", a=np.arange(3))
        with pytest.raises(ConfigurationError):
            table.column("missing")

    def test_logical_scaling(self):
        table = Table.from_arrays("t", sim_scale=100.0, a=np.arange(10, dtype=np.int32))
        assert table.num_rows == 10
        assert table.logical_rows == 1000
        assert table.logical_bytes == 4000

    def test_select_and_take(self):
        table = Table.from_arrays("t", a=np.arange(10))
        selected = table.select(table["a"] % 2 == 0)
        assert list(selected["a"]) == [0, 2, 4, 6, 8]
        taken = table.take(np.array([3, 1]))
        assert list(taken["a"]) == [3, 1]

    def test_select_preserves_scale(self):
        table = Table.from_arrays("t", sim_scale=7.0, a=np.arange(4))
        assert table.select(table["a"] > 1).sim_scale == 7.0

    def test_wrong_mask_length_rejected(self):
        table = Table.from_arrays("t", a=np.arange(4))
        with pytest.raises(ConfigurationError):
            table.select(np.ones(3, dtype=bool))

    def test_with_columns(self):
        table = Table.from_arrays("t", a=np.arange(3))
        extended = table.with_columns([Column("b", np.ones(3))])
        assert extended.column_names == ["a", "b"]

    def test_non_1d_column_rejected(self):
        with pytest.raises(ConfigurationError):
            Column("m", np.zeros((2, 2)))


class TestJoinGenerator:
    def test_rows_for_bytes(self):
        assert rows_for_bytes(100e6) == 12_500_000
        assert rows_for_bytes(400e6) == 50_000_000

    def test_tuple_width_is_paper_width(self):
        build, probe = generate_join_relation_pair(1e6, 4e6, physical_row_cap=None)
        assert JOIN_TUPLE_BYTES == 8
        assert build.row_bytes == 8
        assert probe.row_bytes == 8

    def test_build_keys_unique(self):
        build, _ = generate_join_relation_pair(1e6, 4e6, physical_row_cap=None)
        assert len(np.unique(build["key"])) == build.num_rows

    def test_every_probe_key_matches(self):
        build, probe = generate_join_relation_pair(1e6, 4e6, physical_row_cap=None)
        assert np.isin(probe["key"], build["key"]).all()

    def test_logical_sizes_preserved_under_cap(self):
        build, probe = generate_join_relation_pair(
            100e6, 400e6, physical_row_cap=10_000
        )
        assert build.num_rows == 10_000
        assert build.logical_rows == pytest.approx(12_500_000)
        assert probe.logical_rows == pytest.approx(50_000_000)

    def test_deterministic_per_seed(self):
        a1, _ = generate_join_relation_pair(1e6, 2e6, seed=5, physical_row_cap=None)
        a2, _ = generate_join_relation_pair(1e6, 2e6, seed=5, physical_row_cap=None)
        assert np.array_equal(a1["key"], a2["key"])

    def test_zero_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_key_value_table("t", 4, rng=np.random.default_rng(0))

    def test_skewed_keys_uniform_degenerate(self):
        rng = np.random.default_rng(0)
        keys = skewed_probe_keys(100, 1000, 0.0, rng)
        assert keys.min() >= 0 and keys.max() < 100

    def test_skewed_keys_concentrate(self):
        rng = np.random.default_rng(0)
        keys = skewed_probe_keys(1000, 20_000, 1.2, rng)
        top_share = (keys < 10).mean()
        assert top_share > 0.3  # heavy head under Zipf 1.2

    def test_skew_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            skewed_probe_keys(0, 10, 0.5, rng)
        with pytest.raises(ConfigurationError):
            skewed_probe_keys(10, 10, -1.0, rng)


class TestTpchGenerator:
    def test_cardinality_ratios(self):
        data = generate_tpch(0.05, physical_sf_cap=None)
        assert data.customer.num_rows == 7_500
        assert data.orders.num_rows == 75_000
        assert data.part.num_rows == 10_000
        # 1..7 lineitems per order, so ~4x orders.
        ratio = data.lineitem.num_rows / data.orders.num_rows
        assert 3.5 < ratio < 4.5

    def test_scale_cap_transfers_to_sim_scale(self):
        data = generate_tpch(10, physical_sf_cap=0.05)
        assert data.lineitem.sim_scale == pytest.approx(200.0)
        assert data.orders.logical_rows == pytest.approx(15_000_000, rel=0.01)

    def test_lineitem_dates_consistent(self):
        data = generate_tpch(0.02, physical_sf_cap=None)
        li = data.lineitem
        assert (li["l_shipdate"] < li["l_receiptdate"]).all()
        order_dates = data.orders["o_orderdate"][li["l_orderkey"]]
        assert (li["l_shipdate"] > order_dates).all()
        assert (li["l_commitdate"] > order_dates).all()

    def test_foreign_keys_valid(self):
        data = generate_tpch(0.02, physical_sf_cap=None)
        assert data.lineitem["l_orderkey"].max() < data.orders.num_rows
        assert data.lineitem["l_partkey"].max() < data.part.num_rows
        assert data.orders["o_custkey"].max() < data.customer.num_rows

    def test_row_width_is_integer_coded(self):
        data = generate_tpch(0.02, physical_sf_cap=None)
        assert data.customer.row_bytes == 8
        assert data.lineitem.row_bytes == 9 * 4

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_tpch(0)

    def test_dictionary_codes(self):
        assert segment_code("BUILDING") == MKTSEGMENTS.index("BUILDING")
        assert shipmode_code("SHIP") == SHIPMODES.index("SHIP")
        assert returnflag_code("R") == RETURNFLAGS.index("R")
        with pytest.raises(ConfigurationError):
            segment_code("NOT A SEGMENT")

    def test_date_code_epoch(self):
        assert date_code(1992, 1, 1) == 0
        assert date_code(1992, 1, 2) == 1
        assert date_code(1995, 3, 15) > date_code(1994, 1, 1)
