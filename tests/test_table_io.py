"""Table persistence: CSV and binary round trips."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tables.io import load_table, save_table, table_from_csv, table_to_csv
from repro.tables.table import Table


@pytest.fixture
def table(rng):
    return Table.from_arrays(
        "sample",
        sim_scale=12.5,
        key=rng.integers(0, 1000, 50).astype(np.int32),
        payload=rng.integers(0, 1 << 20, 50).astype(np.int64),
    )


class TestCsv:
    def test_roundtrip(self, table):
        restored = table_from_csv(table_to_csv(table), "sample")
        assert restored.column_names == table.column_names
        assert restored.sim_scale == table.sim_scale
        assert np.array_equal(restored["key"], table["key"])
        assert np.array_equal(restored["payload"], table["payload"])

    def test_scale_comment_only_when_scaled(self):
        unscaled = Table.from_arrays("t", a=np.arange(3))
        assert not table_to_csv(unscaled).startswith("#")

    def test_float_columns(self):
        csv = "x,y\n1,0.5\n2,1.5\n"
        restored = table_from_csv(csv)
        assert restored["x"].dtype == np.int64
        assert restored["y"].dtype == np.float64

    def test_empty_table(self):
        restored = table_from_csv("a,b\n")
        assert restored.num_rows == 0
        assert restored.column_names == ["a", "b"]

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            table_from_csv("a,b\n1\n")

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigurationError):
            table_from_csv("a\nhello\n")

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            table_from_csv("")

    def test_blank_header_rejected(self):
        with pytest.raises(ConfigurationError):
            table_from_csv("a,,c\n1,2,3\n")


class TestBinary:
    def test_roundtrip_exact(self, table, tmp_path):
        path = tmp_path / "t.npz"
        save_table(table, path)
        restored = load_table(path)
        assert restored.name == "sample"
        assert restored.sim_scale == 12.5
        assert restored["key"].dtype == np.int32  # dtype preserved
        assert np.array_equal(restored["payload"], table["payload"])

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_table(tmp_path / "nope.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_table(path)
