"""The repro.cluster subsystem: specs, routing, shard faults, serving."""

import math

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterFaultPlan,
    ClusterScheduler,
    ClusterSpec,
    ElasticPolicy,
    HashRouter,
    LoadAwareRouter,
    NO_SHARD_FAULTS,
    ShardFaultKind,
    ShardFaultSpec,
    current_cluster,
    make_router,
    use_cluster,
)
from repro.cluster.scheduler import QUERY_ID_STRIDE
from repro.errors import ConfigurationError
from repro.hardware import paper_calibration, paper_testbed
from repro.workload import (
    JobCost,
    OpenLoopStream,
    QueryMix,
    WorkloadScheduler,
    make_policy,
)

MB = 1_000_000

#: Synthetic priced costs: cluster tests need no operator runs.
COSTS = {
    "small": JobCost("small", threads=1, service_s=0.01,
                     working_set_bytes=10 * MB),
    "big": JobCost("big", threads=2, service_s=0.05,
                   working_set_bytes=50 * MB),
}

MIX = QueryMix.of({"small": 0.8, "big": 0.2})


def cluster_run(config, *, qps=400.0, duration_s=2.0, seed=11, streams=None):
    """One synthetic cluster run; returns its ClusterResult."""
    spec = paper_testbed()
    shards = config.spec.shards(spec)
    schedulers = [
        WorkloadScheduler(
            COSTS,
            make_policy("fifo"),
            cores=shard.cores,
            epc_budget_bytes=shard.epc_budget_bytes,
            setting_label="test",
            shard=shard.label,
            query_id_base=shard.shard_id * QUERY_ID_STRIDE,
        )
        for shard in shards
    ]
    scheduler = ClusterScheduler(
        cluster=config,
        shards=shards,
        schedulers=schedulers,
        costs=COSTS,
        spec=spec,
        params=paper_calibration(),
    )
    if streams is None:
        streams = tuple(
            OpenLoopStream(f"t{i}", qps=qps / 8, mix=MIX, seed=seed + i)
            for i in range(8)
        )
    return scheduler.run(open_streams=streams, duration_s=duration_s)


class TestClusterSpec:
    def test_parse_two_part_shape(self):
        spec = ClusterSpec.parse("2x4")
        assert spec.machines == 1
        assert spec.sockets == 2
        assert spec.enclaves_per_socket == 4
        assert spec.shard_count == 8

    def test_parse_three_part_shape(self):
        spec = ClusterSpec.parse("2x2x4")
        assert spec.machines == 2
        assert spec.shard_count == 16

    def test_canonical_round_trips(self):
        for text in ("2x4", "1x1", "2x2x4"):
            assert ClusterSpec.parse(text).canonical() == text

    @pytest.mark.parametrize("bad", ["", "2", "2x", "axb", "2x4x2x1", "2,4"])
    def test_bad_shapes_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ClusterSpec.parse(bad)

    @pytest.mark.parametrize("bad", ["0x4", "2x0", "0x0", "2x2x0"])
    def test_zero_shard_counts_rejected_at_parse(self, bad):
        # Regression: int() accepted the zeros and the spec's own
        # validation only fired later, with a worse message.
        with pytest.raises(ConfigurationError):
            ClusterSpec.parse(bad)

    @pytest.mark.parametrize("bad", ["-1x4", "2x-4", "+2x4"])
    def test_signed_counts_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ClusterSpec.parse(bad)

    @pytest.mark.parametrize("bad", [" 2x4", "2x4 ", "2 x4", "2x 4", "\t2x4"])
    def test_whitespace_padded_specs_rejected(self, bad):
        # Regression: ``" 2x4"`` used to parse (str.strip + int's own
        # whitespace tolerance) so typos silently produced a cluster.
        with pytest.raises(ConfigurationError):
            ClusterSpec.parse(bad)

    def test_zero_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(sockets=0)
        with pytest.raises(ConfigurationError):
            ClusterSpec(enclaves_per_socket=0)
        with pytest.raises(ConfigurationError):
            ClusterSpec(machines=0)

    def test_shards_split_socket_cores_and_epc_evenly(self):
        hw = paper_testbed()
        shards = ClusterSpec.parse("2x4").shards(hw)
        assert len(shards) == 8
        assert all(s.cores == hw.cores_per_socket // 4 for s in shards)
        assert all(
            s.epc_budget_bytes == hw.epc_bytes_per_socket / 4 for s in shards
        )
        assert len({s.label for s in shards}) == 8
        assert [s.shard_id for s in shards] == list(range(8))
        # Sockets are covered machine-major, socket, enclave.
        assert [s.socket for s in shards] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_home_cores_land_on_the_shard_socket(self):
        hw = paper_testbed()
        for shard in ClusterSpec.parse("2x4").shards(hw):
            core = shard.home_core(hw)
            assert core // hw.cores_per_socket == shard.socket

    def test_shards_reject_shapes_beyond_the_hardware(self):
        hw = paper_testbed()
        with pytest.raises(ConfigurationError):
            ClusterSpec(sockets=3).shards(hw)
        with pytest.raises(ConfigurationError):
            ClusterSpec(enclaves_per_socket=17).shards(hw)


class TestRouters:
    def shards(self, shape="2x4"):
        return ClusterSpec.parse(shape).shards(paper_testbed())

    def test_hash_router_is_deterministic_and_sticky(self):
        shards = self.shards()
        router = make_router("hash", shards)
        eligible = {s.shard_id for s in shards}
        first = [router.route(f"tenant-{i}", eligible, lambda s: 0.0)
                 for i in range(64)]
        second = [router.route(f"tenant-{i}", eligible, lambda s: 0.0)
                  for i in range(64)]
        assert first == second
        assert len(set(first)) > 1  # keys spread over the ring

    def test_hash_router_only_moves_keys_of_the_lost_shard(self):
        shards = self.shards()
        router = HashRouter(shards)
        eligible = {s.shard_id for s in shards}
        before = {
            f"tenant-{i}": router.route(f"tenant-{i}", eligible, lambda s: 0.0)
            for i in range(128)
        }
        lost = before["tenant-0"]
        survivors = eligible - {lost}
        for key, owner in before.items():
            after = router.route(key, survivors, lambda s: 0.0)
            if owner != lost:
                assert after == owner  # unaffected keys stay put
            else:
                assert after in survivors

    def test_load_aware_routes_to_least_loaded(self):
        shards = self.shards()
        router = LoadAwareRouter(shards)
        eligible = {s.shard_id for s in shards}
        loads = {s.shard_id: float(s.shard_id) for s in shards}
        loads[5] = -1.0
        assert router.route("any", eligible, loads.__getitem__) == 5

    def test_load_aware_breaks_ties_by_shard_id(self):
        router = LoadAwareRouter(self.shards())
        assert router.route("any", {3, 6, 1}, lambda s: 0.0) == 1

    def test_empty_eligible_set_rejected(self):
        for name in ("hash", "load-aware"):
            router = make_router(name, self.shards())
            with pytest.raises(ConfigurationError):
                router.route("any", set(), lambda s: 0.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_router("round-robin", self.shards())

    def test_router_needs_shards(self):
        with pytest.raises(ConfigurationError):
            HashRouter(())


class TestShardFaults:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ShardFaultSpec(ShardFaultKind.SHARD_CRASH, start_s=1.0, end_s=1.0)
        with pytest.raises(ConfigurationError):
            ShardFaultSpec(ShardFaultKind.SHARD_CRASH, start_s=-1.0, end_s=1.0)
        with pytest.raises(ConfigurationError):
            ShardFaultSpec(
                ShardFaultKind.REBALANCE_STORM, start_s=0.0, end_s=1.0,
                probability=1.5,
            )

    def test_crash_edges_are_time_ordered(self):
        plan = ClusterFaultPlan(
            name="p",
            specs=(
                ShardFaultSpec(ShardFaultKind.SHARD_CRASH, start_s=3.0,
                               end_s=4.0, shard=1),
                ShardFaultSpec(ShardFaultKind.SHARD_CRASH, start_s=1.0,
                               end_s=2.0, shard=0),
            ),
        )
        assert plan.crash_edges() == [
            (1.0, "down", 0), (2.0, "up", 0), (3.0, "down", 1), (4.0, "up", 1)
        ]

    def test_storm_draws_are_deterministic_and_windowed(self):
        plan = ClusterFaultPlan(
            name="p",
            seed=7,
            specs=(
                ShardFaultSpec(ShardFaultKind.REBALANCE_STORM, start_s=1.0,
                               end_s=2.0, probability=0.5),
            ),
        )
        inside = [plan.storm_diverts(1.5, seq) for seq in range(200)]
        assert inside == [plan.storm_diverts(1.5, seq) for seq in range(200)]
        assert any(inside) and not all(inside)  # a real Bernoulli split
        assert not any(plan.storm_diverts(0.5, seq) for seq in range(200))

    def test_probability_extremes(self):
        def plan(p):
            return ClusterFaultPlan(
                name="p",
                specs=(
                    ShardFaultSpec(ShardFaultKind.REBALANCE_STORM,
                                   start_s=0.0, end_s=1.0, probability=p),
                ),
            )
        assert not any(plan(0.0).storm_diverts(0.5, s) for s in range(50))
        assert all(plan(1.0).storm_diverts(0.5, s) for s in range(50))

    def test_no_shard_faults_is_inactive(self):
        assert not NO_SHARD_FAULTS.active
        assert NO_SHARD_FAULTS.crash_edges() == []


class TestElasticPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ElasticPolicy(min_shards=0, max_shards=2)
        with pytest.raises(ConfigurationError):
            ElasticPolicy(min_shards=4, max_shards=2)
        with pytest.raises(ConfigurationError):
            ElasticPolicy(min_shards=1, max_shards=2, interval_s=0.0)
        with pytest.raises(ConfigurationError):
            ElasticPolicy(min_shards=1, max_shards=2, low_watermark=0.9,
                          high_watermark=0.8)

    def test_activation_delay_follows_the_edmm_model(self):
        policy = ElasticPolicy(min_shards=1, max_shards=2)
        spec = paper_testbed()
        params = paper_calibration()
        ws = 10 * MB
        pages = math.ceil(ws / 4096)
        expected = pages * params.edmm_page_add_cycles / spec.base_frequency_hz
        assert policy.activation_delay_s(ws, spec, params) == pytest.approx(
            expected
        )

    def test_explicit_grow_delay_overrides_the_model(self):
        policy = ElasticPolicy(min_shards=1, max_shards=2, grow_delay_s=0.25)
        assert policy.activation_delay_s(
            10 * MB, paper_testbed(), paper_calibration()
        ) == 0.25


class TestClusterConfig:
    def test_parse_shape_and_routing(self):
        config = ClusterConfig.parse("2x4:load-aware")
        assert config.spec.shard_count == 8
        assert config.routing == "load-aware"
        assert ClusterConfig.parse("2x4").routing == "hash"

    def test_unknown_routing_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig.parse("2x4:round-robin")

    def test_elastic_ceiling_must_fit_the_cluster(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(
                spec=ClusterSpec.parse("2x1"),
                elastic=ElasticPolicy(min_shards=1, max_shards=4),
            )

    def test_describe_names_the_interesting_pieces(self):
        config = ClusterConfig(
            spec=ClusterSpec.parse("2x4"),
            routing="load-aware",
            failover=False,
            elastic=ElasticPolicy(min_shards=2, max_shards=8),
        )
        text = config.describe()
        for token in ("2x4", "load-aware", "no-failover", "elastic[2-8]"):
            assert token in text

    def test_ambient_channel_stacks_and_restores(self):
        assert current_cluster() is None
        outer = ClusterConfig.parse("2x1")
        inner = ClusterConfig.parse("2x4")
        with use_cluster(outer):
            assert current_cluster() is outer
            with use_cluster(inner):
                assert current_cluster() is inner
            assert current_cluster() is outer
        assert current_cluster() is None


class TestClusterServing:
    def test_all_queries_served_and_merged(self):
        config = ClusterConfig(spec=ClusterSpec.parse("2x4"))
        result = cluster_run(config)
        metrics = result.metrics
        assert metrics.counters.completed > 0
        assert metrics.counters.completed == len(metrics.records)
        assert result.routed == metrics.counters.arrivals
        per_shard = sum(
            result.registry.shard(label).counters.completed
            for label in result.registry.labels
        )
        assert per_shard == metrics.counters.completed

    def test_query_id_ranges_stay_disjoint_per_shard(self):
        config = ClusterConfig(spec=ClusterSpec.parse("2x4"))
        result = cluster_run(config)
        for label in result.registry.labels:
            ids = [r.query_id for r in result.registry.shard(label).records]
            if not ids:
                continue
            bands = {q // QUERY_ID_STRIDE for q in ids}
            assert len(bands) == 1

    def test_runs_are_deterministic(self):
        config = ClusterConfig(spec=ClusterSpec.parse("2x4"))
        first = cluster_run(config)
        second = cluster_run(config)
        assert first.metrics.records == second.metrics.records
        assert first.metrics.counters == second.metrics.counters
        assert first.routed == second.routed

    def test_routing_policies_place_differently(self):
        hash_result = cluster_run(
            ClusterConfig(spec=ClusterSpec.parse("2x4"), routing="hash")
        )
        load_result = cluster_run(
            ClusterConfig(spec=ClusterSpec.parse("2x4"), routing="load-aware")
        )
        def placement(result):
            return {
                label: result.registry.shard(label).counters.completed
                for label in result.registry.labels
            }
        assert placement(hash_result) != placement(load_result)
        assert load_result.shuffle_s > 0  # off-home placements are priced

    def test_failover_recovers_availability(self):
        spec = ClusterSpec.parse("2x4")
        plan = ClusterFaultPlan(
            name="crash",
            specs=(
                ShardFaultSpec(ShardFaultKind.SHARD_CRASH, start_s=0.5,
                               end_s=1.5, shard=0),
            ),
        )
        with_failover = cluster_run(
            ClusterConfig(spec=spec, faults=plan, failover=True)
        )
        without = cluster_run(
            ClusterConfig(spec=spec, faults=plan, failover=False)
        )
        assert with_failover.metrics.availability == 1.0
        assert with_failover.failovers > 0
        assert without.metrics.availability < 1.0
        assert without.rejected > 0
        assert without.metrics.counters.failed + \
            without.metrics.counters.shed > 0

    def test_crash_without_failover_only_hits_homed_tenants(self):
        spec = ClusterSpec.parse("2x4")
        plan = ClusterFaultPlan(
            name="crash",
            specs=(
                ShardFaultSpec(ShardFaultKind.SHARD_CRASH, start_s=0.5,
                               end_s=1.5, shard=0),
            ),
        )
        result = cluster_run(
            ClusterConfig(spec=spec, faults=plan, failover=False)
        )
        # The other seven shards keep serving through the outage.
        assert result.metrics.counters.completed > 0
        failed_streams = {f.stream for f in result.metrics.failures}
        all_streams = {r.stream for r in result.metrics.records}
        assert failed_streams < all_streams

    def test_rebalance_storm_diverts_traffic(self):
        plan = ClusterFaultPlan(
            name="storm",
            seed=3,
            specs=(
                ShardFaultSpec(ShardFaultKind.REBALANCE_STORM, start_s=0.0,
                               end_s=2.0, probability=0.3),
            ),
        )
        result = cluster_run(
            ClusterConfig(spec=ClusterSpec.parse("2x4"), faults=plan)
        )
        assert result.diverted > 0
        assert result.metrics.availability == 1.0

    def test_elastic_pool_grows_under_load_and_respects_ceiling(self):
        config = ClusterConfig(
            spec=ClusterSpec.parse("2x4"),
            elastic=ElasticPolicy(
                min_shards=2, max_shards=4, interval_s=0.05
            ),
        )
        result = cluster_run(config, qps=2500.0)
        assert result.scale_ups > 0
        assert 2 <= result.peak_active <= 4

    def test_cluster_needs_matching_shards_and_schedulers(self):
        config = ClusterConfig(spec=ClusterSpec.parse("2x1"))
        shards = config.spec.shards(paper_testbed())
        with pytest.raises(ConfigurationError):
            ClusterScheduler(
                cluster=config,
                shards=shards,
                schedulers=[],
                costs=COSTS,
                spec=paper_testbed(),
                params=paper_calibration(),
            )

    def test_crash_spec_beyond_the_shard_map_rejected(self):
        plan = ClusterFaultPlan(
            name="crash",
            specs=(
                ShardFaultSpec(ShardFaultKind.SHARD_CRASH, start_s=0.5,
                               end_s=1.5, shard=7),
            ),
        )
        config = ClusterConfig(spec=ClusterSpec.parse("2x1"), faults=plan)
        with pytest.raises(ConfigurationError):
            cluster_run(config)
