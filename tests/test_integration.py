"""Cross-module integration scenarios.

These exercise interactions the per-module tests cannot: EPC accounting
across a whole query, context lifecycle edge cases, several operators
sharing one machine, and the consistency ties between figures that the
paper's narrative depends on.
"""

import numpy as np
import pytest

from repro.core.joins import ParallelHashJoin, RadixJoin
from repro.core.queries import QueryExecutor, TPCH_QUERIES
from repro.core.scans import BitvectorScan, RangePredicate
from repro.enclave.enclave import EnclaveState
from repro.enclave.runtime import ExecutionSetting
from repro.errors import AccessViolationError, EnclaveStateError
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair, generate_tpch
from repro.tables.table import Column

PLAIN = ExecutionSetting.plain_cpu()
SGX = ExecutionSetting.sgx_data_in_enclave()


class TestEpcAccountingEndToEnd:
    def test_query_epc_footprint_tracked_and_released(self):
        machine = SimMachine()
        data = generate_tpch(1.0, seed=2, physical_sf_cap=0.01)
        tables = {
            "customer": data.customer, "orders": data.orders,
            "lineitem": data.lineitem, "part": data.part,
        }
        assert machine.allocator.epc_used(0) == 0
        with machine.context(SGX, threads=8) as ctx:
            QueryExecutor().run(ctx, TPCH_QUERIES["Q12"](), tables)
            assert machine.allocator.epc_used(0) > 0
        assert machine.allocator.epc_used(0) == 0
        assert machine.allocator.peak_epc_bytes > 0

    def test_sequential_contexts_on_one_machine(self, small_join_tables):
        machine = SimMachine()
        build, probe = small_join_tables
        cycles = []
        for _ in range(3):
            with machine.context(SGX, threads=8) as ctx:
                cycles.append(RadixJoin().run(ctx, build, probe).cycles)
        # Deterministic: identical runs cost identical cycles, and no EPC
        # leaks across contexts.
        assert cycles[0] == cycles[1] == cycles[2]
        assert machine.allocator.epc_used(0) == 0

    def test_concurrent_contexts_share_epc(self, small_join_tables):
        from repro.enclave.enclave import EnclaveConfig
        from repro.units import GiB

        machine = SimMachine()
        config = EnclaveConfig(heap_bytes=4 * GiB, node=0)
        ctx_a = machine.context(SGX, threads=4, enclave_config=config)
        ctx_b = machine.context(SGX, threads=4, enclave_config=config)
        used = machine.allocator.epc_used(0)
        assert used > 0  # two enclaves' heaps are both reserved
        ctx_a.close()
        after_one = machine.allocator.epc_used(0)
        assert 0 < after_one < used
        ctx_b.close()
        assert machine.allocator.epc_used(0) == 0


class TestContextLifecycle:
    def test_enclave_destroyed_on_context_exit(self):
        machine = SimMachine()
        with machine.context(SGX) as ctx:
            enclave = ctx.enclave
            assert enclave.state is EnclaveState.INITIALIZED
        assert enclave.state is EnclaveState.DESTROYED

    def test_allocation_after_close_fails(self, small_join_tables):
        machine = SimMachine()
        ctx = machine.context(SGX)
        ctx.close()
        with pytest.raises((EnclaveStateError, AttributeError)):
            ctx.allocate("late", 1024)

    def test_double_close_is_safe(self):
        machine = SimMachine()
        ctx = machine.context(PLAIN)
        ctx.allocate("buf", 1024)
        ctx.close()
        ctx.close()  # idempotent

    def test_plain_regions_released(self):
        machine = SimMachine()
        with machine.context(PLAIN) as ctx:
            ctx.allocate("buf", 1 << 20)
            assert machine.allocator.dram_used(0) == 1 << 20
        assert machine.allocator.dram_used(0) == 0

    def test_use_after_free_detected(self):
        machine = SimMachine()
        with machine.context(PLAIN) as ctx:
            region = ctx.allocate("buf", 1024)
        with pytest.raises(AccessViolationError):
            _ = region.locality


class TestCrossFigureConsistency:
    """The paper's narrative ties figures together; so does the model."""

    def test_fig3_and_fig8_agree_on_naive_rho(self, small_join_tables):
        # The "RHO / SGX" bar of Fig. 3 and the "SGX naive" bar of Fig. 8
        # are the same configuration; the model must price them identically.
        build, probe = small_join_tables

        def run_once():
            machine = SimMachine()
            with machine.context(SGX, threads=16) as ctx:
                return RadixJoin(CodeVariant.NAIVE).run(ctx, build, probe).cycles

        assert run_once() == run_once()

    def test_histogram_micro_predicts_rho_hist_phase(self, small_join_tables):
        # Fig. 7's in-enclave histogram slowdown must show up as the hist
        # phase slowdown inside the full RHO join (Fig. 6).
        build, probe = small_join_tables
        results = {}
        for setting in (PLAIN, SGX):
            machine = SimMachine()
            with machine.context(setting, threads=1) as ctx:
                results[setting.label] = RadixJoin().run(ctx, build, probe)
        hist_slowdown = (
            results["SGX (Data in Enclave)"].phase_cycles["hist1"]
            / results["Plain CPU"].phase_cycles["hist1"]
        )
        assert hist_slowdown == pytest.approx(3.3, rel=0.1)

    def test_scan_and_join_share_bandwidth_model(self, rng):
        # A 16-thread scan and the streaming passes of a join both bottom
        # out at the same socket bandwidth limit.
        machine = SimMachine()
        column = Column("v", rng.integers(0, 256, 100_000, dtype=np.uint8))
        with machine.context(PLAIN, threads=16) as ctx:
            scan = BitvectorScan().run(
                ctx, column, RangePredicate(0, 128),
                sim_scale=4e9 / column.nbytes,
            )
        throughput = scan.read_throughput_bytes_per_s(machine.frequency_hz)
        assert throughput <= machine.spec.socket_stream_bandwidth_bytes() * 1.001


class TestMixedOperatorsOneEnclave:
    def test_scan_then_join_in_one_context(self, small_join_tables, rng):
        """A mini query session: scan a column, then join, in one enclave."""
        build, probe = small_join_tables
        machine = SimMachine()
        with machine.context(SGX, threads=8) as ctx:
            column = Column("v", rng.integers(0, 256, 50_000, dtype=np.uint8))
            scan = BitvectorScan().run(ctx, column, RangePredicate(10, 200))
            join = ParallelHashJoin().run(ctx, build, probe)
        assert scan.matches > 0
        assert join.matches == probe.num_rows
        assert machine.allocator.epc_used(0) == 0  # all released
