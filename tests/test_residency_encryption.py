"""Cache residency model and memory-encryption penalty curves."""

import pytest

from repro.hardware import paper_calibration, paper_testbed
from repro.memory.access import CodeVariant, PatternKind
from repro.memory.encryption import MemoryEncryptionEngine
from repro.memory.residency import CacheResidency
from repro.units import MiB


@pytest.fixture
def residency():
    return CacheResidency(paper_testbed())


@pytest.fixture
def mee():
    return MemoryEncryptionEngine(
        paper_calibration(), paper_testbed().l3.capacity_bytes
    )


class TestCacheResidency:
    def test_fractions_sum_to_one(self, residency):
        for ws in (1e3, 1e6, 30e6, 1e9, 16e9):
            shares = residency.shares(ws, dram_latency_cycles=260)
            assert sum(s.fraction for s in shares) == pytest.approx(1.0)

    def test_tiny_working_set_is_all_l1(self, residency):
        shares = residency.shares(16 * 1024, 260)
        assert shares[0].name == "L1d"
        assert shares[0].fraction == pytest.approx(1.0)

    def test_l3_resident_has_no_dram(self, residency):
        assert residency.dram_fraction(20 * MiB) == 0.0
        assert residency.fits_in_cache(20 * MiB)

    def test_dram_fraction_grows_with_size(self, residency):
        small = residency.dram_fraction(100e6)
        large = residency.dram_fraction(10e9)
        assert 0 < small < large < 1

    def test_avg_latency_monotone_in_size(self, residency):
        latencies = [
            residency.avg_random_latency(ws, 260)
            for ws in (1e4, 1e6, 25e6, 250e6, 8e9)
        ]
        assert latencies == sorted(latencies)

    def test_negative_working_set_rejected(self, residency):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            residency.shares(-1, 260)


class TestSequentialFactors:
    def test_scalar_read_worst(self, mee):
        scalar = mee.sequential_factor(PatternKind.SEQ_READ, CodeVariant.NAIVE)
        simd = mee.sequential_factor(PatternKind.SEQ_READ, CodeVariant.SIMD)
        write = mee.sequential_factor(PatternKind.SEQ_WRITE, CodeVariant.SIMD)
        # Fig. 15 ordering: 64-bit reads (5.5 %) > 512-bit reads (3 %) >
        # writes (2 %).
        assert scalar == pytest.approx(1.055)
        assert simd == pytest.approx(1.03)
        assert write == pytest.approx(1.02)
        assert scalar > simd > write > 1.0


class TestRandomFactors:
    def test_in_cache_no_penalty(self, mee):
        assert mee.random_read_factor(1e6) == pytest.approx(1.0)
        assert mee.random_write_factor(1e6) == pytest.approx(1.0)

    def test_read_factor_saturates_at_paper_value(self, mee):
        assert mee.random_read_factor(16e9) == pytest.approx(1 / 0.53, rel=0.01)
        assert mee.random_read_factor(64e9) == pytest.approx(1 / 0.53, rel=0.01)

    def test_write_factor_anchors(self, mee):
        # 2x at 256 MB, ~3x at 8 GB (Fig. 5) — the boundary-relief dip has
        # faded by 256 MB, so the anchors hold within a few percent.
        assert mee.random_write_factor(256e6) == pytest.approx(2.0, rel=0.05)
        assert mee.random_write_factor(8e9) == pytest.approx(2.95, rel=0.05)

    def test_write_factor_monotone(self, mee):
        sizes = (30e6, 100e6, 256e6, 1e9, 8e9)
        factors = [mee.random_write_factor(s) for s in sizes]
        assert factors == sorted(factors)

    def test_writes_worse_than_reads(self, mee):
        for ws in (100e6, 1e9, 8e9):
            assert mee.random_write_factor(ws) > mee.random_read_factor(ws)

    def test_unrolled_writes_cheaper_than_naive(self, mee):
        naive = mee.random_write_factor(256e6, CodeVariant.NAIVE)
        unrolled = mee.random_write_factor(256e6, CodeVariant.UNROLLED)
        assert 1.0 < unrolled < naive

    def test_boundary_relief_dips_at_l3(self, mee):
        # Footnote 2: relative performance improves near the cache size.
        l3 = paper_testbed().l3.capacity_bytes
        at_boundary = mee.random_read_factor(l3 * 1.01)
        past_boundary = mee.random_read_factor(l3 * 8)
        assert at_boundary < past_boundary

    def test_rejects_invalid_l3(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MemoryEncryptionEngine(paper_calibration(), 0)
