"""Column scans: predicate correctness and the Sec. 5 cost claims."""

import numpy as np
import pytest

from repro.core.scans import BitvectorScan, RangePredicate, RowIdScan
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.exec.placement import Placement
from repro.machine import SimMachine
from repro.tables.table import Column

PLAIN = ExecutionSetting.plain_cpu()
SGX_IN = ExecutionSetting.sgx_data_in_enclave()
SGX_OUT = ExecutionSetting.sgx_data_outside_enclave()


@pytest.fixture
def column(rng):
    return Column("v", rng.integers(0, 256, 100_000, dtype=np.uint8))


class TestRangePredicate:
    def test_inclusive_bounds(self):
        predicate = RangePredicate(10, 20)
        values = np.array([9, 10, 15, 20, 21])
        assert list(predicate.evaluate(values)) == [False, True, True, True, False]

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RangePredicate(5, 4)

    def test_selectivity_exact(self):
        values = np.arange(100)
        predicate = RangePredicate(0, 49)
        assert predicate.selectivity(values) == pytest.approx(0.5)

    @pytest.mark.parametrize("target", [0.0, 0.1, 0.5, 0.9, 1.0])
    def test_with_selectivity_hits_target(self, rng, target):
        values = rng.integers(0, 10_000, 50_000)
        predicate = RangePredicate.with_selectivity(values, target)
        assert predicate.selectivity(values) == pytest.approx(target, abs=0.02)

    def test_with_selectivity_out_of_range_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            RangePredicate.with_selectivity(np.arange(10), 1.5)


class TestBitvectorScan:
    def test_bitvector_matches_numpy(self, machine, column):
        predicate = RangePredicate(64, 191)
        with machine.context(PLAIN, threads=4) as ctx:
            result = BitvectorScan().run(ctx, column, predicate)
        expected_mask = predicate.evaluate(column.data)
        assert result.matches == int(expected_mask.sum())
        assert np.array_equal(result.bitvector, np.packbits(expected_mask))

    def test_repeats_multiply_cost_not_matches(self, machine, column):
        predicate = RangePredicate(0, 127)
        with machine.context(PLAIN, threads=1) as ctx:
            once = BitvectorScan().run(ctx, column, predicate, repeats=1)
        fresh = SimMachine()
        with fresh.context(PLAIN, threads=1) as ctx:
            many = BitvectorScan().run(ctx, column, predicate, repeats=10)
        assert many.cycles == pytest.approx(10 * once.cycles, rel=0.01)
        assert many.matches == once.matches

    def test_invalid_repeats_rejected(self, machine, column):
        with machine.context(PLAIN) as ctx:
            with pytest.raises(ConfigurationError):
                BitvectorScan().run(ctx, column, RangePredicate(0, 1), repeats=0)

    def test_out_of_cache_sgx_overhead_small(self, column):
        predicate = RangePredicate(64, 191)
        results = {}
        for setting in (PLAIN, SGX_IN, SGX_OUT):
            machine = SimMachine()
            with machine.context(setting, threads=1) as ctx:
                results[setting.label] = BitvectorScan().run(
                    ctx, column, predicate, sim_scale=4e9 / column.nbytes
                )
        plain = results["Plain CPU"].cycles
        sgx_in = results["SGX (Data in Enclave)"].cycles
        sgx_out = results["SGX (Data outside Enclave)"].cycles
        assert sgx_in / plain == pytest.approx(1.03, abs=0.01)  # Fig. 12
        assert sgx_out == pytest.approx(plain, rel=0.001)

    def test_in_cache_no_overhead(self, column):
        predicate = RangePredicate(64, 191)
        cycles = {}
        for setting in (PLAIN, SGX_IN):
            machine = SimMachine()
            with machine.context(setting, threads=1) as ctx:
                cycles[setting.label] = BitvectorScan().run(
                    ctx, column, predicate, sim_scale=1e6 / column.nbytes
                ).cycles
        assert cycles["Plain CPU"] == cycles["SGX (Data in Enclave)"]

    def test_thread_scaling_saturates_bandwidth(self, column):
        predicate = RangePredicate(64, 191)

        def agg_throughput(threads):
            machine = SimMachine()
            with machine.context(PLAIN, threads=threads) as ctx:
                result = BitvectorScan().run(
                    ctx, column, predicate, sim_scale=4e9 / column.nbytes
                )
            return result.read_throughput_bytes_per_s(machine.frequency_hz)

        one, eight, sixteen = (agg_throughput(t) for t in (1, 8, 16))
        assert eight > 6 * one
        limit = SimMachine().spec.socket_stream_bandwidth_bytes()
        assert sixteen <= limit * 1.001
        # Saturation, not regression (tiny barrier costs aside).
        assert sixteen >= eight * 0.999

    def test_cross_numa_scan_slower(self, column):
        predicate = RangePredicate(64, 191)

        def throughput(cross):
            machine = SimMachine()
            node = 1 if cross else 0
            placement = Placement.on_node(machine.topology, node, 16)
            with machine.context(PLAIN, data_node=0, placement=placement) as ctx:
                result = BitvectorScan().run(
                    ctx, column, predicate, sim_scale=4e9 / column.nbytes
                )
            return result.read_throughput_bytes_per_s(machine.frequency_hz)

        local, cross = throughput(False), throughput(True)
        assert cross < local
        # Cross-NUMA is bounded by the 67.2 GB/s UPI aggregate.
        assert cross <= 67.2e9 * 1.001


class TestRowIdScan:
    def test_row_ids_match_numpy(self, machine, column):
        predicate = RangePredicate(0, 99)
        with machine.context(PLAIN, threads=2) as ctx:
            result = RowIdScan().run(ctx, column, predicate)
        expected = np.flatnonzero(predicate.evaluate(column.data))
        assert np.array_equal(result.row_ids, expected)
        assert result.extra["selectivity"] == pytest.approx(100 / 256, abs=0.01)

    def test_write_rate_hurts_both_settings_equally(self, column):
        # Fig. 14: higher selectivity lowers throughput identically.
        def throughput(setting, selectivity):
            machine = SimMachine()
            predicate = RangePredicate.with_selectivity(column.data, selectivity)
            with machine.context(setting, threads=16) as ctx:
                result = RowIdScan().run(
                    ctx, column, predicate, sim_scale=4e9 / column.nbytes
                )
            return result.read_throughput_bytes_per_s(machine.frequency_hz)

        drop_plain = throughput(PLAIN, 1.0) / throughput(PLAIN, 0.0)
        drop_sgx = throughput(SGX_IN, 1.0) / throughput(SGX_IN, 0.0)
        assert drop_plain < 0.5  # 8x write rate costs real bandwidth
        assert drop_sgx == pytest.approx(drop_plain, abs=0.03)

    def test_zero_selectivity_writes_nothing(self, machine, column):
        predicate = RangePredicate(-2, -1)
        with machine.context(PLAIN) as ctx:
            result = RowIdScan().run(ctx, column, predicate)
        assert result.matches == 0
        assert len(result.row_ids) == 0
