"""The Markdown report bundle."""

import pytest

from repro.bench.session import build_report, write_report
from repro.errors import BenchmarkError


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report_text(self):
        # tab01 is static and fig15 is one of the fastest sweeps.
        return build_report(["tab01", "fig15"])

    def test_has_title_and_calibration(self, report_text):
        assert report_text.startswith("# SGXv2 analytical query processing")
        assert "13/13 anchors hold" in report_text

    def test_sections_per_experiment(self, report_text):
        assert "## tab01:" in report_text
        assert "## fig15:" in report_text
        assert "*Reproduces Table 1.*" in report_text

    def test_tables_render(self, report_text):
        assert "| series | x | value | unit |" in report_text
        assert "| EPC per socket |" in report_text

    def test_charts_embedded(self, report_text):
        assert "```text" in report_text

    def test_notes_quoted(self, report_text):
        assert "> " in report_text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(BenchmarkError):
            build_report(["fig99"])


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(tmp_path / "sub" / "REPORT.md", ["tab01"])
        assert path.exists()
        assert "# SGXv2" in path.read_text()

    def test_accepts_string_path_and_returns_pathlib(self, tmp_path):
        import pathlib

        path = write_report(str(tmp_path / "REPORT.md"), ["tab01"])
        assert isinstance(path, pathlib.Path)
        assert path.read_text() == build_report(["tab01"])

    def test_section_per_requested_experiment(self, tmp_path):
        text = write_report(
            tmp_path / "R.md", ["tab01", "wl01"]
        ).read_text()
        assert "## tab01:" in text
        assert "## wl01:" in text
        assert "| native p99 |" in text

    def test_unknown_experiment_writes_nothing(self, tmp_path):
        target = tmp_path / "R.md"
        with pytest.raises(BenchmarkError):
            write_report(target, ["fig99"])
        assert not target.exists()
