"""Tests for repro.planner: stats, candidates, costing, choice, bandit."""

import pytest

from repro.bench.experiments.common import SETTING_PLAIN, SETTING_SGX_IN
from repro.cache import experiment_key
from repro.enclave.sync import LockKind
from repro.errors import ConfigurationError
from repro.hardware.platforms import sgxv1_calibration, sgxv1_testbed
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.planner import (
    ALL_MODES,
    ArmCost,
    CostSelector,
    DEFAULT_MODE,
    EpsilonGreedySelector,
    OracleSelector,
    PLANNER_MODES,
    PlanCandidate,
    PlanHints,
    Planner,
    WorkStats,
    build_join,
    current_planner_mode,
    enumerate_candidates,
    static_candidate,
    use_planner_mode,
    validate_mode,
)
from repro.planner.adaptive import _effective_service
from repro.planner.choose import overflow_fraction
from repro.tables import generate_join_relation_pair
from repro.workload.jobs import JobKind, JobTemplate

MB = 1_000_000


def join_template(name="j", build_mb=8.0, probe_mb=32.0, threads=4, hints=None):
    return JobTemplate(
        name=name,
        kind=JobKind.JOIN,
        threads=threads,
        build_bytes=build_mb * MB,
        probe_bytes=probe_mb * MB,
        plan_hints=hints,
    )


def scan_template(threads=4):
    return JobTemplate(
        name="s", kind=JobKind.SCAN, threads=threads, scan_bytes=64 * MB
    )


class TestWorkStats:
    def test_join_cardinalities_follow_fk_semantics(self):
        stats = WorkStats.of(join_template(build_mb=8, probe_mb=32))
        assert stats.kind == "join"
        assert stats.build_rows == pytest.approx(1e6)
        assert stats.probe_rows == pytest.approx(4e6)
        # FK probe: every probe row matches exactly once.
        assert stats.estimated_matches == stats.probe_rows
        assert stats.input_rows == stats.build_rows + stats.probe_rows

    def test_scan_selectivity_estimate(self):
        stats = WorkStats.of(scan_template())
        assert stats.scan_rows == pytest.approx(16e6)
        assert stats.estimated_selected_rows == pytest.approx(1.6e6)
        assert "range predicate" in stats.describe()

    def test_tpch_stats_carry_query_and_sf(self):
        template = JobTemplate(
            name="q", kind=JobKind.TPCH, threads=2, query="Q12", scale_factor=1.0
        )
        stats = WorkStats.of(template)
        assert stats.query == "Q12"
        assert "Q12" in stats.describe()


class TestCandidates:
    def test_default_join_space_is_the_six_paper_arms(self):
        template = join_template()
        labels = [c.label(template.threads) for c in enumerate_candidates(template)]
        assert labels == ["PHT", "RHO", "RHO-unrolled", "MWAY", "INL", "CrkJoin"]
        assert len(set(labels)) == len(labels)

    def test_scan_space_is_the_single_simd_kernel(self):
        (candidate,) = enumerate_candidates(scan_template())
        assert candidate.algorithm == "SCAN"
        assert candidate.variant is CodeVariant.SIMD

    def test_hints_filter_the_space(self):
        hints = PlanHints(algorithm="RHO", variant=CodeVariant.UNROLLED)
        template = join_template(hints=hints)
        (candidate,) = enumerate_candidates(template)
        assert candidate.label(template.threads) == "RHO-unrolled"

    def test_hints_admitting_nothing_raise(self):
        hints = PlanHints(algorithm="PHT", variant=CodeVariant.UNROLLED)
        with pytest.raises(ConfigurationError):
            enumerate_candidates(join_template(hints=hints))

    def test_unknown_hint_algorithm_raises_at_construction(self):
        with pytest.raises(ConfigurationError):
            PlanHints(algorithm="HASHZILLA")

    def test_static_candidate_reproduces_the_hardcoded_choice(self):
        template = join_template(threads=6)
        candidate = static_candidate(template, CodeVariant.UNROLLED)
        join = build_join(candidate)
        # Exactly the historical construction: RadixJoin at the catalog's
        # variant, auto radix bits, lock-free queue.
        assert type(join).__name__ == "RadixJoin"
        assert join.variant is CodeVariant.UNROLLED
        assert join.radix_bits is None
        assert join.queue_kind is LockKind.LOCK_FREE
        assert candidate.threads == 6

    def test_thread_options_cap_at_cores(self):
        template = join_template(threads=4)
        candidates = enumerate_candidates(
            template, cores=8, thread_options=(8, 16)
        )
        assert {c.threads for c in candidates} == {4, 8}

    def test_labels_encode_non_default_dimensions(self):
        candidate = PlanCandidate(
            "RHO", CodeVariant.UNROLLED, threads=8, sizing="edmm", fanout=6
        )
        assert candidate.label(4) == "RHO-unrolled@8t/f6+edmm"

    def test_unknown_algorithm_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            PlanCandidate("HASHZILLA")
        with pytest.raises(ConfigurationError):
            PlanCandidate("RHO", sizing="lazy")


class TestCostingSanityGate:
    """The analytical ranking must match the measured ordering.

    The cost model prices candidates through the same operator formulas a
    real run charges (on tiny physical stand-ins), so its operator-cycle
    estimates must reproduce measured cycles — at an in-EPC size on the
    paper's SGXv2 testbed and at an EPC-overflow size on the SGXv1-style
    legacy platform, where the paper's ranking flip happens.
    """

    def measured_cycles(self, machine, template, candidate):
        build, probe = generate_join_relation_pair(
            template.build_bytes,
            template.probe_bytes,
            seed=42,
            physical_row_cap=4096,
        )
        with machine.context(SETTING_SGX_IN, threads=candidate.threads) as ctx:
            result = build_join(candidate).run(ctx, build, probe)
        return result.cycles

    @pytest.mark.parametrize(
        "make_machine, build_mb",
        [
            (SimMachine, 25),  # ~125 MB of inputs, inside the 64 GB EPC
            (
                lambda: SimMachine(sgxv1_testbed(), sgxv1_calibration()),
                64,  # working set far beyond the legacy ~93 MB EPC
            ),
        ],
        ids=["sgxv2-resident", "sgxv1-overflow"],
    )
    def test_estimates_match_measured_cycles_and_ordering(
        self, make_machine, build_mb
    ):
        template = join_template(build_mb=build_mb, probe_mb=4 * build_mb)
        machine = make_machine()
        planner = Planner(machine, SETTING_SGX_IN)
        estimates = {
            e.label(template.threads): e for e in planner.estimates(template)
        }
        measured = {
            c.label(template.threads): self.measured_cycles(
                make_machine(), template, c
            )
            for c in enumerate_candidates(template)
        }
        assert set(estimates) == set(measured)
        for label, cycles in measured.items():
            operator_cycles = (
                estimates[label].cycles - estimates[label].sizing_cycles
            )
            assert operator_cycles == pytest.approx(cycles, rel=1e-6), label
        # The full decision (operator + sizing cycles) picks the plan a
        # real run would have measured fastest.
        chosen = planner.decide(template).arm_label(template.threads)
        assert chosen == min(measured, key=lambda l: (measured[l], l))


class TestPlannerChoice:
    def test_decide_picks_min_estimated_cycles_without_pressure(self):
        planner = Planner(SimMachine(), SETTING_SGX_IN)
        decision = planner.decide(join_template(build_mb=50, probe_mb=200))
        assert decision.arm_label() == "RHO-unrolled"
        assert decision.chosen_estimate.cycles == min(
            r.estimate.cycles for r in decision.ranked
        )
        assert decision.ranked[0].rejection == ""
        assert all("slower" in r.rejection for r in decision.ranked[1:])

    def test_headroom_flips_the_choice_toward_small_footprints(self):
        # Probe-heavy shape: PHT needs ~55% of RHO's working set at ~1.13x
        # its cycles, so shrinking headroom must flip the decision.
        template = join_template(build_mb=10, probe_mb=400, threads=8)
        planner = Planner(SimMachine(), SETTING_SGX_IN)
        roomy = planner.decide(template, headroom_bytes=2_000 * MB)
        tight = planner.decide(template, headroom_bytes=500 * MB)
        assert roomy.arm_label() == "RHO-unrolled"
        assert tight.arm_label() == "PHT"
        squeezed = [
            r for r in tight.ranked if "over EPC headroom" in r.rejection
        ]
        assert squeezed  # the overflowing arms say why they lost

    def test_native_setting_ignores_epc_terms(self):
        planner = Planner(
            SimMachine(), SETTING_PLAIN, epc_budget_bytes=500 * MB
        )
        decision = planner.decide(join_template(build_mb=10, probe_mb=400))
        assert decision.headroom_bytes is None

    def test_overflow_fraction_clamps(self):
        assert overflow_fraction(100, 200) == 0.0
        assert overflow_fraction(100, 50) == pytest.approx(0.5)
        assert overflow_fraction(100, -50) == 1.0
        assert overflow_fraction(0, 0) == 0.0

    def test_explain_lists_every_candidate_with_status(self):
        planner = Planner(
            SimMachine(), SETTING_SGX_IN, epc_budget_bytes=64_000 * MB
        )
        text = planner.explain(join_template(build_mb=50, probe_mb=200))
        assert "job: j (join, 4 threads)" in text
        assert "chosen: RHO-unrolled" in text
        assert "epc headroom" in text
        for label in ("PHT", "RHO", "MWAY", "INL", "CrkJoin"):
            assert label in text
        assert "[chosen]" in text
        assert "slower on estimated cycles" in text

    def test_top_k_is_ranked_and_capped(self):
        planner = Planner(SimMachine(), SETTING_SGX_IN)
        template = join_template()
        top = planner.top_k(template, 3)
        assert len(top) == 3
        cycles = {e.candidate: e.cycles for e in planner.estimates(template)}
        picked = [cycles[c] for c in top]
        assert picked == sorted(picked)
        assert picked[-1] <= min(
            v for c, v in cycles.items() if c not in top
        )

    def test_estimates_are_memoized_per_template(self):
        planner = Planner(SimMachine(), SETTING_SGX_IN)
        template = join_template()
        assert planner.estimates(template) is planner.estimates(template)

    def test_static_decision_wraps_the_historical_choice(self):
        planner = Planner(SimMachine(), SETTING_SGX_IN)
        decision = planner.static_decision(
            join_template(), CodeVariant.UNROLLED
        )
        assert decision.mode == "static"
        assert decision.arm_label() == "RHO-unrolled"
        assert len(decision.ranked) == 1


def make_arms(*specs):
    return tuple(
        ArmCost(
            candidate=PlanCandidate(alg, threads=1),
            label=label,
            service_s=service,
            working_set_bytes=ws,
        )
        for alg, label, service, ws in specs
    )


JOIN_ARMS = make_arms(
    ("RHO", "RHO-unrolled", 0.10, 800 * MB),
    ("PHT", "PHT", 0.12, 440 * MB),
    ("CrkJoin", "CrkJoin", 1.00, 400 * MB),
)


class TestSelectors:
    def arms_by_template(self):
        return {"join": JOIN_ARMS}

    def test_empty_or_duplicate_arms_rejected(self):
        with pytest.raises(ConfigurationError):
            CostSelector({"join": ()})
        dup = JOIN_ARMS[:1] + JOIN_ARMS[:1]
        with pytest.raises(ConfigurationError):
            CostSelector({"join": dup})

    def test_unknown_template_rejected(self):
        selector = CostSelector(self.arms_by_template())
        with pytest.raises(ConfigurationError):
            selector.arms("scan")

    def test_cost_selector_sticks_to_the_analytical_best(self):
        selector = CostSelector(self.arms_by_template())
        for query_id in range(10):
            arm = selector.select("join", query_id, 0, headroom_bytes=0.0)
            assert arm.label == "RHO-unrolled"

    def test_oracle_selector_follows_momentary_headroom(self):
        selector = OracleSelector(self.arms_by_template())
        roomy = selector.select("join", 0, 0, headroom_bytes=1_000 * MB)
        tight = selector.select("join", 1, 0, headroom_bytes=500 * MB)
        assert roomy.label == "RHO-unrolled"
        assert tight.label == "PHT"

    def test_effective_service_prices_overflow_like_the_scheduler(self):
        from repro.workload.scheduler import EDMM_OVERFLOW_SLOWDOWN

        arm = JOIN_ARMS[0]
        assert _effective_service(arm, None) == arm.service_s
        assert _effective_service(arm, 400 * MB) == pytest.approx(
            arm.service_s * (1 + EDMM_OVERFLOW_SLOWDOWN * 0.5)
        )

    def test_bandit_draws_are_deterministic_and_seed_sensitive(self):
        a = EpsilonGreedySelector(self.arms_by_template(), seed=7)
        b = EpsilonGreedySelector(self.arms_by_template(), seed=7)
        c = EpsilonGreedySelector(self.arms_by_template(), seed=8)
        picks_a = [a.select("join", q, 0).label for q in range(200)]
        picks_b = [b.select("join", q, 0).label for q in range(200)]
        picks_c = [c.select("join", q, 0).label for q in range(200)]
        assert picks_a == picks_b
        assert picks_a != picks_c

    def test_bandit_exploits_observed_means(self):
        selector = EpsilonGreedySelector(
            self.arms_by_template(), seed=7, epsilon=0.0
        )
        # RHO observed terrible, PHT observed great: exploit must flip.
        for _ in range(4):
            selector.observe("join", "RHO-unrolled", 2.0)
            selector.observe("join", "PHT", 0.1)
        assert selector.select("join", 0, 0).label == "PHT"

    def test_unobserved_priors_are_headroom_adjusted(self):
        # Feedback lags dispatch by the queue, so a squeezed run must not
        # keep nominating big-footprint arms on their unsqueezed priors.
        selector = EpsilonGreedySelector(
            self.arms_by_template(), seed=7, epsilon=0.0
        )
        selector.observe("join", "PHT", 0.15)
        tight = selector.select("join", 0, 0, headroom_bytes=100 * MB)
        assert tight.label == "PHT"
        roomy = selector.select("join", 1, 0, headroom_bytes=2_000 * MB)
        assert roomy.label == "RHO-unrolled"

    def test_exploration_rate_decays_with_observations(self):
        selector = EpsilonGreedySelector(self.arms_by_template(), seed=7)
        start = selector.exploration_rate("join")
        assert start == selector.epsilon
        for _ in range(2 * selector.decay):
            selector.observe("join", "PHT", 0.1)
        assert selector.exploration_rate("join") == pytest.approx(start / 3)

    def test_window_bounds_the_memory(self):
        selector = EpsilonGreedySelector(
            self.arms_by_template(), seed=7, window=4
        )
        for _ in range(100):
            selector.observe("join", "PHT", 5.0)
        for _ in range(4):
            selector.observe("join", "PHT", 0.1)
        mean, count = selector.snapshot("join")["PHT"]
        assert count == 4
        assert mean == pytest.approx(0.1)

    def test_observations_for_unknown_labels_are_ignored(self):
        selector = EpsilonGreedySelector(self.arms_by_template(), seed=7)
        selector.observe("join", "NOPE", 1.0)
        selector.observe("other", "PHT", 1.0)
        assert selector.snapshot("join")["PHT"][1] == 0

    def test_selector_validation(self):
        with pytest.raises(ConfigurationError):
            EpsilonGreedySelector(self.arms_by_template(), seed=7, epsilon=1.5)
        with pytest.raises(ConfigurationError):
            EpsilonGreedySelector(self.arms_by_template(), seed=7, decay=0)
        with pytest.raises(ConfigurationError):
            EpsilonGreedySelector(self.arms_by_template(), seed=7, window=0)


class TestModes:
    def test_mode_catalog(self):
        assert DEFAULT_MODE == "static"
        assert PLANNER_MODES == ("static", "cost", "adaptive")
        assert ALL_MODES == ("static", "cost", "adaptive", "oracle")

    def test_validate_mode(self):
        assert validate_mode("cost") == "cost"
        assert validate_mode("oracle") == "oracle"
        with pytest.raises(ConfigurationError):
            validate_mode("oracle", allow_oracle=False)
        with pytest.raises(ConfigurationError):
            validate_mode("greedy")

    def test_use_planner_mode_scopes_and_restores(self):
        assert current_planner_mode() == "static"
        with use_planner_mode("cost"):
            assert current_planner_mode() == "cost"
            with use_planner_mode(None):  # no-op nesting
                assert current_planner_mode() == "cost"
        assert current_planner_mode() == "static"


class TestCacheKeys:
    BASE = dict(quick=True, base_seed=42)

    def test_static_and_none_share_a_key(self):
        # Pre-planner cache entries stay valid for static sessions.
        assert experiment_key("wl01", **self.BASE) == experiment_key(
            "wl01", planner="static", **self.BASE
        )

    def test_non_static_modes_key_separately(self):
        base = experiment_key("wl01", **self.BASE)
        cost = experiment_key("wl01", planner="cost", **self.BASE)
        adaptive = experiment_key("wl01", planner="adaptive", **self.BASE)
        assert len({base, cost, adaptive}) == 3
