"""Sealed storage: config, pricing, spill operators, serving integration.

The load-bearing property here is **bag identity**: the spill-aware
operator variants must produce exactly the results of their in-memory
counterparts for any (template, budget) pair — spilling changes where
bytes live and what the run costs, never what it computes.  The rest
covers the ``--storage`` plumbing: the ambient config channel, the
priced seal/unseal path, the scheduler's spill counters, the storage
fault hazards, and the cache keys' storage component.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.joins import ParallelHashJoin
from repro.core.ops.aggregate import AggFunc, HashAggregate
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.hardware.calibration import CostParameters
from repro.memory.access import CodeVariant
from repro.storage import (
    ExternalGroupAggregate,
    GraceHashJoin,
    SealedStore,
    SpillModel,
    StorageConfig,
    current_storage,
    parse_size,
    use_storage,
)
from repro.storage.spill import partition_count
from repro.tables import generate_join_relation_pair
from repro.trace import Tracer, storage_breakdown, use_tracer
from repro.units import GiB, MB, MiB
from repro.workload import (
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)

SGX = ExecutionSetting.sgx_data_in_enclave()


class TestStorageConfig:
    def test_parse_sizes(self):
        assert parse_size("1048576") == 1048576
        assert parse_size("256m") == 256 * 10**6
        assert parse_size("2G") == 2 * 10**9
        assert parse_size("1gib") == GiB
        assert parse_size("4mi") == 4 * MiB

    @pytest.mark.parametrize("bad", ["", "abc", "-1", "1.5g", "2 g", "g"])
    def test_bad_sizes_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_size(bad)

    def test_parse_budget_and_block(self):
        config = StorageConfig.parse("256m")
        assert config.budget_bytes == 256 * 10**6
        assert config.block_bytes == MiB  # the default
        both = StorageConfig.parse("256m:4mi")
        assert both.block_bytes == 4 * MiB

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StorageConfig(budget_bytes=100)  # below one page
        with pytest.raises(ConfigurationError):
            StorageConfig(budget_bytes=MiB, block_bytes=100)
        with pytest.raises(ConfigurationError):
            StorageConfig(budget_bytes=MiB, block_bytes=2 * MiB)

    def test_canonical_round_trips(self):
        for text in ("1048576", "268435456:4194304"):
            assert StorageConfig.parse(text).canonical() == text

    def test_ambient_channel_nests_and_restores(self):
        assert current_storage() is None
        outer = StorageConfig.parse("256m")
        inner = StorageConfig.parse("64m")
        with use_storage(outer):
            assert current_storage() is outer
            with use_storage(inner):
                assert current_storage() is inner
            assert current_storage() is outer
        assert current_storage() is None

    def test_ambient_none_is_a_no_op_scope(self):
        with use_storage(None):
            assert current_storage() is None


@pytest.fixture
def store(machine):
    return SealedStore(machine.params)


class TestSealedStore:
    def test_blocks_for_is_a_ceiling(self, store):
        assert store.blocks_for(0) == 0
        assert store.blocks_for(1) == 1
        assert store.blocks_for(MiB) == 1
        assert store.blocks_for(MiB + 1) == 2

    def test_pricing_positive_and_monotone(self, store):
        assert store.seal_cycles(MB) > 0
        assert store.unseal_cycles(MB) > 0
        assert store.seal_cycles(10 * MB) > store.seal_cycles(MB)
        assert store.roundtrip_cycles(MB) == pytest.approx(
            store.seal_cycles(MB) + store.unseal_cycles(MB)
        )

    def test_small_blocks_pay_more_transitions(self, machine):
        coarse = SealedStore(machine.params, block_bytes=4 * MiB)
        fine = SealedStore(machine.params, block_bytes=64 * 1024)
        assert fine.seal_cycles(64 * MB) > coarse.seal_cycles(64 * MB)

    def test_charge_counts_whole_bytes_prices_thread_share(self, machine):
        from repro.memory.access import AccessProfile

        solo = SealedStore(machine.params)
        wide = SealedStore(machine.params)
        solo_cycles = solo.charge_seal(AccessProfile(), 64 * MB, threads=1)
        wide_cycles = wide.charge_seal(AccessProfile(), 64 * MB, threads=8)
        # An 8-thread phase seals in parallel: per-thread cycles shrink...
        assert wide_cycles < solo_cycles
        # ...but the traffic counters still record every sealed byte.
        assert wide.sealed_bytes == solo.sealed_bytes == 64 * MB
        assert wide.sealed_blocks == solo.sealed_blocks

    def test_unpriced_calibration_rejected(self, machine):
        import dataclasses

        unpriced = dataclasses.replace(
            machine.params,
            seal_cycles_per_byte=0.0,
            unseal_cycles_per_byte=0.0,
            storage_io_cycles_per_byte=0.0,
        )
        with pytest.raises(ConfigurationError):
            SealedStore(unpriced)

    def test_sgxv1_seals_slower_than_sgxv2(self, machine):
        from repro.hardware.platforms import sgxv1_calibration

        v1 = SealedStore(sgxv1_calibration())
        v2 = SealedStore(machine.params)
        assert v1.seal_cycles(MB) > v2.seal_cycles(MB)


class TestSpillModel:
    def test_frequency_validated(self, store):
        with pytest.raises(ConfigurationError):
            SpillModel(store, 0.0)

    def test_charge_returns_seconds_and_counts(self, store, machine):
        model = SpillModel(store, machine.spec.base_frequency_hz)
        seal_s, unseal_s = model.charge(64 * MB)
        assert seal_s > 0 and unseal_s > 0
        assert seal_s == pytest.approx(
            store.seal_cycles(64 * MB) / machine.spec.base_frequency_hz
        )
        assert store.sealed_bytes == store.unsealed_bytes == 64 * MB
        assert store.sealed_blocks == store.blocks_for(64 * MB)


class TestPartitionCount:
    def test_in_memory_fast_path(self):
        assert partition_count(1 * MB, 1_000 * MB) == 1

    def test_fan_out_grows_with_pressure(self):
        narrow = partition_count(400 * MB, 100 * MB)
        tight = partition_count(400 * MB, 25 * MB)
        assert narrow > 1
        assert tight > narrow
        # Power-of-two fan-out.
        assert narrow & (narrow - 1) == 0

    def test_budget_validated(self):
        with pytest.raises(ConfigurationError):
            partition_count(1 * MB, 0.0)


#: (logical build MB, logical probe MB) shapes for the bag-identity sweep.
SHAPES = ((100, 400), (30, 60))

#: Spill budgets in MB: from "forces deep partitioning" to "fits, the
#: spill variant degenerates to the in-memory path".
BUDGETS_MB = (16, 64, 10_000)


class TestBagIdentity:
    """Property sweep: spill variants == in-memory variants, any budget."""

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
    @pytest.mark.parametrize("budget_mb", BUDGETS_MB)
    def test_grace_join_matches_pht(self, machine, shape, budget_mb):
        build, probe = generate_join_relation_pair(
            shape[0] * 1e6, shape[1] * 1e6, seed=11, physical_row_cap=30_000
        )
        with machine.context(SGX, threads=4) as ctx:
            reference = ParallelHashJoin(CodeVariant.NAIVE).run(
                ctx, build, probe
            )
        store = SealedStore(machine.params)
        join = GraceHashJoin(
            CodeVariant.NAIVE, store=store, budget_bytes=budget_mb * 1e6
        )
        with machine.context(SGX, threads=4) as ctx:
            spilled = join.run(ctx, build, probe)
        assert spilled.matches == reference.matches
        assert np.array_equal(spilled.match_index, reference.match_index)
        parts = partition_count(float(build.logical_bytes), budget_mb * 1e6)
        if parts > 1:
            assert store.sealed_bytes > 0  # the spill really happened
        else:
            assert store.sealed_bytes == 0  # degenerated to in-memory

    @pytest.mark.parametrize("budget_mb", BUDGETS_MB)
    def test_external_aggregate_matches_hash_aggregate(
        self, machine, rng, budget_mb
    ):
        keys = rng.integers(0, 500, 20_000)
        values = rng.integers(0, 1000, 20_000).astype(np.float64)
        functions = (AggFunc.COUNT, AggFunc.SUM, AggFunc.MIN, AggFunc.MAX)
        sim_scale = 4000.0  # logical ~80M rows: larger than small budgets
        with machine.context(SGX, threads=4) as ctx:
            reference = HashAggregate(CodeVariant.NAIVE).run(
                ctx, keys, values, functions, sim_scale=sim_scale
            )
        store = SealedStore(machine.params)
        agg = ExternalGroupAggregate(
            CodeVariant.NAIVE, store=store, budget_bytes=budget_mb * 1e6
        )
        with machine.context(SGX, threads=4) as ctx:
            external = agg.run(
                ctx, keys, values, functions, sim_scale=sim_scale
            )
        ref_order = np.argsort(reference.group_keys, kind="stable")
        assert np.array_equal(
            external.group_keys, reference.group_keys[ref_order]
        )
        for name in reference.aggregates:
            assert np.allclose(
                external.aggregates[name],
                reference.aggregates[name][ref_order],
            )

    def test_forced_spill_seals_the_whole_input_once(self, machine):
        build, probe = generate_join_relation_pair(
            100e6, 400e6, seed=11, physical_row_cap=30_000
        )
        store = SealedStore(machine.params)
        tight = GraceHashJoin(
            CodeVariant.NAIVE, store=store, budget_bytes=32e6
        )
        with machine.context(SGX, threads=4) as ctx:
            tight.run(ctx, build, probe)
        # Grace partitioning is one sealed round-trip of both inputs:
        # every byte out is priced, and every byte comes back exactly once.
        volume = float(build.logical_bytes + probe.logical_bytes)
        assert store.sealed_bytes == pytest.approx(volume)
        assert store.unsealed_bytes == pytest.approx(volume)
        assert store.sealed_blocks >= store.blocks_for(volume) - 1


class TestServingSpill:
    """The scheduler's admission-time spill path under a --storage budget."""

    def engine(self):
        return ServingEngine(JobCatalog(quick=True))

    def config(self, **kwargs):
        mix = QueryMix.of({"join-medium": 1.0})
        return WorkloadConfig(
            setting=SGX,
            open_streams=(OpenLoopStream("t", qps=8.0, mix=mix, seed=9),),
            duration_s=2.0,
            cores=8,
            **kwargs,
        )

    def test_no_storage_means_no_spill_counters(self):
        metrics = self.engine().run(self.config())
        assert metrics.counters.spills == 0
        assert metrics.counters.spilled_bytes == 0.0
        # The trace-stable dict is not widened by the storage fields.
        assert "spills" not in metrics.counters.as_dict()

    def test_budget_forces_spills_and_counts_them(self):
        metrics = self.engine().run(self.config(storage="64m"))
        c = metrics.counters
        assert c.spills > 0
        assert c.spilled_bytes > 0
        assert c.storage_dict()["spills"] == c.spills
        # Spilled queries still complete: the spill path fails nothing.
        assert metrics.availability == 1.0

    def test_spill_run_is_deterministic(self):
        config = self.config(storage="64m")
        a, b = self.engine().run(config), self.engine().run(config)
        assert a.records == b.records
        assert a.counters.storage_dict() == b.counters.storage_dict()

    def test_spill_slower_than_unconstrained_faster_than_thrash(self):
        engine = self.engine()
        free = engine.run(self.config())
        spill = engine.run(self.config(storage="64m"))
        thrash = engine.run(self.config(epc_budget_bytes=64e6))
        assert free.latency_percentile_s(99) < spill.latency_percentile_s(99)
        assert spill.latency_percentile_s(99) < thrash.latency_percentile_s(99)

    def test_ambient_storage_config_applies(self):
        engine = self.engine()
        with use_storage(StorageConfig.parse("64m")):
            ambient = engine.run(self.config())
        explicit = engine.run(self.config(storage="64m"))
        assert ambient.counters.storage_dict() == \
            explicit.counters.storage_dict()

    def test_bad_storage_value_rejected(self):
        with pytest.raises(ConfigurationError):
            self.engine().run(self.config(storage=123))

    def test_spill_events_traced_and_aggregated(self):
        tracer = Tracer(label="spill-test")
        with use_tracer(tracer):
            metrics = self.engine().run(self.config(storage="64m"))
        down = storage_breakdown(tracer)
        assert down.spills == metrics.counters.spills
        assert down.spilled_bytes == pytest.approx(
            metrics.counters.spilled_bytes
        )
        assert down.seal_s > 0 and down.unseal_s > 0
        assert down.spill_s == pytest.approx(down.seal_s + down.unseal_s)

    def test_storage_stall_inflates_and_counts(self):
        plan = FaultPlan(
            name="stall-everything",
            specs=(
                FaultSpec(
                    FaultKind.STORAGE_STALL,
                    start_s=0.0,
                    end_s=1e9,
                    magnitude=5.0,
                ),
            ),
        )
        engine = self.engine()
        calm = engine.run(self.config(storage="64m"))
        stalled = engine.run(self.config(storage="64m", faults=plan))
        assert stalled.counters.storage_stalled == stalled.counters.spills
        assert stalled.latency_percentile_s(99) > \
            calm.latency_percentile_s(99)

    def test_stall_without_storage_is_inert(self):
        plan = FaultPlan(
            name="stall-everything",
            specs=(
                FaultSpec(
                    FaultKind.STORAGE_STALL,
                    start_s=0.0,
                    end_s=1e9,
                    magnitude=5.0,
                ),
            ),
        )
        engine = self.engine()
        assert engine.run(self.config(faults=plan)).records == \
            engine.run(self.config()).records

    def test_torn_blocks_abort_attempts(self):
        plan = FaultPlan(
            name="all-torn",
            specs=(FaultSpec(FaultKind.TORN_BLOCK, probability=1.0),),
        )
        metrics = self.engine().run(
            self.config(storage="64m", faults=plan)
        )
        assert metrics.counters.torn_blocks > 0
        assert metrics.availability < 1.0
        assert any(
            f.outcome == "torn_block" for f in metrics.failures
        )

    def test_stall_magnitude_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.STORAGE_STALL, magnitude=0.5)

    def test_storage_plans_in_catalog(self):
        from repro.faults import get_fault_plan

        assert get_fault_plan("storage-stall").specs[0].kind is \
            FaultKind.STORAGE_STALL
        torn = get_fault_plan("torn-block").specs[0]
        assert torn.kind is FaultKind.TORN_BLOCK
        kinds = {s.kind for s in get_fault_plan("storage-chaos").specs}
        assert kinds == {FaultKind.STORAGE_STALL, FaultKind.TORN_BLOCK}
        # The classic composite is untouched (byte-stability of old runs).
        classic = {s.kind for s in get_fault_plan("chaos").specs}
        assert FaultKind.STORAGE_STALL not in classic
        assert FaultKind.TORN_BLOCK not in classic


class TestClusterSpill:
    def test_shards_spill_locally_with_shard_attr(self):
        from repro.cluster import ClusterConfig, ClusterSpec

        mix = QueryMix.of({"join-medium": 1.0})
        config = WorkloadConfig(
            setting=SGX,
            open_streams=tuple(
                OpenLoopStream(f"t{i}", qps=2.0, mix=mix, seed=9 + i)
                for i in range(8)
            ),
            duration_s=2.0,
            storage="64m",
            cluster=ClusterConfig(spec=ClusterSpec.parse("2x2")),
        )
        tracer = Tracer(label="cluster-spill")
        with use_tracer(tracer):
            result = ServingEngine(JobCatalog(quick=True)).run_cluster(config)
        total = storage_breakdown(tracer)
        assert total.spills > 0
        shards = {
            str(r.attrs["shard"])
            for r in tracer.records
            if getattr(r, "attrs", None) and "shard" in r.attrs
        }
        per_shard = sum(
            storage_breakdown(tracer, shard=s).spills for s in shards
        )
        assert per_shard == total.spills
        assert result.metrics.counters.spills == total.spills


class TestPlannerSpill:
    def test_spill_twins_only_with_storage_and_only_pht(self):
        from repro.planner.candidates import enumerate_candidates
        from repro.workload.jobs import serving_templates

        template = serving_templates()["join-medium"]
        plain = enumerate_candidates(template)
        twinned = enumerate_candidates(template, spills=(False, True))
        assert not any(c.spill for c in plain)
        spill_arms = [c for c in twinned if c.spill]
        assert spill_arms
        assert all(c.algorithm == "PHT" for c in spill_arms)
        assert all("+spill" in c.label() for c in spill_arms)

    def test_tight_budget_picks_the_spill_twin(self):
        from repro.machine import SimMachine
        from repro.planner import Planner
        from repro.workload.jobs import serving_templates

        template = serving_templates()["join-medium"]
        machine = SimMachine()
        budget = 64e6
        storage = StorageConfig(budget_bytes=int(budget))
        planner = Planner(
            machine, SGX, epc_budget_bytes=budget, storage=storage
        )
        decision = planner.decide(template)
        assert decision.chosen.spill
        # Unconstrained, the in-memory arm wins: spilling is never free.
        roomy = Planner(machine, SGX, storage=storage)
        assert not roomy.decide(template).chosen.spill


class TestCacheKeysStorage:
    def test_experiment_key_rotates_with_storage(self):
        from repro.cache.keys import experiment_key

        base = experiment_key("wl01", quick=True, base_seed=42)
        stored = experiment_key(
            "wl01",
            quick=True,
            base_seed=42,
            storage=StorageConfig.parse("256m"),
        )
        other = experiment_key(
            "wl01",
            quick=True,
            base_seed=42,
            storage=StorageConfig.parse("512m"),
        )
        assert len({base, stored, other}) == 3

    def test_profile_key_rotates_with_storage(self):
        from repro.cache.keys import query_profile_key

        kwargs = dict(
            kind="join",
            template="join-medium",
            setting=SGX.label,
            candidate="PHT",
            pricing_seed=7,
            row_cap=100,
            sf_cap=1.0,
        )
        base = query_profile_key(**kwargs)
        stored = query_profile_key(
            **kwargs, storage=StorageConfig.parse("256m")
        )
        assert base != stored
