"""Property-based tests: hash table, B+-tree, radix partitioning, LCG."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.joins.radix import radix_partition
from repro.core.micro import Lcg, build_pointer_cycle
from repro.core.structures.btree import BPlusTree
from repro.core.structures.hashtable import ChainedHashTable, next_power_of_two

unique_keys = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1),
    min_size=1,
    max_size=300,
    unique=True,
)
any_keys = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1), min_size=0, max_size=300
)


class TestHashTableProperties:
    @given(build=unique_keys, probe=any_keys)
    @settings(max_examples=60, deadline=None)
    def test_probe_first_equals_set_membership(self, build, probe):
        build_arr = np.array(build, dtype=np.int64)
        probe_arr = np.array(probe, dtype=np.int64)
        table = ChainedHashTable(build_arr, build_arr * 2)
        index, hits = table.probe_first(probe_arr)
        expected = np.isin(probe_arr, build_arr)
        assert np.array_equal(hits, expected)
        assert (build_arr[index[hits]] == probe_arr[hits]).all()

    @given(keys=any_keys)
    @settings(max_examples=60, deadline=None)
    def test_probe_count_equals_multiplicity(self, keys):
        keys_arr = np.array(keys, dtype=np.int64)
        table = ChainedHashTable(keys_arr, keys_arr)
        distinct = np.unique(keys_arr)
        counts = table.probe_count(distinct)
        for key, count in zip(distinct, counts):
            assert count == (keys_arr == key).sum()

    @given(keys=unique_keys, load=st.floats(min_value=0.25, max_value=4.0))
    @settings(max_examples=30, deadline=None)
    def test_all_inserted_keys_findable(self, keys, load):
        keys_arr = np.array(keys, dtype=np.int64)
        table = ChainedHashTable(keys_arr, keys_arr, load_factor=load)
        _, hits = table.probe_first(keys_arr)
        assert hits.all()

    @given(value=st.integers(min_value=0, max_value=2**30))
    def test_next_power_of_two_properties(self, value):
        result = next_power_of_two(value)
        assert result >= max(value, 1)
        assert result & (result - 1) == 0
        if result > 1:
            assert result // 2 < max(value, 1)


class TestBTreeProperties:
    @given(build=unique_keys, probe=any_keys)
    @settings(max_examples=60, deadline=None)
    def test_lookup_equals_set_membership(self, build, probe):
        build_arr = np.array(build, dtype=np.int64)
        probe_arr = np.array(probe, dtype=np.int64)
        tree = BPlusTree(build_arr, build_arr * 3)
        positions, hits = tree.lookup(probe_arr)
        assert np.array_equal(hits, np.isin(probe_arr, build_arr))
        assert (tree.leaf_keys[positions[hits]] == probe_arr[hits]).all()

    @given(build=unique_keys, fanout=st.integers(min_value=2, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_height_bounds(self, build, fanout):
        tree = BPlusTree(np.array(build, dtype=np.int64), np.zeros(len(build)),
                         fanout=fanout)
        n = len(build)
        assert tree.height >= 1
        # Each extra level multiplies capacity by the fanout.
        assert fanout ** (tree.height - 1) <= max(n, 1) * fanout


class TestRadixPartitionProperties:
    @given(keys=any_keys, bits=st.integers(min_value=0, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_partition_is_permutation_grouped_by_low_bits(self, keys, bits):
        keys_arr = np.array(keys, dtype=np.int64)
        partitions = 1 << bits
        order, offsets = radix_partition(keys_arr, partitions)
        # order is a permutation of all rows.
        assert sorted(order.tolist()) == list(range(len(keys_arr)))
        # offsets are monotone and cover everything.
        assert offsets[0] == 0 and offsets[-1] == len(keys_arr)
        assert (np.diff(offsets) >= 0).all()
        # every row landed in the partition its low bits dictate.
        mask = partitions - 1
        for p in range(partitions):
            rows = order[offsets[p]:offsets[p + 1]]
            assert ((keys_arr[rows] & mask) == p).all()


class TestPointerCycleProperties:
    @given(slots=st.integers(min_value=1, max_value=500),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_single_cycle(self, slots, seed):
        chain = build_pointer_cycle(slots, np.random.default_rng(seed))
        position, seen = 0, set()
        for _ in range(slots):
            assert position not in seen
            seen.add(position)
            position = int(chain[position])
        assert position == 0
        assert len(seen) == slots


class TestLcgProperties:
    @given(seed=st.integers(min_value=0, max_value=2**64 - 1),
           split=st.integers(min_value=1, max_value=63))
    @settings(max_examples=40, deadline=None)
    def test_batch_split_invariance(self, seed, split):
        whole = Lcg(seed).batch(64)
        lcg = Lcg(seed)
        parts = np.concatenate([lcg.batch(split), lcg.batch(64 - split)])
        assert np.array_equal(whole, parts)
