"""Quickstart: join two tables inside a simulated SGXv2 enclave.

Runs the paper's canonical workload — a 100 MB build table joined against a
400 MB probe table with 16 threads — under all three execution settings and
with/without the SGXv2 unroll/reorder optimization, then prints the
throughput comparison of Figure 1.

Usage::

    python examples/quickstart.py
"""

from repro import CodeVariant, ExecutionSetting, SimMachine
from repro.core.joins import CrkJoin, RadixJoin
from repro.tables import generate_join_relation_pair
from repro.units import format_throughput_rows


def main() -> None:
    machine = SimMachine()
    build, probe = generate_join_relation_pair(
        100e6, 400e6, seed=42, physical_row_cap=200_000
    )
    print(
        f"join inputs: {build.logical_rows:,.0f} x {probe.logical_rows:,.0f} "
        "rows (logical 100 MB x 400 MB)"
    )

    configurations = [
        ("CrkJoin (SGXv1-optimized), in enclave", CrkJoin(),
         ExecutionSetting.sgx_data_in_enclave()),
        ("RHO radix join, in enclave", RadixJoin(),
         ExecutionSetting.sgx_data_in_enclave()),
        ("RHO + unroll/reorder optimization, in enclave",
         RadixJoin(CodeVariant.UNROLLED),
         ExecutionSetting.sgx_data_in_enclave()),
        ("RHO radix join, plain CPU", RadixJoin(),
         ExecutionSetting.plain_cpu()),
    ]

    print(f"\n{'configuration':<48} {'throughput':>16} {'matches':>12}")
    print("-" * 78)
    for label, join, setting in configurations:
        with machine.context(setting, threads=16) as ctx:
            result = join.run(ctx, build, probe)
        throughput = result.throughput_rows_per_s(machine.frequency_hz)
        print(
            f"{label:<48} {format_throughput_rows(throughput):>16} "
            f"{result.matches:>12,}"
        )
    print(
        "\nTakeaway (paper Fig. 1): the SGXv1-optimized join is not "
        "competitive on SGXv2; a state-of-the-art radix join plus the "
        "unroll/reorder optimization runs near native speed."
    )


if __name__ == "__main__":
    main()
