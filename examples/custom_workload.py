"""Bring your own workload: CSV in, custom plan, aggregated answer out.

Demonstrates the user-facing plumbing beyond the paper's benchmarks:
loading tables from CSV, composing a query with :class:`PlanBuilder`,
running it under all three execution settings, and finishing with a real
grouped aggregation (not just count(*)).

Usage::

    python examples/custom_workload.py
"""

import numpy as np

from repro import CodeVariant, ExecutionSetting, SimMachine
from repro.core.ops import AggFunc, HashAggregate
from repro.core.queries import PlanBuilder, QueryExecutor
from repro.tables.io import table_from_csv

# A toy "sensor readings" workload: stations and their readings.
STATIONS_CSV = """station_id,region
0,0
1,0
2,1
3,1
4,2
"""


def make_readings_csv(rows: int = 4000, seed: int = 3) -> str:
    rng = np.random.default_rng(seed)
    lines = ["# sim_scale=25000.0", "reading_id,station_id,value,hour"]
    stations = rng.integers(0, 5, rows)
    values = rng.integers(-40, 121, rows)
    hours = rng.integers(0, 24, rows)
    for i in range(rows):
        lines.append(f"{i},{stations[i]},{values[i]},{hours[i]}")
    return "\n".join(lines) + "\n"


def main() -> None:
    stations = table_from_csv(STATIONS_CSV, "stations")
    readings = table_from_csv(make_readings_csv(), "readings")
    print(
        f"loaded {stations.num_rows} stations and "
        f"{readings.logical_rows:,.0f} (logical) readings\n"
    )

    # "How many daytime readings above 30 degrees come from region-0
    # stations?" — filter, join, count, per execution setting.
    plan = (
        PlanBuilder("hot-daytime-readings")
        .filter(
            "stations", "stations_r0",
            predicate=lambda t: t["region"] == 0,
            scan=("region",), keep=("station_id",),
        )
        .filter(
            "readings", "readings_hot",
            predicate=lambda t: (t["value"] > 30)
            & (t["hour"] >= 8) & (t["hour"] <= 18),
            scan=("value", "hour"), keep=("station_id", "value"),
        )
        .join(
            build="stations_r0", probe="readings_hot",
            on=("station_id", "station_id"), output="joined",
            keep_probe=("value",),
        )
        .count()
        .build()
    )
    tables = {"stations": stations, "readings": readings}
    print(f"{'setting':<28} {'count(*)':>10} {'runtime':>12}")
    print("-" * 52)
    for setting in ExecutionSetting.all_settings():
        machine = SimMachine()
        with machine.context(setting, threads=16) as ctx:
            result = QueryExecutor(CodeVariant.UNROLLED).run(ctx, plan, tables)
        print(
            f"{setting.label:<28} {result.count:>10,} "
            f"{result.seconds(machine.frequency_hz) * 1e3:>9.2f} ms"
        )

    # Follow-up: average reading per station (a real aggregate).
    machine = SimMachine()
    with machine.context(
        ExecutionSetting.sgx_data_in_enclave(), threads=16
    ) as ctx:
        agg = HashAggregate(CodeVariant.UNROLLED).run(
            ctx,
            readings["station_id"],
            readings["value"],
            (AggFunc.COUNT, AggFunc.SUM),
            sim_scale=readings.sim_scale,
        )
    print("\nmean reading per station (computed inside the enclave):")
    means = agg.aggregates["sum"] / np.maximum(agg.aggregates["count"], 1)
    for station, mean in zip(agg.group_keys, means):
        print(f"  station {station}: {mean:6.1f}")


if __name__ == "__main__":
    main()
