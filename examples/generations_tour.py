"""A tour across SGX generations and engine design choices.

Walks the full arc of the paper plus this library's extensions:

1. SGXv1: why CrkJoin existed (EPC paging collapses standard joins);
2. SGXv2: why it is obsolete (the radix join wins by an order of magnitude);
3. compression: bit-packed scans as a free enclave win;
4. aggregation: the histogram effect on a real group-by;
5. pipelining: what the materializing scheme of Sec. 6 actually costs.

Usage::

    python examples/generations_tour.py
"""

import numpy as np

from repro import CodeVariant, ExecutionSetting, SimMachine
from repro.core.joins import CrkJoin, RadixJoin
from repro.core.ops.aggregate import AggFunc, HashAggregate
from repro.core.queries import QueryExecutor, TPCH_QUERIES
from repro.core.scans.packed_scan import PackedScan
from repro.core.scans.predicate import RangePredicate
from repro.enclave.enclave import EnclaveConfig
from repro.hardware.platforms import sgxv1_calibration, sgxv1_testbed
from repro.tables import generate_join_relation_pair, generate_tpch
from repro.tables.bitpack import BitPackedColumn
from repro.units import GiB, format_throughput_rows

SGX = ExecutionSetting.sgx_data_in_enclave()


def act1_sgxv1() -> None:
    print("=== Act 1: SGXv1 — the world CrkJoin was built for ===")
    build, probe = generate_join_relation_pair(
        50e6, 200e6, seed=4, physical_row_cap=120_000
    )
    for label, join in (("CrkJoin", CrkJoin()), ("RHO", RadixJoin())):
        machine = SimMachine(sgxv1_testbed(), sgxv1_calibration())
        config = EnclaveConfig(heap_bytes=2 * GiB, node=0)
        with machine.context(SGX, threads=4, enclave_config=config) as ctx:
            result = join.run(ctx, build, probe)
        throughput = result.throughput_rows_per_s(machine.frequency_hz)
        print(f"  {label:8s} in a 93 MB-EPC enclave: "
              f"{format_throughput_rows(throughput)}")
    print("  -> paging murders the radix join; cracking in place wins.\n")


def act2_sgxv2() -> None:
    print("=== Act 2: SGXv2 — the bottleneck is gone ===")
    build, probe = generate_join_relation_pair(
        50e6, 200e6, seed=4, physical_row_cap=120_000
    )
    for label, join in (
        ("CrkJoin", CrkJoin()),
        ("RHO optimized", RadixJoin(CodeVariant.UNROLLED)),
    ):
        machine = SimMachine()
        with machine.context(SGX, threads=16) as ctx:
            result = join.run(ctx, build, probe)
        throughput = result.throughput_rows_per_s(machine.frequency_hz)
        print(f"  {label:14s} in a 64 GB-EPC enclave: "
              f"{format_throughput_rows(throughput)}")
    print("  -> same algorithms, new hardware: the ordering inverts.\n")


def act3_compression() -> None:
    print("=== Act 3: compression — narrow codes, same tiny SGX cost ===")
    rng = np.random.default_rng(8)
    scan = PackedScan()
    for bits in (32, 8):
        column = BitPackedColumn(
            rng.integers(0, 1 << bits, 60_000, dtype=np.uint64), bits
        )
        machine = SimMachine()
        with machine.context(SGX, threads=16) as ctx:
            result = scan.run(
                ctx, column, RangePredicate(0, 1 << (bits - 1)),
                sim_scale=4e9 / column.num_values,
            )
        rate = scan.values_per_second(result, machine.frequency_hz)
        print(f"  {bits:2d}-bit codes: {rate / 1e9:5.1f} G values/s "
              f"({column.compression_ratio():.0f}x smaller EPC footprint)")
    print("  -> dictionary compression multiplies enclave scan rates.\n")


def act4_aggregation() -> None:
    print("=== Act 4: aggregation — the histogram effect on group-by ===")
    rng = np.random.default_rng(15)
    keys = rng.integers(0, 1000, 80_000)
    values = rng.integers(0, 100, 80_000)
    for variant in (CodeVariant.NAIVE, CodeVariant.UNROLLED):
        times = {}
        for setting in (ExecutionSetting.plain_cpu(), SGX):
            machine = SimMachine()
            with machine.context(setting, threads=16) as ctx:
                result = HashAggregate(variant).run(
                    ctx, keys, values, (AggFunc.COUNT, AggFunc.SUM),
                    sim_scale=625.0,
                )
            times[setting.label] = result.cycles
        relative = times["Plain CPU"] / times["SGX (Data in Enclave)"]
        print(f"  {variant.value:8s} group-by keeps {relative:.0%} of native")
    print("  -> unroll/reorder matters for every RMW loop, not just joins.\n")


def act5_pipelining() -> None:
    print("=== Act 5: pipelining — is materialization the problem? ===")
    data = generate_tpch(10, seed=5, physical_sf_cap=0.02)
    tables = {
        "customer": data.customer, "orders": data.orders,
        "lineitem": data.lineitem, "part": data.part,
    }
    for pipelined in (False, True):
        machine = SimMachine()
        with machine.context(SGX, threads=16) as ctx:
            result = QueryExecutor(
                CodeVariant.UNROLLED, pipelined=pipelined
            ).run(ctx, TPCH_QUERIES["Q3"](), tables)
        label = "pipelined" if pipelined else "materializing"
        print(f"  Q3 {label:13s}: {result.seconds(machine.frequency_hz) * 1e3:.1f} ms")
    print(
        "  -> barely: with a pre-sized enclave, sequential writes are "
        "nearly free in SGXv2.\n     (With an EDMM-growing enclave the "
        "picture flips — see `sgxv2-bench ext05`.)"
    )


def main() -> None:
    act1_sgxv1()
    act2_sgxv2()
    act3_compression()
    act4_aggregation()
    act5_pipelining()


if __name__ == "__main__":
    main()
