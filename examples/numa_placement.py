"""NUMA placement explorer: what SGX's missing affinity control costs.

SGXv2 supports multi-socket enclaves, but the enclave cannot pin threads or
place memory — the untrusted OS decides.  This example walks the placement
space of a scan and a join (Sec. 4.3 / 5.5 of the paper) so an operator can
see what a lucky vs. an unlucky placement costs.

Usage::

    python examples/numa_placement.py
"""

import numpy as np

from repro import CodeVariant, ExecutionSetting, SimMachine
from repro.core.joins import RadixJoin
from repro.core.scans import BitvectorScan, RangePredicate
from repro.exec.placement import Placement
from repro.tables import generate_join_relation_pair
from repro.tables.table import Column
from repro.units import format_throughput_rows


def scan_throughput(setting, exec_node, threads):
    machine = SimMachine()
    rng = np.random.default_rng(9)
    column = Column("v", rng.integers(0, 256, 100_000, dtype=np.uint8))
    placement = Placement.on_node(machine.topology, exec_node, threads)
    with machine.context(setting, data_node=0, placement=placement) as ctx:
        result = BitvectorScan().run(
            ctx, column, RangePredicate(64, 192),
            sim_scale=4e9 / column.nbytes,
        )
    return result.read_throughput_bytes_per_s(machine.frequency_hz) / 1e9


def join_throughput(setting, placement_builder):
    machine = SimMachine()
    build, probe = generate_join_relation_pair(
        100e6, 400e6, seed=2, physical_row_cap=150_000
    )
    placement = placement_builder(machine)
    with machine.context(setting, data_node=0, placement=placement) as ctx:
        result = RadixJoin(CodeVariant.UNROLLED).run(ctx, build, probe)
    return result.throughput_rows_per_s(machine.frequency_hz)


def main() -> None:
    sgx = ExecutionSetting.sgx_data_in_enclave()
    plain = ExecutionSetting.plain_cpu()

    print("=== 4 GB column scan, data homed on node 0, 16 threads ===")
    print(f"{'placement':<40} {'read throughput':>18}")
    print("-" * 60)
    for label, setting, node in (
        ("plain CPU, threads local (node 0)", plain, 0),
        ("plain CPU, threads remote (node 1)", plain, 1),
        ("SGX enclave, threads local", sgx, 0),
        ("SGX enclave, threads remote (UPI+crypto)", sgx, 1),
    ):
        print(f"{label:<40} {scan_throughput(setting, node, 16):>13.1f} GB/s")

    print("\n=== optimized RHO join, enclave on node 0 ===")
    print(f"{'placement':<40} {'throughput':>18}")
    print("-" * 60)
    cases = (
        ("16 threads on node 0 (local)",
         lambda m: Placement.on_node(m.topology, 0, 16)),
        ("16 threads on node 1 (fully remote)",
         lambda m: Placement.on_node(m.topology, 1, 16)),
        ("all 32 threads (half local)",
         lambda m: Placement.all_cores(m.topology)),
    )
    local = None
    for label, builder in cases:
        throughput = join_throughput(sgx, builder)
        local = local or throughput
        print(
            f"{label:<40} {format_throughput_rows(throughput):>14} "
            f"({throughput / local:>4.0%})"
        )
    print(
        "\nTakeaway (paper Fig. 9/16): without NUMA-aware placement — which "
        "SGX cannot guarantee — a join can silently lose a quarter of its "
        "throughput, and doubling the cores across sockets buys nothing."
    )


if __name__ == "__main__":
    main()
