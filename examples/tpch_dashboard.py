"""TPC-H dashboard: the cost of confidentiality for four analytical queries.

Generates the paper's simplified TPC-H workload, runs Q3/Q10/Q12/Q19 under
all three execution settings, verifies every count against an independent
numpy reference, and prints the per-query "price of SGX" — the Fig. 17
experiment as a self-checking report.

Usage::

    python examples/tpch_dashboard.py [scale_factor]
"""

import sys

from repro import CodeVariant, ExecutionSetting, SimMachine
from repro.core.queries import QueryExecutor, TPCH_QUERIES, reference_count
from repro.tables import generate_tpch


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    machine = SimMachine()
    data = generate_tpch(scale_factor, seed=42, physical_sf_cap=0.05)
    tables = {
        "customer": data.customer,
        "orders": data.orders,
        "lineitem": data.lineitem,
        "part": data.part,
    }
    print(
        f"TPC-H SF {scale_factor:g}: lineitem {data.lineitem.logical_rows:,.0f} "
        f"rows, total {data.total_logical_bytes / 1e9:.2f} GB (integer-coded)\n"
    )
    configurations = [
        ("plain CPU", ExecutionSetting.plain_cpu(), CodeVariant.NAIVE),
        ("SGX", ExecutionSetting.sgx_data_in_enclave(), CodeVariant.NAIVE),
        ("SGX optimized", ExecutionSetting.sgx_data_in_enclave(),
         CodeVariant.UNROLLED),
    ]
    header = f"{'query':<6} {'count(*)':>12} {'check':>6}"
    for label, _, _ in configurations:
        header += f" {label:>14}"
    print(header)
    print("-" * len(header))
    for query_name, make_plan in TPCH_QUERIES.items():
        expected = reference_count(data, query_name)
        runtimes = []
        count = None
        for _, setting, variant in configurations:
            fresh = SimMachine()
            with fresh.context(setting, threads=16) as ctx:
                result = QueryExecutor(variant).run(ctx, make_plan(), tables)
            runtimes.append(result.seconds(fresh.frequency_hz) * 1e3)
            count = result.count
        check = "OK" if count == expected else "FAIL"
        line = f"{query_name:<6} {count:>12,} {check:>6}"
        for runtime in runtimes:
            line += f" {runtime:>11.1f} ms"
        print(line)
        plain, sgx, opt = runtimes
        print(
            f"{'':6} overhead: +{sgx / plain - 1:.0%} unoptimized, "
            f"+{opt / plain - 1:.0%} optimized "
            f"(optimization cuts {1 - opt / sgx:.0%})"
        )
    print(
        "\nTakeaway (paper Fig. 17): with the unroll/reorder optimization, "
        "full analytical queries inside SGXv2 run within ~15 % of native."
    )


if __name__ == "__main__":
    main()
