"""Operator advisor: pick the right join for an enclave deployment.

A downstream engineer's scenario: given a build-side size and a thread
budget, which join should an SGXv2-resident OLAP engine run, and how much
does each Sec. 4 optimization (code variant, lock-free queue, static
enclave sizing) buy?  The script sweeps the candidates on the simulated
testbed and prints a recommendation table.

Usage::

    python examples/operator_advisor.py [build_mb] [threads]
"""

import sys

from repro import CodeVariant, ExecutionSetting, SimMachine
from repro.core.joins import (
    CrkJoin,
    IndexNestedLoopJoin,
    ParallelHashJoin,
    RadixJoin,
    SortMergeJoin,
)
from repro.tables import generate_join_relation_pair
from repro.units import format_throughput_rows


def evaluate(machine, join, setting, build, probe, threads):
    with machine.context(setting, threads=threads) as ctx:
        result = join.run(ctx, build, probe)
    return result.throughput_rows_per_s(machine.frequency_hz)


def main() -> None:
    build_mb = float(sys.argv[1]) if len(sys.argv) > 1 else 100.0
    threads = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    machine = SimMachine()
    build, probe = generate_join_relation_pair(
        build_mb * 1e6, 4 * build_mb * 1e6, seed=1, physical_row_cap=150_000
    )
    sgx = ExecutionSetting.sgx_data_in_enclave()
    plain = ExecutionSetting.plain_cpu()

    candidates = [
        ("RHO (optimized)", RadixJoin(CodeVariant.UNROLLED)),
        ("RHO (naive)", RadixJoin()),
        ("PHT (optimized)", ParallelHashJoin(CodeVariant.UNROLLED)),
        ("PHT (naive)", ParallelHashJoin()),
        ("MWAY sort-merge", SortMergeJoin()),
        ("INL (B+-tree)", IndexNestedLoopJoin()),
        ("CrkJoin (SGXv1-era)", CrkJoin()),
    ]

    print(
        f"advising for build side {build_mb:.0f} MB, probe "
        f"{4 * build_mb:.0f} MB, {threads} threads\n"
    )
    print(f"{'algorithm':<22} {'in-enclave':>14} {'native':>14} {'kept':>7}")
    print("-" * 61)
    rows = []
    for label, join in candidates:
        inside = evaluate(machine, join, sgx, build, probe, threads)
        native = evaluate(machine, join, plain, build, probe, threads)
        rows.append((label, inside, native))
        print(
            f"{label:<22} {format_throughput_rows(inside):>14} "
            f"{format_throughput_rows(native):>14} {inside / native:>6.0%}"
        )

    best = max(rows, key=lambda row: row[1])
    print(
        f"\nrecommendation: {best[0]} at "
        f"{format_throughput_rows(best[1])} inside the enclave "
        f"({best[1] / best[2]:.0%} of its native speed)."
    )
    print(
        "Remember the deployment rules from the paper: pre-size the enclave "
        "for the largest result (Fig. 11), use lock-free task queues "
        "(Fig. 10), and keep enclave threads and memory on one socket "
        "(Fig. 9)."
    )


if __name__ == "__main__":
    main()
