"""Unit helpers: byte sizes, cycles, times, and human-readable formatting.

The paper reports throughput in M rows/s and GB/s and sizes in MB/GB using
decimal prefixes for table sizes (100 MB hash table) but binary prefixes for
hardware capacities (48 KB L1d).  We keep both families explicit to avoid the
classic factor-1.048 confusion:

* ``KB``/``MB``/``GB`` are decimal (10**3 based) — used for table sizes and
  bandwidths, matching the paper's figures.
* ``KiB``/``MiB``/``GiB`` are binary (2**10 based) — used for cache and EPC
  capacities.
"""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

CACHE_LINE_BYTES = 64
PAGE_BYTES = 4 * KiB


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count into wall-clock seconds at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert wall-clock seconds into cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz


def nanoseconds_to_cycles(nanoseconds: float, frequency_hz: float) -> float:
    """Convert a latency in nanoseconds into cycles at ``frequency_hz``."""
    return seconds_to_cycles(nanoseconds * 1e-9, frequency_hz)


def bandwidth_cycles_per_byte(bytes_per_second: float, frequency_hz: float) -> float:
    """Cycles spent per byte when limited by ``bytes_per_second`` bandwidth."""
    if bytes_per_second <= 0:
        raise ValueError(f"bandwidth must be positive, got {bytes_per_second}")
    return frequency_hz / bytes_per_second


def format_bytes(num_bytes: float) -> str:
    """Format a byte count with a decimal prefix, e.g. ``400 MB``.

    Sizes in this library follow the paper's decimal convention; values below
    1 KB are printed as plain bytes.
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    for unit, factor in (("GB", GB), ("MB", MB), ("KB", KB)):
        if num_bytes >= factor:
            value = num_bytes / factor
            if value >= 100:
                return f"{value:.0f} {unit}"
            return f"{value:.3g} {unit}"
    return f"{num_bytes:.0f} B"


def format_throughput_rows(rows_per_second: float) -> str:
    """Format a row throughput the way the paper does, e.g. ``723 M rows/s``."""
    if rows_per_second < 0:
        raise ValueError("throughput must be non-negative")
    if rows_per_second >= 1e9:
        return f"{rows_per_second / 1e9:.2f} B rows/s"
    if rows_per_second >= 1e6:
        return f"{rows_per_second / 1e6:.0f} M rows/s"
    if rows_per_second >= 1e3:
        return f"{rows_per_second / 1e3:.0f} K rows/s"
    return f"{rows_per_second:.0f} rows/s"


def format_bandwidth(bytes_per_second: float) -> str:
    """Format a bandwidth, e.g. ``67.2 GB/s``."""
    return f"{format_bytes(bytes_per_second)}/s"


def format_seconds(seconds: float) -> str:
    """Format a duration with an appropriate sub-second unit."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds >= 1:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3g} us"
    return f"{seconds * 1e9:.3g} ns"
