"""Calibration constants of the SGXv2 cost model.

Every constant in :class:`CostParameters` is anchored to a specific
measurement reported in the paper (figure / section given in the field
comments).  There is exactly one calibration for the paper's testbed,
:func:`paper_calibration`; all seventeen reproduced experiments are driven by
this single parameter set, so cross-figure consistency is a property of the
model rather than of per-figure tuning.

The SGX penalties are expressed as *relative factors on top of the plain-CPU
cost* of the same access pattern.  Plain-CPU costs themselves come from
:class:`~repro.hardware.spec.HardwareSpec` (latencies, bandwidths).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostParameters:
    """SGXv2-specific cost factors (all relative to plain CPU unless noted)."""

    # ---- random DRAM access (Fig. 5, Sec. 4.1) -------------------------
    # Pointer chasing reaches 53 % relative read throughput at 16 GB,
    # i.e. a 1/0.53 = 1.89x latency factor; the penalty grows with the
    # working-set size from ~1.0 at the L3 boundary.
    random_read_penalty_max: float
    # Independent random writes are ~2x at 256 MB and ~3x at 8 GB.
    random_write_penalty_at_256mb: float
    random_write_penalty_max: float
    # Working-set size (bytes) at which the random penalties saturate.
    random_penalty_saturation_bytes: float
    # Near the cache boundary the paper observes *better* relative SGX
    # performance (footnote 2: cache-clear side effects); modelled as a
    # small relative dip of the penalty around the L3 size.
    cache_boundary_relief: float

    # ---- sequential access (Fig. 15, Sec. 5.4) -------------------------
    # Linear 64-bit reads lose at most 5.5 %, 512-bit reads ~3 %, writes 2 %.
    linear_read_scalar_penalty: float
    linear_read_simd_penalty: float
    linear_write_penalty: float

    # ---- enclave-mode code execution (Fig. 7, Sec. 4.2) ----------------
    # Dependent read-modify-write loops (histogram building) run 225 %
    # slower in enclave mode (factor 3.25) regardless of data location;
    # manual 8x unrolling + reordering reduces this to 20 % (factor 1.2).
    rmw_loop_penalty_naive: float
    rmw_loop_penalty_unrolled: float
    # SIMD-assisted unrolling (32 indexes in AVX registers) narrows the gap
    # further (Sec. 4.2, "decreased the performance difference further").
    rmw_loop_penalty_simd: float

    # ---- enclave transitions and synchronization (Fig. 10, Sec. 4.4) ---
    # Cycles for one enclave exit + re-entry (AEX/ERESUME or OCALL path).
    transition_cycles: float
    # Cycles to park/wake a thread via the OS futex (plain CPU mutex).
    futex_syscall_cycles: float
    # Cycles for one uncontended atomic RMW (lock cmpxchg) on a shared line.
    atomic_op_cycles: float
    # Extra factor applied to the effective critical-section length inside
    # an enclave under contention (the paper's "avalanche effect").
    mutex_avalanche_factor: float

    # ---- dynamic enclave memory, EDMM (Fig. 11, Sec. 4.4) --------------
    # Cycles to add one 4 KiB page to a running enclave (EAUG + EACCEPT +
    # the required OCALL round trip).  Calibrated so that a materializing
    # join drops to 4.5 % of its statically-sized throughput.
    edmm_page_add_cycles: float
    # Cycles for an ordinary (already-committed) heap allocation per page.
    static_page_touch_cycles: float

    # ---- NUMA / UPI encryption (Fig. 9 and 16, Sec. 4.3 / 5.5) ---------
    # Per-access latency factor for cross-NUMA random access inside SGX on
    # top of the plain cross-NUMA latency.
    upi_random_latency_factor: float
    # Single-thread cross-NUMA sequential SGX throughput is 77 % of the
    # plain cross-NUMA scan; the gap closes to 96 % at 16 threads because
    # the shared UPI bandwidth, not the crypto engine, becomes the binding
    # constraint.
    upi_seq_single_thread_relative: float
    upi_seq_saturated_relative: float

    # ---- memory encryption engine -------------------------------------
    # Out-of-cache column scans inside the enclave lose ~3 % (Fig. 12);
    # this emerges from the linear read/write penalties above, so no
    # separate constant is needed.  The MEE adds a fixed per-cacheline
    # decrypt latency that prefetch hides for sequential access but not
    # for dependent random reads (cycles).
    mee_cacheline_decrypt_cycles: float
    mee_cacheline_encrypt_cycles: float

    # ---- legacy EPC paging (SGXv1 platforms only) ----------------------
    # SGXv2 holds whole working sets in its 64 GiB/socket EPC, so these
    # are disabled (None / 0) in the paper calibration.  The SGXv1
    # platform model (repro.hardware.platforms) sets them to reproduce
    # the orders-of-magnitude paging collapse that motivated CrkJoin:
    # once an enclave working set exceeds ``epc_effective_bytes``, EPC
    # pages are evicted/re-encrypted through the kernel on (roughly)
    # every DRAM-level miss to the overflowing share.
    epc_effective_bytes: float = 0.0
    epc_page_fault_cycles: float = 0.0

    # ---- sealed storage path (spill/scan) ------------------------------
    # Per-byte cycles for sealing (AES-GCM encrypt + MAC) and unsealing
    # (decrypt + tag verify) a spilled block on its way to untrusted
    # storage, following the per-block cost model of "Securing the
    # Storage Data Path with SGX Enclaves".  With AES-NI pipelining,
    # SGXv2 sustains a couple of cycles per byte; SGXv1's sealing path is
    # an order of magnitude heavier (software GCM + integrity tree).
    # Per-block fixed costs (the OCALL out of the enclave) are charged
    # separately via ``transition_cycles``.  0.0 disables the sealed
    # storage path entirely (spill-aware variants refuse to price).
    seal_cycles_per_byte: float = 0.0
    unseal_cycles_per_byte: float = 0.0
    # Per-byte cycles for moving a sealed block through the untrusted
    # storage stack (memcpy + kernel block layer against a warm page
    # cache, not a spinning disk).
    storage_io_cycles_per_byte: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "random_read_penalty_max",
            "random_write_penalty_at_256mb",
            "random_write_penalty_max",
            "rmw_loop_penalty_naive",
            "rmw_loop_penalty_unrolled",
            "rmw_loop_penalty_simd",
            "upi_random_latency_factor",
        ):
            if getattr(self, name) < 1.0:
                raise ConfigurationError(f"{name} must be >= 1.0 (a slowdown factor)")
        for name in (
            "linear_read_scalar_penalty",
            "linear_read_simd_penalty",
            "linear_write_penalty",
            "cache_boundary_relief",
        ):
            if not 0.0 <= getattr(self, name) < 1.0:
                raise ConfigurationError(f"{name} must be a fraction in [0, 1)")
        for name in ("upi_seq_single_thread_relative", "upi_seq_saturated_relative"):
            if not 0.0 < getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be a relative factor in (0, 1]")
        if self.upi_seq_single_thread_relative > self.upi_seq_saturated_relative:
            # Fig. 16: the relative performance *improves* with threads.
            raise ConfigurationError(
                "single-thread UPI relative must not exceed saturated relative"
            )
        if not self.rmw_loop_penalty_simd <= self.rmw_loop_penalty_unrolled <= self.rmw_loop_penalty_naive:
            raise ConfigurationError(
                "RMW penalties must be ordered simd <= unrolled <= naive"
            )
        if self.epc_effective_bytes < 0 or self.epc_page_fault_cycles < 0:
            raise ConfigurationError("EPC paging parameters must be non-negative")
        if (self.epc_effective_bytes > 0) != (self.epc_page_fault_cycles > 0):
            raise ConfigurationError(
                "EPC paging needs both a capacity and a per-fault cost"
            )
        for name in (
            "seal_cycles_per_byte",
            "unseal_cycles_per_byte",
            "storage_io_cycles_per_byte",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if (self.seal_cycles_per_byte > 0) != (self.unseal_cycles_per_byte > 0):
            raise ConfigurationError(
                "sealed storage needs both a seal and an unseal cost"
            )

    @property
    def epc_paging_enabled(self) -> bool:
        """True on legacy (SGXv1-style) platforms with a tiny EPC."""
        return self.epc_effective_bytes > 0

    @property
    def sealing_enabled(self) -> bool:
        """True when the calibration prices the sealed storage path."""
        return self.seal_cycles_per_byte > 0


def paper_calibration() -> CostParameters:
    """Constants calibrated to the paper's measurements (sources in comments)."""
    return CostParameters(
        # Fig. 5: 53 % relative pointer-chase throughput at 16 GB -> 1/0.53.
        random_read_penalty_max=1.0 / 0.53,
        # Fig. 5: "already a doubling in latencies at 256 MB".
        random_write_penalty_at_256mb=2.0,
        # Fig. 5: "nearly 3 times higher write latencies for the 8 GB array".
        random_write_penalty_max=2.95,
        # Penalties saturate by the largest tested sizes (8-16 GB).
        random_penalty_saturation_bytes=8e9,
        # Footnote 2: better relative performance around the cache boundary.
        cache_boundary_relief=0.25,
        # Fig. 15: highest reduction 5.5 % for 64-bit reads.
        linear_read_scalar_penalty=0.055,
        # Fig. 15 / Fig. 12: 512-bit (scan) reads lose ~3 %.
        linear_read_simd_penalty=0.03,
        # Fig. 15: linear writes lose ~2 %.
        linear_write_penalty=0.02,
        # Fig. 7: histogram creation 225 % slower in enclave mode.
        rmw_loop_penalty_naive=3.25,
        # Fig. 7: manual 8x unroll + reorder brings it to within 20 %.
        rmw_loop_penalty_unrolled=1.20,
        # Sec. 4.2: AVX-based 32x unroll narrows the gap further.
        rmw_loop_penalty_simd=1.08,
        # Enclave exit+entry ~8k cycles (consistent with SGX SDK
        # measurements and the Fig. 10 collapse under contention).
        transition_cycles=8_000.0,
        # A futex syscall without an enclave costs ~1k cycles.
        futex_syscall_cycles=1_000.0,
        # One contended atomic RMW on a shared cache line.
        atomic_op_cycles=60.0,
        # Fig. 10: transitions "effectively increase the length of the
        # critical section by orders of magnitude".
        mutex_avalanche_factor=4.0,
        # Fig. 11: per-page EAUG/EACCEPT + page fault round trip (~10 us);
        # yields the reported ~4.5 % relative throughput for the
        # materializing join whose whole output grows the enclave.
        edmm_page_add_cycles=28_000.0,
        # First touch of an already-committed page (page walk + zeroing).
        static_page_touch_cycles=600.0,
        # Sec. 4.3 / prior work: cross-NUMA random loads inside SGX see a
        # further latency increase on top of plain cross-NUMA.
        upi_random_latency_factor=1.30,
        # Fig. 16: 77 % relative at 1 thread, 96 % at 16 threads.
        upi_seq_single_thread_relative=0.77,
        upi_seq_saturated_relative=0.96,
        # AES-XTS decrypt of one cache line adds ~26 cycles when exposed.
        mee_cacheline_decrypt_cycles=26.0,
        mee_cacheline_encrypt_cycles=30.0,
        # Sealed storage path: AES-NI GCM sustains ~2 cycles/B for
        # encrypt+MAC; unseal adds the tag verify.  Storage I/O models a
        # warm-page-cache block layer (~0.5 cycles/B at the testbed's
        # clock, several GB/s).
        seal_cycles_per_byte=2.0,
        unseal_cycles_per_byte=2.2,
        storage_io_cycles_per_byte=0.5,
    )
