"""Hardware specification of the simulated testbed.

The default instance :func:`paper_testbed` encodes Table 1 of the paper: a
dual-socket Intel Xeon Gold 6326 (3rd Gen Xeon Scalable, Ice Lake-SP) server
with SGXv2, 512 GB of DDR4-3200 and 64 GB of EPC per socket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import GB, GiB, KiB, MiB


@dataclass(frozen=True)
class CacheSpec:
    """A single cache level.

    ``shared_by`` is the number of hardware cores sharing one instance of the
    cache (1 for private L1/L2, cores-per-socket for the L3 slice set).
    """

    name: str
    capacity_bytes: int
    shared_by: int
    latency_cycles: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(f"{self.name}: capacity must be positive")
        if self.shared_by <= 0:
            raise ConfigurationError(f"{self.name}: shared_by must be positive")
        if self.latency_cycles < 0:
            raise ConfigurationError(f"{self.name}: latency must be non-negative")


@dataclass(frozen=True)
class MemorySpec:
    """DRAM configuration of one socket."""

    channels: int
    channel_bandwidth_bytes: float
    capacity_bytes: int
    random_read_latency_ns: float
    cross_numa_extra_latency_ns: float

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ConfigurationError("memory channels must be positive")
        if self.channel_bandwidth_bytes <= 0:
            raise ConfigurationError("channel bandwidth must be positive")
        if self.capacity_bytes <= 0:
            raise ConfigurationError("memory capacity must be positive")

    @property
    def peak_bandwidth_bytes(self) -> float:
        """Theoretical per-socket bandwidth (all channels)."""
        return self.channels * self.channel_bandwidth_bytes


@dataclass(frozen=True)
class HardwareSpec:
    """Full machine description used by the cost model.

    Only quantities that influence the simulated costs are modelled; the
    remaining rows of Table 1 (microcode version, DIMM type) are recorded in
    ``notes`` for reporting.
    """

    name: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    base_frequency_hz: float
    l1d: CacheSpec
    l2: CacheSpec
    l3: CacheSpec
    memory: MemorySpec
    epc_bytes_per_socket: int
    upi_links: int
    upi_link_bandwidth_bytes: float
    notes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ConfigurationError("sockets must be positive")
        if self.cores_per_socket <= 0:
            raise ConfigurationError("cores_per_socket must be positive")
        if self.threads_per_core <= 0:
            raise ConfigurationError("threads_per_core must be positive")
        if self.base_frequency_hz <= 0:
            raise ConfigurationError("base frequency must be positive")
        if self.epc_bytes_per_socket <= 0:
            raise ConfigurationError("EPC size must be positive")
        if self.upi_links < 0:
            raise ConfigurationError("UPI link count must be non-negative")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def total_threads(self) -> int:
        return self.total_cores * self.threads_per_core

    @property
    def l3_per_socket_bytes(self) -> int:
        return self.l3.capacity_bytes

    @property
    def upi_total_bandwidth_bytes(self) -> float:
        """Aggregate cross-socket bandwidth of all UPI links."""
        return self.upi_links * self.upi_link_bandwidth_bytes

    def single_core_stream_bandwidth_bytes(self) -> float:
        """Sustained bandwidth one core can draw from local DRAM.

        A single Ice Lake core is concurrency-limited (line-fill buffers) to
        roughly 1/8 of the socket bandwidth; socket saturation needs most of
        the cores, matching Fig. 13's near-linear scan scaling up to the
        bandwidth limit.
        """
        return self.memory.peak_bandwidth_bytes * 0.105

    def socket_stream_bandwidth_bytes(self) -> float:
        """Sustained (not theoretical) per-socket DRAM bandwidth.

        Real STREAM-style efficiency on this platform is ~83 % of the
        8-channel DDR4-3200 peak.
        """
        return self.memory.peak_bandwidth_bytes * 0.83


def paper_testbed() -> HardwareSpec:
    """The server of Table 1: dual-socket Intel Xeon Gold 6326.

    DDR4-3200 provides 25.6 GB/s per channel; eight channels per socket give
    204.8 GB/s theoretical.  The three UPI links sum to 67.2 GB/s, the upper
    bound quoted for Fig. 16.
    """
    return HardwareSpec(
        name="Intel Xeon Gold 6326 (dual socket, SGXv2)",
        sockets=2,
        cores_per_socket=16,
        threads_per_core=2,
        base_frequency_hz=2.9e9,
        l1d=CacheSpec("L1d", 48 * KiB, shared_by=1, latency_cycles=5),
        l2=CacheSpec("L2", 1_280 * KiB, shared_by=1, latency_cycles=14),
        l3=CacheSpec("L3", 24 * MiB, shared_by=16, latency_cycles=48),
        memory=MemorySpec(
            channels=8,
            channel_bandwidth_bytes=25.6 * GB,
            capacity_bytes=256 * GiB,
            random_read_latency_ns=89.0,
            cross_numa_extra_latency_ns=55.0,
        ),
        epc_bytes_per_socket=64 * GiB,
        upi_links=3,
        upi_link_bandwidth_bytes=22.4 * GB,
        notes={
            "microcode": "20231114/0xd0003b9",
            "memory_speed": "DDR4 3200 22-22-22",
            "memory_type": "RDIMMs with ECC",
            "l1i": "32 KB per core",
            "os": "Ubuntu 22.04.03, kernel 6.5",
            "sgx_sdk": "2.21",
            "compiler": "GCC 12.3 -O3 -march=native",
        },
    )
