"""NUMA/core topology derived from a :class:`~repro.hardware.spec.HardwareSpec`.

The paper pins threads to physical cores from outside the enclave (trusted
OS) and stresses that SGXv2 itself offers no NUMA-aware placement.  The
topology object is what both the simulated thread pool (placement of threads)
and the allocator (placement of memory regions) consult.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.hardware.spec import HardwareSpec


@dataclass(frozen=True)
class Core:
    """One physical core; ``core_id`` is global, ``local_id`` per socket."""

    core_id: int
    node_id: int
    local_id: int


@dataclass(frozen=True)
class NumaNode:
    """One socket: its cores plus local DRAM and EPC capacity."""

    node_id: int
    cores: Sequence[Core]
    dram_bytes: int
    epc_bytes: int

    @property
    def core_ids(self) -> List[int]:
        return [core.core_id for core in self.cores]


class Topology:
    """All NUMA nodes of the machine with helpers for placement queries."""

    def __init__(self, spec: HardwareSpec) -> None:
        self.spec = spec
        nodes = []
        for node_id in range(spec.sockets):
            cores = tuple(
                Core(
                    core_id=node_id * spec.cores_per_socket + local_id,
                    node_id=node_id,
                    local_id=local_id,
                )
                for local_id in range(spec.cores_per_socket)
            )
            nodes.append(
                NumaNode(
                    node_id=node_id,
                    cores=cores,
                    dram_bytes=spec.memory.capacity_bytes,
                    epc_bytes=spec.epc_bytes_per_socket,
                )
            )
        self.nodes: Sequence[NumaNode] = tuple(nodes)

    def node(self, node_id: int) -> NumaNode:
        """Return the node with ``node_id`` or raise ``ConfigurationError``."""
        if not 0 <= node_id < len(self.nodes):
            raise ConfigurationError(
                f"NUMA node {node_id} does not exist (have {len(self.nodes)})"
            )
        return self.nodes[node_id]

    def core(self, core_id: int) -> Core:
        """Return the core with global id ``core_id``."""
        if not 0 <= core_id < self.spec.total_cores:
            raise ConfigurationError(
                f"core {core_id} does not exist (have {self.spec.total_cores})"
            )
        node_id, local_id = divmod(core_id, self.spec.cores_per_socket)
        return self.nodes[node_id].cores[local_id]

    def node_of_core(self, core_id: int) -> int:
        """NUMA node id that ``core_id`` belongs to."""
        return self.core(core_id).node_id

    def cores_on_node(self, node_id: int, count: int) -> List[int]:
        """First ``count`` core ids on ``node_id`` (paper-style pinning)."""
        node = self.node(node_id)
        if count > len(node.cores):
            raise ConfigurationError(
                f"node {node_id} has {len(node.cores)} cores, requested {count}"
            )
        return node.core_ids[:count]

    def interleaved_cores(self, count: int) -> List[int]:
        """``count`` cores taken round-robin across nodes (32-thread cases)."""
        if count > self.spec.total_cores:
            raise ConfigurationError(
                f"requested {count} cores, machine has {self.spec.total_cores}"
            )
        order: List[int] = []
        for local_id in range(self.spec.cores_per_socket):
            for node in self.nodes:
                order.append(node.cores[local_id].core_id)
        return order[:count]

    def is_cross_numa(self, core_id: int, memory_node: int) -> bool:
        """True when ``core_id`` accesses memory homed on another node."""
        return self.node_of_core(core_id) != self.node(memory_node).node_id

    def cross_socket_bytes(
        self,
        core_a: int,
        core_b: int,
        nbytes: float,
        *,
        saturated: bool = False,
        params: Optional[object] = None,
    ) -> float:
        """Seconds to move ``nbytes`` between ``core_a`` and ``core_b``.

        Same-socket transfers cost nothing here — local bandwidth sharing
        is priced elsewhere (the scheduler's interference term, the cost
        model's per-phase bandwidth).  Cross-socket transfers ride the UPI
        links in one of two calibrated regimes (Fig. 16):

        * **single-thread** (default) — one core drives the transfer, so
          the binding constraint is the core's own DRAM concurrency limit
          (line-fill buffers), scaled by the calibration's single-thread
          SGX-relative factor;
        * **saturated** — many cores pull concurrently, so the aggregate
          UPI bandwidth itself binds, scaled by the saturated relative
          factor (the crypto engine keeps up; the links do not).

        The cluster shuffle path and any future cross-socket experiment
        share this helper, so both always price through ``spec.py``'s
        aggregate UPI bandwidth and ``calibration.py``'s relatives.
        """
        if nbytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        if self.node_of_core(core_a) == self.node_of_core(core_b):
            return 0.0
        if nbytes == 0:
            return 0.0
        if params is None:
            from repro.hardware.calibration import paper_calibration

            params = paper_calibration()
        upi = self.spec.upi_total_bandwidth_bytes
        if saturated:
            effective = upi * params.upi_seq_saturated_relative
        else:
            plain = min(self.spec.single_core_stream_bandwidth_bytes(), upi)
            effective = plain * params.upi_seq_single_thread_relative
        return nbytes / effective
