"""Simulated hardware: the paper's testbed (Table 1) and cost calibration."""

from repro.hardware.spec import CacheSpec, HardwareSpec, MemorySpec, paper_testbed
from repro.hardware.topology import Core, NumaNode, Topology
from repro.hardware.calibration import CostParameters, paper_calibration

__all__ = [
    "CacheSpec",
    "HardwareSpec",
    "MemorySpec",
    "paper_testbed",
    "Core",
    "NumaNode",
    "Topology",
    "CostParameters",
    "paper_calibration",
]
