"""Alternative platform models beyond the paper's primary testbed.

Two variants the paper touches on:

* :func:`sgxv1_testbed` / :func:`sgxv1_calibration` — a first-generation
  SGX client platform (the hardware class CrkJoin and TEEBench targeted):
  a single-socket quad-core with a ~93 MB usable EPC, an MEE whose
  integrity tree makes even *sequential* enclave access expensive, and —
  the defining property — kernel-mediated EPC paging once the working set
  exceeds the EPC.  Running the Fig. 3 joins on this model reproduces the
  prior-work result that motivated CrkJoin: on SGXv1 the cache-optimized
  joins collapse and CrkJoin's paging-avoidance wins.

* :func:`emerald_rapids_testbed` — a newer 5th-Gen Xeon Scalable box.  The
  paper notes (Sec. 4.2) that the enclave-mode reordering restriction was
  verified on such a machine; this spec lets users re-run every experiment
  on the larger configuration.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.calibration import CostParameters, paper_calibration
from repro.hardware.spec import CacheSpec, HardwareSpec, MemorySpec
from repro.units import GB, GiB, KiB, MiB


def sgxv1_testbed() -> HardwareSpec:
    """A Coffee Lake-era SGXv1 client platform (single socket, 4 cores)."""
    return HardwareSpec(
        name="SGXv1 client platform (Xeon E-2176G class)",
        sockets=1,
        cores_per_socket=4,
        threads_per_core=2,
        base_frequency_hz=3.7e9,
        l1d=CacheSpec("L1d", 32 * KiB, shared_by=1, latency_cycles=4),
        l2=CacheSpec("L2", 256 * KiB, shared_by=1, latency_cycles=12),
        l3=CacheSpec("L3", 12 * MiB, shared_by=4, latency_cycles=42),
        memory=MemorySpec(
            channels=2,
            channel_bandwidth_bytes=21.3 * GB,
            capacity_bytes=64 * GiB,
            random_read_latency_ns=80.0,
            cross_numa_extra_latency_ns=0.0,
        ),
        # 128 MB PRM leaves ~93 MB of usable EPC.
        epc_bytes_per_socket=93 * MiB,
        upi_links=0,
        upi_link_bandwidth_bytes=1.0,
        notes={"generation": "SGXv1", "prm": "128 MB (93 MB usable EPC)"},
    )


def sgxv1_calibration() -> CostParameters:
    """SGXv1 cost factors: heavy MEE, integrity tree, and EPC paging.

    Anchors from the prior work the paper builds on (TEEBench, CrkJoin):
    sequential enclave scans up to ~75 % slower; random enclave access
    several times slower (integrity-tree walks); EPC paging at tens of
    microseconds per 4 KiB page, which is what produced the
    orders-of-magnitude join slowdowns on SGXv1 [24].
    """
    base = paper_calibration()
    return dataclasses.replace(
        base,
        # CrkJoin paper: simple scans lose up to 75 % on SGXv1.
        linear_read_scalar_penalty=0.75,
        linear_read_simd_penalty=0.70,
        linear_write_penalty=0.75,
        # Integrity-tree walks multiply random access latencies.
        random_read_penalty_max=5.0,
        random_write_penalty_at_256mb=6.0,
        random_write_penalty_max=7.0,
        random_penalty_saturation_bytes=1e9,
        # SGXv1 enclave transitions were comparably expensive.
        transition_cycles=12_000.0,
        # EPC paging: ~12 us per evict+load pair at 3.7 GHz.
        epc_effective_bytes=93.0 * MiB,
        epc_page_fault_cycles=45_000.0,
        # SGXv1 sealing runs software GCM behind the integrity tree — an
        # order of magnitude more cycles per sealed byte than SGXv2's
        # AES-NI pipeline — and its storage data path crosses a slower
        # kernel boundary.
        seal_cycles_per_byte=20.0,
        unseal_cycles_per_byte=22.0,
        storage_io_cycles_per_byte=1.5,
    )


def emerald_rapids_testbed() -> HardwareSpec:
    """A 5th-Gen Xeon Scalable (Emerald Rapids) SGXv2 server."""
    return HardwareSpec(
        name="Intel Xeon Gold 6530 (dual socket, SGXv2, 5th Gen)",
        sockets=2,
        cores_per_socket=32,
        threads_per_core=2,
        base_frequency_hz=2.1e9,
        l1d=CacheSpec("L1d", 48 * KiB, shared_by=1, latency_cycles=5),
        l2=CacheSpec("L2", 2 * MiB, shared_by=1, latency_cycles=16),
        l3=CacheSpec("L3", 160 * MiB, shared_by=32, latency_cycles=60),
        memory=MemorySpec(
            channels=8,
            channel_bandwidth_bytes=38.4 * GB,  # DDR5-4800
            capacity_bytes=512 * GiB,
            random_read_latency_ns=95.0,
            cross_numa_extra_latency_ns=60.0,
        ),
        epc_bytes_per_socket=128 * GiB,
        upi_links=4,
        upi_link_bandwidth_bytes=24.0 * GB,
        notes={
            "generation": "SGXv2 (5th Gen Xeon Scalable)",
            "context": "Sec. 4.2: reordering findings verified on this class",
        },
    )
