"""The engine-level SGX cost envelope.

The paper prices *operators* inside SGXv2; its closest relatives
(DuckDB-SGX2, Polars-inside-SGX2) run *whole engines* in enclaves and
observe a different overhead shape: the enclave pre-touches its committed
heap at init, the engine's buffer pool and hash tables page against the
EPC, and vectorized pipelines still pay the random-access decrypt latency
on their probe-heavy phases.  :class:`SgxCostEnvelope` reproduces that
shape on top of a *calibrated* engine profile:

* **plain seconds** — the engine's measured wall-clock on the physical
  stand-in data, scaled to the template's logical size (the same
  physical-sample-to-logical-cost scaling every simulator operator uses);
* **enclave init** — first-touching the engine's working set out of the
  statically committed heap (``static_page_touch_cycles`` per 4 KiB page
  plus one transition pair), the DuckDB-SGX2 startup term;
* **in-enclave execution** — the plain seconds under the calibrated
  sequential/random access penalty mix
  (:class:`~repro.memory.encryption.MemoryEncryptionEngine`, so the
  size-dependent penalty curve is shared with the operator model);
* **EPC paging** — on SGXv1-class platforms, the working-set share past
  ``epc_effective_bytes`` faults through the kernel; random-heavy
  engines re-fault evicted pages.

Everything is priced from the checked-in calibration artifact plus the
existing calibration constants — no live engine runs — so engine-priced
arms are as byte-deterministic as simulated ones.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.machine import SimMachine
from repro.memory.access import CodeVariant, PatternKind
from repro.memory.encryption import MemoryEncryptionEngine
from repro.units import PAGE_BYTES
from repro.workload.jobs import JobKind, JobTemplate

#: Checked-in calibration artifact (regenerate with
#: ``python -m repro.backends.calibrate``).
PROFILES_PATH = pathlib.Path(__file__).parent / "profiles.json"

#: Artifact schema version.
PROFILES_FORMAT = 1

#: Share of an engine's execution time spent in random (pointer-chasing)
#: access, per job kind.  Modeling choices, not measurements: scans
#: stream; hash joins probe; the TPC-H plans mix both (the DuckDB-SGX2
#: observation that vectorized pipelines are probe-bound on these
#: queries).
RANDOM_FRACTION: Mapping[JobKind, float] = {
    JobKind.SCAN: 0.05,
    JobKind.JOIN: 0.45,
    JobKind.TPCH: 0.35,
}

#: Engine working set as a multiple of the base data: buffer pool, hash
#: tables, and intermediates on top of the columns themselves.
WORKING_SET_FACTOR: Mapping[JobKind, float] = {
    JobKind.SCAN: 1.05,
    JobKind.JOIN: 1.8,
    JobKind.TPCH: 1.6,
}


@dataclass(frozen=True)
class EngineProfile:
    """One calibrated (backend, template) measurement from the artifact."""

    backend: str
    template: str
    kind: str  # JobKind value ("tpch"/"join"/"scan")
    prepare_s: float
    execute_s: float  # wall-clock at the captured physical caps
    rows: int
    physical_bytes: int
    logical_bytes: float
    bag_digest: str
    row_cap: int
    sf_cap: float
    pricing_seed: int


@dataclass(frozen=True)
class EnvelopeCost:
    """One engine-in-enclave pricing: the three envelope terms + plain."""

    backend: str
    template: str
    plain_s: float  # engine at logical scale, no enclave
    init_s: float  # enclave heap pre-touch + transition pair
    execute_s: float  # plain_s under the access-penalty mix
    paging_s: float  # EPC overflow faults (SGXv1-class platforms)
    working_set_bytes: int
    random_fraction: float

    @property
    def in_enclave_s(self) -> float:
        """Total engine-in-enclave seconds."""
        return self.init_s + self.execute_s + self.paging_s

    @property
    def overhead(self) -> float:
        """Engine-in-enclave over plain engine (the ext08 metric)."""
        return self.in_enclave_s / self.plain_s

    def as_event_attrs(self) -> Dict[str, float]:
        """Deterministic attributes for ``backend.envelope`` events."""
        return {
            "backend": self.backend,
            "template": self.template,
            "plain_s": self.plain_s,
            "init_s": self.init_s,
            "execute_s": self.execute_s,
            "paging_s": self.paging_s,
            "working_set_bytes": self.working_set_bytes,
        }


def load_profiles(
    path: Optional[pathlib.Path] = None,
) -> Dict[Tuple[str, str], EngineProfile]:
    """The calibration artifact as ``(backend, template) -> profile``."""
    path = PROFILES_PATH if path is None else pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(
            f"no engine calibration artifact at {path}; capture one with "
            "'python -m repro.backends.calibrate'"
        )
    payload = json.loads(path.read_text())
    if payload.get("format") != PROFILES_FORMAT:
        raise ConfigurationError(
            f"calibration artifact {path} has format "
            f"{payload.get('format')!r}, expected {PROFILES_FORMAT}; "
            "re-capture with 'python -m repro.backends.calibrate'"
        )
    profiles: Dict[Tuple[str, str], EngineProfile] = {}
    for entry in payload["profiles"]:
        profile = EngineProfile(**entry)
        profiles[(profile.backend, profile.template)] = profile
    return profiles


def get_profile(
    backend: str,
    template: JobTemplate,
    profiles: Optional[Dict[Tuple[str, str], EngineProfile]] = None,
) -> EngineProfile:
    """The artifact profile for ``(backend, template)`` (or raise)."""
    table = load_profiles() if profiles is None else profiles
    try:
        return table[(backend, template.name)]
    except KeyError:
        known = ", ".join(
            sorted(f"{b}/{t}" for b, t in table)
        ) or "none"
        raise ConfigurationError(
            f"no calibrated profile for backend {backend!r}, template "
            f"{template.name!r}; calibrated: {known}; capture one with "
            "'python -m repro.backends.calibrate'"
        ) from None


class SgxCostEnvelope:
    """Price engine-in-enclave arms from calibrated profiles."""

    def __init__(self, machine: Optional[SimMachine] = None) -> None:
        self._machine = machine if machine is not None else SimMachine()
        self._mee = MemoryEncryptionEngine(
            self._machine.params, self._machine.spec.l3_per_socket_bytes
        )

    @property
    def machine(self) -> SimMachine:
        return self._machine

    def price(
        self, profile: EngineProfile, template: JobTemplate
    ) -> EnvelopeCost:
        """The envelope terms of ``template`` on ``profile``'s engine."""
        if profile.template != template.name:
            raise ConfigurationError(
                f"profile {profile.template!r} does not price template "
                f"{template.name!r}"
            )
        if profile.physical_bytes <= 0 or profile.execute_s <= 0:
            raise ConfigurationError(
                f"profile {profile.backend}/{profile.template} carries no "
                "usable measurement (re-capture the artifact)"
            )
        params = self._machine.params
        frequency = self._machine.frequency_hz
        # Measured wall-clock on the physical sample, scaled to the
        # template's logical bytes — the same physical-to-logical scaling
        # the simulator applies via sim_scale.
        scale = profile.logical_bytes / float(profile.physical_bytes)
        plain_s = profile.execute_s * scale
        kind = JobKind(profile.kind)
        random_fraction = RANDOM_FRACTION[kind]
        working_set = profile.logical_bytes * WORKING_SET_FACTOR[kind]
        # Enclave init: first touch of every committed page the engine's
        # working set occupies, plus one enter/exit pair.
        pages = math.ceil(working_set / PAGE_BYTES)
        init_s = (
            pages * params.static_page_touch_cycles
            + 2.0 * params.transition_cycles
        ) / frequency
        # Execution under the enclave: streaming share pays the
        # prefetch-hidden linear penalty, random share the size-dependent
        # decrypt latency (shared curve with the operator model).
        sequential = self._mee.sequential_factor(
            PatternKind.SEQ_READ, CodeVariant.SIMD
        )
        random = self._mee.random_read_factor(working_set)
        penalty = (
            (1.0 - random_fraction) * sequential + random_fraction * random
        )
        execute_s = plain_s * penalty
        # EPC paging (SGXv1-class platforms): the overflow share faults in
        # once, and the random share of the work re-faults evicted pages.
        paging_s = 0.0
        if params.epc_paging_enabled and working_set > params.epc_effective_bytes:
            overflow_pages = (
                working_set - params.epc_effective_bytes
            ) / PAGE_BYTES
            refault = 1.0 + 3.0 * random_fraction
            paging_s = (
                overflow_pages * refault * params.epc_page_fault_cycles
            ) / frequency
        return EnvelopeCost(
            backend=profile.backend,
            template=template.name,
            plain_s=plain_s,
            init_s=init_s,
            execute_s=execute_s,
            paging_s=paging_s,
            working_set_bytes=int(working_set),
            random_fraction=random_fraction,
        )
