"""Multi-backend confidential engines: sim, SQLite, and DuckDB.

The paper benchmarks *operators* inside SGXv2; its nearest neighbours run
*whole engines* (DuckDB, Polars) in enclaves.  This package holds both
arms to one contract so they can be compared:

* a :class:`~repro.backends.base.Backend` protocol — prepare a
  materialized dataset, execute a SQL rendering of a job template, return
  the result bag plus a measured profile;
* three implementations — the operator-level simulator
  (:class:`~repro.backends.sim.SimBackend`), CPython's bundled SQLite
  (:class:`~repro.backends.engines.SQLiteBackend`, always available), and
  DuckDB (:class:`~repro.backends.engines.DuckDBBackend`, optional: the
  ``repro[backends]`` extra);
* a **cross-backend equivalence gate**
  (:mod:`repro.backends.equivalence`): result bags must canonicalize to
  one digest before any backend's timing is reported;
* an **SGX cost envelope** (:mod:`repro.backends.envelope`) that prices
  engine-in-enclave arms from checked-in calibrated profiles
  (:mod:`repro.backends.calibrate`), keeping engine-priced experiments
  byte-deterministic.

Backend selection is an ambient channel (:mod:`repro.backends.config`),
like storage and planner modes: ``--backend`` unset (or ``sim``) leaves
every existing code path — and its output bytes — untouched.
"""

from repro.backends.base import (
    Backend,
    BackendHandle,
    BackendQuery,
    MeasuredProfile,
    Rows,
)
from repro.backends.config import (
    BACKEND_MODES,
    BACKENDS_EXTRA,
    ENGINE_MODES,
    current_backend_mode,
    missing_reason,
    require_available,
    use_backend_mode,
    validate_mode,
)
from repro.backends.dataset import Dataset, materialize
from repro.backends.engines import (
    DuckDBBackend,
    ENGINE_BACKENDS,
    SQLiteBackend,
    make_engine,
)
from repro.backends.envelope import (
    EngineProfile,
    EnvelopeCost,
    SgxCostEnvelope,
    get_profile,
    load_profiles,
)
from repro.backends.equivalence import (
    EquivalenceError,
    assert_equivalent,
    bag_digest,
    canonical_bag,
)
from repro.backends.serving import engine_profile, gate_template
from repro.backends.sim import SimBackend
from repro.backends.sqlgen import render_sql

__all__ = [
    "BACKEND_MODES",
    "BACKENDS_EXTRA",
    "Backend",
    "BackendHandle",
    "BackendQuery",
    "Dataset",
    "DuckDBBackend",
    "ENGINE_BACKENDS",
    "ENGINE_MODES",
    "EngineProfile",
    "EnvelopeCost",
    "EquivalenceError",
    "MeasuredProfile",
    "Rows",
    "SQLiteBackend",
    "SgxCostEnvelope",
    "SimBackend",
    "assert_equivalent",
    "bag_digest",
    "canonical_bag",
    "current_backend_mode",
    "engine_profile",
    "gate_template",
    "get_profile",
    "load_profiles",
    "make_engine",
    "materialize",
    "missing_reason",
    "render_sql",
    "require_available",
    "use_backend_mode",
    "validate_mode",
]
