"""SimBackend: the operator-level simulator behind the backend protocol.

Executes the template's query through the *same* operator implementations
the catalog's pricing runs use (static plan, catalog variant, pricing
caps), but additionally surfaces the real result rows so the equivalence
gate can compare the simulator against the engines.  The profile's
seconds come from :meth:`~repro.workload.jobs.JobCatalog.cost` — fully
simulated and byte-deterministic.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.backends.base import (
    Backend,
    BackendHandle,
    BackendQuery,
    MeasuredProfile,
    Rows,
)
from repro.backends.dataset import Dataset
from repro.core.queries.executor import QueryExecutor
from repro.core.queries.tpch_queries import TPCH_QUERIES
from repro.core.scans.predicate import RangePredicate
from repro.core.scans.simd_scan import BitvectorScan
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.memory.access import CodeVariant
from repro.backends.config import use_backend_mode
from repro.planner.candidates import build_join, static_candidate
from repro.trace import NullTracer, use_tracer
from repro.workload.jobs import JobCatalog, JobKind

_PLAIN = ExecutionSetting.plain_cpu()
_SGX_IN = ExecutionSetting.sgx_data_in_enclave()


class SimBackend(Backend):
    """The operator simulator as a backend (always available)."""

    name = "sim"

    def __init__(self, catalog: JobCatalog = None) -> None:
        self.catalog = catalog if catalog is not None else JobCatalog()

    def prepare(self, dataset: Dataset) -> BackendHandle:
        # The simulator queries numpy tables in place: nothing to load.
        return BackendHandle(backend=self.name, dataset=dataset)

    def execute(
        self, handle: BackendHandle, query: BackendQuery
    ) -> Tuple[Rows, MeasuredProfile]:
        template = query.template
        dataset = handle.dataset
        rows = self.compute_rows(dataset)
        # Pin the sim mode: under an ambient engine mode the catalog
        # would otherwise delegate right back to the engine bridge (and
        # the bridge's equivalence gate runs this backend — recursion).
        with use_backend_mode("sim"):
            plain = self.catalog.cost(template, _PLAIN)
            enclave = self.catalog.cost(template, _SGX_IN)
        profile = MeasuredProfile(
            backend=self.name,
            template=template.name,
            prepare_s=0.0,
            execute_s=plain.service_s,
            rows=len(rows),
            physical_bytes=dataset.physical_bytes,
            logical_bytes=dataset.logical_bytes,
            working_set_bytes=enclave.working_set_bytes,
            simulated=True,
        )
        return rows, profile

    # -- row computation -------------------------------------------------

    def compute_rows(self, dataset: Dataset) -> Rows:
        """The result bag, computed by the real operator kernels.

        Runs silently (``NullTracer``) under a plain-CPU context: the row
        computation is gate bookkeeping, not priced serving work — the
        priced seconds come from the catalog's memoized pricing runs.
        """
        template = dataset.template
        candidate = static_candidate(template, self.catalog.variant)
        sim = self.catalog.machine_prototype()
        with use_tracer(NullTracer()), sim.context(
            _PLAIN, threads=candidate.threads
        ) as ctx:
            if template.kind is JobKind.JOIN:
                build, probe = dataset.tables["r"], dataset.tables["s"]
                result = build_join(candidate).run(ctx, build, probe)
                if result.match_index is None:  # pragma: no cover
                    raise ConfigurationError(
                        f"{result.algorithm} returned no match index"
                    )
                matched = result.match_index >= 0
                s_payload = probe["payload"][matched]
                r_payload = build["payload"][result.match_index[matched]]
                return [
                    (int(s), int(r))
                    for s, r in zip(s_payload.tolist(), r_payload.tolist())
                ]
            if template.kind is JobKind.SCAN:
                table = dataset.tables["scan_values"]
                column = table.column("v")
                predicate = RangePredicate(
                    dataset.params["scan_lower"], dataset.params["scan_upper"]
                )
                result = BitvectorScan(CodeVariant.SIMD).run(
                    ctx, column, predicate
                )
                mask = np.unpackbits(result.bitvector)[: len(column)].astype(
                    bool
                )
                return [(int(v),) for v in column.data[mask].tolist()]
            if template.kind is JobKind.TPCH:
                plan = TPCH_QUERIES[template.query]()
                result = QueryExecutor(
                    candidate.variant,
                    join_factory=lambda: build_join(candidate),
                ).run(ctx, plan, dict(dataset.tables))
                return [(int(result.count),)]
        raise ConfigurationError(  # pragma: no cover - enum is exhaustive
            f"unknown job kind {template.kind!r}"
        )
