"""Backend selection and its ambient (session-scoped) channel.

``--backend sqlite`` asks the serving layer to price engine-in-enclave
arms from a real engine's calibrated profile instead of the operator
simulator.  Like fault plans, planner modes, cluster topologies, and
storage budgets, the choice flows through an explicit ambient channel
(:func:`use_backend_mode` / :func:`current_backend_mode`) so one flag
reshapes every serving run in a session — and ``--backend`` unset (or
``sim``) leaves every code path byte-identical to the pre-backends build.
"""

from __future__ import annotations

import contextlib
import importlib.util
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError

#: Every selectable backend.  ``sim`` is the operator-level simulator (the
#: default and the only backend the figure experiments ever use); the
#: engine modes execute the same logical queries on a real SQL engine.
BACKEND_MODES = ("sim", "sqlite", "duckdb")

#: The real-engine subset: modes whose serving costs come from the SGX
#: cost envelope over a calibrated engine profile.
ENGINE_MODES = ("sqlite", "duckdb")

#: The pip extra that provides the optional engine wheels.
BACKENDS_EXTRA = "repro[backends]"


def validate_mode(mode: str) -> str:
    """Return ``mode`` if known, else raise :class:`ConfigurationError`."""
    if mode not in BACKEND_MODES:
        raise ConfigurationError(
            f"unknown backend {mode!r}; known: {', '.join(BACKEND_MODES)}"
        )
    return mode


def missing_reason(mode: str) -> Optional[str]:
    """Why ``mode`` cannot run here (``None``: it can).

    The one-line message names the pip extra, so an unavailable engine
    fails fast with an actionable hint instead of an ImportError traceback
    from deep inside a serving run.
    """
    validate_mode(mode)
    if mode == "duckdb" and importlib.util.find_spec("duckdb") is None:
        return (
            "backend 'duckdb' needs the duckdb wheel; "
            f"pip install '{BACKENDS_EXTRA}'"
        )
    return None


def require_available(mode: str) -> str:
    """Validate ``mode`` and raise if its engine is not importable."""
    reason = missing_reason(mode)
    if reason is not None:
        raise ConfigurationError(reason)
    return mode


_ACTIVE: List[Optional[str]] = [None]


def current_backend_mode() -> Optional[str]:
    """The ambient backend mode (``None``: the simulator, the default)."""
    return _ACTIVE[-1]


@contextlib.contextmanager
def use_backend_mode(mode: Optional[str]) -> Iterator[Optional[str]]:
    """Install ``mode`` as the ambient backend for the ``with`` scope.

    ``None`` is a no-op scope (the session default), mirroring
    ``use_storage``/``use_planner_mode``; ``"sim"`` is accepted and keys
    identically to ``None`` everywhere (both serve the operator-simulator
    path), so pre-backends cache entries stay valid for sim sessions.
    """
    if mode is not None:
        validate_mode(mode)
    _ACTIVE.append(mode)
    try:
        yield mode
    finally:
        _ACTIVE.pop()
