"""Cross-backend result-bag equivalence: canonicalize, digest, compare.

The DAT300-style harness rule this package enforces: *no timing without
matching results*.  Every backend executes the same logical query and the
resulting row bags must be identical before any performance number is
reported.  Bags are compared through a canonical form that is insensitive
to everything SQL semantics does not fix:

* **row order** — results are multisets, so rows are sorted;
* **column order** — engines may project in different orders, so values
  are sorted *within* each row as well;
* **numeric representation** — floats are quantized (and integral floats
  collapse to ints) so ``1`` from the simulator equals ``1.0`` from an
  engine; ``-0.0``, NaN, and infinities normalize to stable sentinels;
* **NULLs** — ``None`` sorts and digests deterministically;
* **duplicates** — preserved (a bag, not a set): an engine returning one
  copy of a doubled row fails the gate.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import EquivalenceError

#: Decimal digits floats are rounded to before digesting.  Far below any
#: difference the simulator or an engine could legitimately produce for
#: these integer-typed workloads; ties within half a quantum collapse.
QUANT_DIGITS = 9


def canonical_value(value: Any) -> Any:
    """One scalar in canonical form (JSON-safe, backend-independent)."""
    if value is None:
        return None
    # Numpy scalars (the simulator's native currency) reduce to Python.
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (int, float, str, bytes)):
        value = item()
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "Infinity" if value > 0 else "-Infinity"
        value = round(value, QUANT_DIGITS) + 0.0  # +0.0 folds -0.0
        if value.is_integer() and abs(value) < 2**53:
            return int(value)
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, bytes):
        return value.hex()
    return str(value)


def _value_key(value: Any) -> Tuple[int, Any]:
    """A total order over canonical scalars (None < numbers < strings)."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, value)


def canonical_row(row: Sequence[Any]) -> Tuple[Any, ...]:
    """One row in canonical form: values canonicalized, column order
    erased by sorting within the row."""
    return tuple(sorted((canonical_value(v) for v in row), key=_value_key))


def canonical_bag(rows: Iterable[Sequence[Any]]) -> List[Tuple[Any, ...]]:
    """The sorted-multiset form of a result: duplicates preserved."""
    return sorted(
        (canonical_row(row) for row in rows),
        key=lambda row: json.dumps(row, separators=(",", ":")),
    )


def bag_digest(rows: Iterable[Sequence[Any]]) -> str:
    """SHA-256 hex digest of the canonical bag (the gate's currency)."""
    payload = json.dumps(
        canonical_bag(rows), separators=(",", ":"), sort_keys=False
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _first_difference(
    reference: List[Tuple[Any, ...]], other: List[Tuple[Any, ...]]
) -> str:
    """One human-readable line about where two canonical bags diverge."""
    if len(reference) != len(other):
        return f"row counts differ: {len(reference)} vs {len(other)}"
    for index, (left, right) in enumerate(zip(reference, other)):
        if left != right:
            return f"first differing row #{index}: {left} vs {right}"
    return "bags are permutations with equal length (digest collision?)"


def assert_equivalent(
    bags: Mapping[str, Iterable[Sequence[Any]]], *, context: str = ""
) -> str:
    """Require every named bag to be identical; return the shared digest.

    ``bags`` maps backend names to row iterables.  The first entry (in
    insertion order) is the reference; any disagreement raises
    :class:`~repro.errors.EquivalenceError` naming both backends, both
    digests, and the first differing row.
    """
    if not bags:
        raise EquivalenceError("equivalence gate needs at least one bag")
    names = list(bags)
    canon = {name: canonical_bag(bags[name]) for name in names}
    digests = {
        name: hashlib.sha256(
            json.dumps(canon[name], separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        for name in names
    }
    reference = names[0]
    for name in names[1:]:
        if digests[name] != digests[reference]:
            where = f" for {context}" if context else ""
            raise EquivalenceError(
                f"result bags differ{where}: {reference} "
                f"({digests[reference][:16]}..., {len(canon[reference])} "
                f"rows) vs {name} ({digests[name][:16]}..., "
                f"{len(canon[name])} rows); "
                + _first_difference(canon[reference], canon[name])
            )
    return digests[reference]
