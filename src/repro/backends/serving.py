"""Bridge engine backends into the serving catalog's pricing path.

When an engine backend mode is active (``--backend sqlite|duckdb``),
:meth:`repro.workload.jobs.JobCatalog.profile` delegates here instead of
running the operator simulator: the template's service seconds come from
the engine's *calibrated* profile (the checked-in artifact), priced
through the :class:`~repro.backends.envelope.SgxCostEnvelope` —

* ``Plain CPU``      → the envelope's ``plain_s`` (engine, no enclave);
* ``SGX (Data in Enclave)`` → ``in_enclave_s`` (init + penalized
  execution + EPC paging).

Before any engine-priced profile is handed out, the **equivalence gate**
runs once per catalog and template: the operator simulator and the live
engine execute the same query over the same materialized rows, and their
result bags must canonicalize to one digest (which must also match the
digest the calibration artifact recorded).  Result *bags* are
deterministic even though engine *timings* are not, so the gate keeps
engine-priced arms byte-deterministic while proving the two renderings
of the query agree.

Both steps announce themselves on the ambient tracer (``backend.envelope``
and ``backend.equivalence`` events) so the backend breakdown reporter can
attribute an engine arm's seconds; neither event appears unless an engine
mode is active, preserving the default path's trace bytes.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.backends.engines import make_engine
from repro.backends.envelope import (
    EngineProfile,
    SgxCostEnvelope,
    get_profile,
    load_profiles,
)
from repro.backends.dataset import materialize
from repro.backends.equivalence import assert_equivalent
from repro.backends.sim import SimBackend
from repro.errors import ConfigurationError
from repro.trace.breakdown import BACKEND_ENVELOPE, BACKEND_EQUIVALENCE
from repro.trace.tracer import current_tracer
from repro.workload.jobs import JobCatalog, JobProfile, JobTemplate

#: Module-level artifact cache: the checked-in file never changes within
#: a process, and loading it once keeps repeated catalog builds cheap.
_PROFILES_CACHE: Dict[str, Dict[Tuple[str, str], EngineProfile]] = {}


def _artifact_profiles() -> Dict[Tuple[str, str], EngineProfile]:
    cached = _PROFILES_CACHE.get("default")
    if cached is None:
        cached = load_profiles()
        _PROFILES_CACHE["default"] = cached
    return cached


def _gate_memo(catalog: JobCatalog) -> Set[Tuple[str, str]]:
    """The catalog's per-experiment gate memo (lazily attached).

    Per *catalog*, not per process: one catalog serves one experiment, so
    the gate (and its trace event) fires exactly once per experiment and
    template regardless of whether experiments share a process (serial
    sessions) or not (``--jobs N`` workers) — trace bytes stay identical
    across session compositions.
    """
    memo = getattr(catalog, "_backend_gated", None)
    if memo is None:
        memo = set()
        catalog._backend_gated = memo
    return memo


def _check_calibration(
    catalog: JobCatalog, artifact: EngineProfile
) -> None:
    """The artifact must have been captured at the catalog's pricing caps."""
    mismatches = []
    if artifact.row_cap != catalog.row_cap:
        mismatches.append(
            f"row_cap {artifact.row_cap} != {catalog.row_cap}"
        )
    if artifact.sf_cap != catalog.sf_cap:
        mismatches.append(f"sf_cap {artifact.sf_cap} != {catalog.sf_cap}")
    if artifact.pricing_seed != catalog.pricing_seed:
        mismatches.append(
            f"pricing_seed {artifact.pricing_seed} != {catalog.pricing_seed}"
        )
    if mismatches:
        raise ConfigurationError(
            f"calibrated profile {artifact.backend}/{artifact.template} "
            f"does not match the catalog's pricing caps "
            f"({'; '.join(mismatches)}); re-capture with "
            "'python -m repro.backends.calibrate'"
        )


def gate_template(
    catalog: JobCatalog, template: JobTemplate, mode: str
) -> str:
    """Run the cross-backend equivalence gate; return the shared digest.

    Executes the template through the operator simulator *and* the live
    engine over identically materialized rows, then requires both bags to
    canonicalize to one digest.  Raises
    :class:`~repro.errors.EquivalenceError` on disagreement — an engine
    arm must never report a timing for a query the engine answers
    differently.
    """
    dataset = materialize(
        template,
        seed=catalog.pricing_seed,
        row_cap=catalog.row_cap,
        sf_cap=catalog.sf_cap,
    )
    # Rows only, no pricing: the gate compares result bags, and pricing
    # the sim arm here would re-enter the catalog mid-delegation.
    sim_rows = SimBackend(catalog).compute_rows(dataset)
    engine_rows, _ = make_engine(mode).run_template(
        template,
        seed=catalog.pricing_seed,
        row_cap=catalog.row_cap,
        sf_cap=catalog.sf_cap,
    )
    return assert_equivalent(
        {"sim": sim_rows, mode: engine_rows},
        context=f"template {template.name!r}",
    )


def engine_profile(
    catalog: JobCatalog, template: JobTemplate, mode: str
) -> JobProfile:
    """Price ``template`` from ``mode``'s calibrated engine profile.

    The equivalence gate runs first (once per catalog and template); the
    returned :class:`~repro.workload.jobs.JobProfile` carries the
    envelope's plain/in-enclave seconds under the catalog's two standard
    setting labels, so schedulers and reporters consume engine-priced
    arms exactly like simulated ones.
    """
    artifact = get_profile(mode, template, _artifact_profiles())
    _check_calibration(catalog, artifact)
    tracer = current_tracer()

    memo = _gate_memo(catalog)
    gate_key = (template.name, mode)
    if gate_key not in memo:
        digest = gate_template(catalog, template, mode)
        if artifact.bag_digest != digest:
            raise ConfigurationError(
                f"calibrated profile {mode}/{template.name} recorded bag "
                f"digest {artifact.bag_digest[:12]} but the live engines "
                f"now agree on {digest[:12]}; the data generators and the "
                "artifact are out of sync — re-capture with "
                "'python -m repro.backends.calibrate'"
            )
        memo.add(gate_key)
        tracer.event(
            BACKEND_EQUIVALENCE,
            backend=mode,
            template=template.name,
            digest=digest,
            rows=artifact.rows,
        )

    envelope = SgxCostEnvelope(catalog.machine_prototype())
    cost = envelope.price(artifact, template)
    tracer.event(BACKEND_ENVELOPE, **cost.as_event_attrs())
    plain, enclave = JobCatalog.SETTINGS
    return JobProfile(
        name=template.name,
        threads=template.threads,
        working_set_bytes=cost.working_set_bytes,
        service_seconds_by_setting={
            plain.label: cost.plain_s,
            enclave.label: cost.in_enclave_s,
        },
    )
