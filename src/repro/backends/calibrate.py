"""Capture engine calibration profiles: the documented nondeterministic path.

``python -m repro.backends.calibrate`` runs each serving template through
a real engine, takes the **minimum** wall-clock over ``--repeats`` runs
(the standard steady-state estimator: the minimum is the least polluted
by scheduler noise), and writes the checked-in artifact
(:data:`repro.backends.envelope.PROFILES_PATH`).  Everything downstream —
the SGX cost envelope, ``--backend sqlite|duckdb`` runs, ext08 — prices
from this artifact, never from live timings, so simulated experiments
stay byte-deterministic and *this* command is the only place wall-clock
nondeterminism enters the repository (as a reviewed diff).

The result bag's canonical digest is captured alongside the timing; the
equivalence gate later verifies the live engines still produce it, which
catches artifact/generator drift.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

from repro.backends.base import Backend
from repro.backends.config import ENGINE_MODES, missing_reason
from repro.backends.dataset import materialize
from repro.backends.engines import make_engine
from repro.backends.envelope import PROFILES_FORMAT, PROFILES_PATH
from repro.backends.equivalence import bag_digest
from repro.workload.jobs import (
    FULL_ROW_CAP,
    FULL_SF_CAP,
    QUICK_ROW_CAP,
    QUICK_SF_CAP,
    JobTemplate,
    serving_templates,
)

#: Default measurement repeats; the minimum is kept.
DEFAULT_REPEATS = 3

#: The default pricing seed (matches ``JobCatalog``'s).
DEFAULT_SEED = 13


def capture_profile(
    backend: Backend,
    template: JobTemplate,
    *,
    seed: int,
    row_cap: int,
    sf_cap: float,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, object]:
    """One artifact entry: min-of-repeats timing + canonical bag digest."""
    best_execute: Optional[float] = None
    best_prepare: Optional[float] = None
    rows = None
    dataset = materialize(template, seed=seed, row_cap=row_cap, sf_cap=sf_cap)
    for _ in range(max(1, repeats)):
        run_rows, profile = backend.run_template(
            template, seed=seed, row_cap=row_cap, sf_cap=sf_cap
        )
        if best_execute is None or profile.execute_s < best_execute:
            best_execute = profile.execute_s
        if best_prepare is None or profile.prepare_s < best_prepare:
            best_prepare = profile.prepare_s
        rows = run_rows
    return {
        "backend": backend.name,
        "template": template.name,
        "kind": template.kind.value,
        "prepare_s": round(best_prepare, 6),
        "execute_s": round(best_execute, 6),
        "rows": len(rows),
        "physical_bytes": dataset.physical_bytes,
        "logical_bytes": dataset.logical_bytes,
        "bag_digest": bag_digest(rows),
        "row_cap": row_cap,
        "sf_cap": sf_cap,
        "pricing_seed": seed,
    }


def capture_all(
    modes: List[str],
    *,
    seed: int = DEFAULT_SEED,
    full: bool = False,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, object]:
    """The full artifact payload for ``modes`` over the serving templates."""
    row_cap = FULL_ROW_CAP if full else QUICK_ROW_CAP
    sf_cap = FULL_SF_CAP if full else QUICK_SF_CAP
    profiles = []
    for mode in modes:
        backend = make_engine(mode)
        for name in sorted(serving_templates()):
            template = serving_templates()[name]
            profiles.append(
                capture_profile(
                    backend,
                    template,
                    seed=seed,
                    row_cap=row_cap,
                    sf_cap=sf_cap,
                    repeats=repeats,
                )
            )
    return {
        "format": PROFILES_FORMAT,
        "captured": {"row_cap": row_cap, "sf_cap": sf_cap, "pricing_seed": seed},
        "profiles": profiles,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.backends.calibrate",
        description="capture engine calibration profiles (wall-clock)",
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=ENGINE_MODES,
        help="engine(s) to calibrate (default: every available engine)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=PROFILES_PATH,
        help=f"artifact path (default: {PROFILES_PATH})",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="measurement repeats; the minimum is kept",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="pricing seed"
    )
    parser.add_argument(
        "--full", action="store_true",
        help="capture at the full (non-quick) pricing caps",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="re-measure in-process and compare against the checked-in "
        "artifact instead of writing it (NON-DETERMINISTIC: wall-clock "
        "timings vary run to run; the artifact stays the pricing source)",
    )
    args = parser.parse_args(argv)

    modes = args.backend
    if not modes:
        modes = [m for m in ENGINE_MODES if missing_reason(m) is None]
    for mode in modes:
        reason = missing_reason(mode)
        if reason is not None:
            print(reason, file=sys.stderr)
            return 2
    payload = capture_all(
        modes, seed=args.seed, full=args.full, repeats=args.repeats
    )
    if args.live:
        return _report_live(payload, args.out)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"captured {len(payload['profiles'])} profiles "
        f"({', '.join(modes)}) -> {args.out}"
    )
    return 0


def _report_live(payload: Dict[str, object], path: pathlib.Path) -> int:
    """Print the ``--live`` comparison against the artifact at ``path``.

    Nothing is written: live timings are wall-clock (the one
    nondeterministic measurement in the repository) and exist to sanity
    check the checked-in artifact, not to replace it.  Timing drift is
    expected and informational; **digest** drift is not (the result bag
    is a pure function of the seed and caps) and fails the command.
    """
    from repro.backends.envelope import load_profiles

    print(
        "live re-measure — NON-DETERMINISTIC wall-clock timings; nothing "
        "is written (the checked-in artifact remains the pricing source)"
    )
    stored = load_profiles(path)
    drifted = False
    for entry in payload["profiles"]:
        key = (entry["backend"], entry["template"])
        label = f"{key[0]}/{key[1]}"
        ref = stored.get(key)
        if ref is None:
            print(f"  {label}: live {entry['execute_s'] * 1e3:.3f} ms "
                  "(no artifact entry)")
            continue
        ratio = (
            entry["execute_s"] / ref.execute_s
            if ref.execute_s > 0
            else float("inf")
        )
        comparable = (
            entry["row_cap"] == ref.row_cap
            and entry["sf_cap"] == ref.sf_cap
            and entry["pricing_seed"] == ref.pricing_seed
        )
        if not comparable:
            digest = "digest not comparable (caps/seed differ)"
        elif entry["bag_digest"] == ref.bag_digest:
            digest = "digest ok"
        else:
            digest = "DIGEST DRIFT"
            drifted = True
        print(
            f"  {label}: live {entry['execute_s'] * 1e3:.3f} ms vs "
            f"artifact {ref.execute_s * 1e3:.3f} ms ({ratio:.2f}x); "
            f"{digest}"
        )
    if drifted:
        print(
            "result bags no longer match the artifact: the engines or "
            "generators drifted — re-capture and review the diff",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
