"""Render job templates as SQL over the materialized datasets.

One rendering serves every engine: the queries use only portable SQL-92
constructs (integer literals, inner joins, ``COUNT(*)``, ``BETWEEN``), so
SQLite and DuckDB execute byte-identical statements.  The TPC-H texts are
the paper's simplified forms (integer-coded dates/categoricals, all
aggregates replaced by ``count(*)``) with constants taken from the same
encoders :mod:`repro.core.queries.tpch_queries` compiles its plans from —
the SQL and the operator plans are two renderings of one logical query.
"""

from __future__ import annotations

from repro.backends.dataset import Dataset
from repro.errors import ConfigurationError
from repro.tables.tpch import (
    date_code,
    returnflag_code,
    segment_code,
    shipinstruct_code,
    shipmode_code,
)
from repro.workload.jobs import JobKind, JobTemplate


def _q3_sql() -> str:
    return (
        "SELECT COUNT(*) FROM customer, orders, lineitem "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        f"AND c_mktsegment = {segment_code('BUILDING')} "
        f"AND o_orderdate < {date_code(1995, 3, 15)} "
        f"AND l_shipdate > {date_code(1995, 3, 15)}"
    )


def _q10_sql() -> str:
    return (
        "SELECT COUNT(*) FROM customer, orders, lineitem "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        f"AND o_orderdate >= {date_code(1993, 10, 1)} "
        f"AND o_orderdate < {date_code(1994, 1, 1)} "
        f"AND l_returnflag = {returnflag_code('R')}"
    )


def _q12_sql() -> str:
    return (
        "SELECT COUNT(*) FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey "
        f"AND l_shipmode IN ({shipmode_code('MAIL')}, "
        f"{shipmode_code('SHIP')}) "
        "AND l_commitdate < l_receiptdate "
        "AND l_shipdate < l_commitdate "
        f"AND l_receiptdate >= {date_code(1994, 1, 1)} "
        f"AND l_receiptdate < {date_code(1995, 1, 1)}"
    )


def _q19_sql() -> str:
    def disjunct(brand, containers, qty_lo, qty_hi, size_hi):
        in_list = ", ".join(str(c) for c in containers)
        return (
            f"(p_brand = {brand} AND p_container IN ({in_list}) "
            f"AND l_quantity BETWEEN {qty_lo} AND {qty_hi} "
            f"AND p_size BETWEEN 1 AND {size_hi})"
        )

    return (
        "SELECT COUNT(*) FROM part, lineitem "
        "WHERE p_partkey = l_partkey "
        f"AND l_shipmode IN ({shipmode_code('AIR')}, "
        f"{shipmode_code('REG AIR')}) "
        f"AND l_shipinstruct = {shipinstruct_code('DELIVER IN PERSON')} "
        "AND ("
        + disjunct(11, (0, 1, 2, 3), 1, 11, 5)
        + " OR "
        + disjunct(22, (10, 11, 12, 13), 10, 20, 10)
        + " OR "
        + disjunct(33, (20, 21, 22, 23), 20, 30, 15)
        + ")"
    )


_TPCH_SQL = {
    "Q3": _q3_sql,
    "Q10": _q10_sql,
    "Q12": _q12_sql,
    "Q19": _q19_sql,
}


def render_sql(template: JobTemplate, dataset: Dataset) -> str:
    """The SQL text of ``template`` against ``dataset``'s tables."""
    if template.kind is JobKind.JOIN:
        # The FK join of the paper: every probe (s) row matches one build
        # (r) row; the bag is the matched payload pairs.
        return (
            'SELECT s.payload, r.payload FROM s, r '
            'WHERE s."key" = r."key"'
        )
    if template.kind is JobKind.SCAN:
        lower = dataset.params["scan_lower"]
        upper = dataset.params["scan_upper"]
        return (
            f"SELECT v FROM scan_values WHERE v BETWEEN {lower} AND {upper}"
        )
    if template.kind is JobKind.TPCH:
        try:
            return _TPCH_SQL[template.query]()
        except KeyError:
            raise ConfigurationError(
                f"no SQL rendering for TPC-H query {template.query!r}"
            ) from None
    raise ConfigurationError(  # pragma: no cover - enum is exhaustive
        f"no SQL rendering for job kind {template.kind!r}"
    )
