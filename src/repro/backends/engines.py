"""Real SQL engines behind the backend protocol: SQLite and DuckDB.

Both engines implement the DB-API surface this module needs (``execute``
/ ``executemany`` / ``fetchall``), so one implementation covers both;
only the connection factory differs.  SQLite ships with CPython and is
therefore always available — it is the engine the CI equivalence gate
runs against.  DuckDB is optional: :meth:`DuckDBBackend.missing_reason`
names the ``repro[backends]`` extra when the wheel is absent, and every
caller is expected to skip (not crash) in that case.

Engine timings are **wall-clock** (``MeasuredProfile.simulated=False``).
They never enter reports or traces directly; the deterministic path
consumes them only through the checked-in calibration artifact
(:mod:`repro.backends.calibrate`).
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.backends.base import (
    Backend,
    BackendHandle,
    BackendQuery,
    MeasuredProfile,
    Rows,
)
from repro.backends.config import missing_reason as _config_missing_reason
from repro.backends.dataset import Dataset
from repro.errors import ConfigurationError


class SqlEngineBackend(Backend):
    """Shared DB-API implementation (subclasses provide the connection)."""

    def _connect(self):  # pragma: no cover - abstract hook
        raise NotImplementedError

    def prepare(self, dataset: Dataset) -> BackendHandle:
        reason = self.missing_reason()
        if reason is not None:
            raise ConfigurationError(reason)
        start = time.perf_counter()
        conn = self._connect()
        for name, table in dataset.tables.items():
            columns = ", ".join(
                f'"{column}" INTEGER' for column in table.column_names
            )
            conn.execute(f'CREATE TABLE "{name}" ({columns})')
            placeholders = ", ".join("?" for _ in table.column_names)
            arrays = [table[column].tolist() for column in table.column_names]
            conn.executemany(
                f'INSERT INTO "{name}" VALUES ({placeholders})',
                zip(*arrays),
            )
        self._commit(conn)
        return BackendHandle(
            backend=self.name,
            dataset=dataset,
            prepare_s=time.perf_counter() - start,
            state=conn,
        )

    @staticmethod
    def _commit(conn) -> None:
        commit = getattr(conn, "commit", None)
        if commit is not None:
            commit()

    def execute(
        self, handle: BackendHandle, query: BackendQuery
    ) -> Tuple[Rows, MeasuredProfile]:
        if handle.state is None:
            raise ConfigurationError(
                f"backend {self.name!r}: execute() needs a prepared handle"
            )
        start = time.perf_counter()
        cursor = handle.state.execute(query.sql)
        rows = [tuple(row) for row in cursor.fetchall()]
        elapsed = time.perf_counter() - start
        dataset = handle.dataset
        profile = MeasuredProfile(
            backend=self.name,
            template=query.template.name,
            prepare_s=handle.prepare_s,
            execute_s=elapsed,
            rows=len(rows),
            physical_bytes=dataset.physical_bytes,
            logical_bytes=dataset.logical_bytes,
            working_set_bytes=0,  # engines do not expose EPC footprints
            simulated=False,
        )
        return rows, profile


class SQLiteBackend(SqlEngineBackend):
    """CPython's bundled SQLite: the always-available reference engine."""

    name = "sqlite"

    def _connect(self):
        import sqlite3

        return sqlite3.connect(":memory:")


class DuckDBBackend(SqlEngineBackend):
    """DuckDB, when its wheel is installed (the ``backends`` extra)."""

    name = "duckdb"

    @classmethod
    def missing_reason(cls) -> Optional[str]:
        return _config_missing_reason("duckdb")

    def _connect(self):
        import duckdb

        return duckdb.connect(":memory:")


#: Backend classes by mode name (the sim backend registers in
#: :mod:`repro.backends.__init__` to avoid importing operator modules
#: from here).
ENGINE_BACKENDS = {
    SQLiteBackend.name: SQLiteBackend,
    DuckDBBackend.name: DuckDBBackend,
}


def make_engine(mode: str) -> SqlEngineBackend:
    """Instantiate the engine backend for ``mode`` (or raise)."""
    try:
        cls = ENGINE_BACKENDS[mode]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine backend {mode!r}; "
            f"known: {', '.join(sorted(ENGINE_BACKENDS))}"
        ) from None
    reason = cls.missing_reason()
    if reason is not None:
        raise ConfigurationError(reason)
    return cls()
