"""The standalone cross-backend equivalence gate.

``python -m repro.backends.gate`` executes every serving template through
the operator simulator and each requested engine, canonicalizes the
result bags, and fails (exit 1) on any disagreement.  CI runs it as a
merge gate: no timing of an engine arm is trustworthy unless the engine
and the simulator answer every query identically, and bag comparison is
deterministic even where engine timings are not.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.backends.config import ENGINE_MODES, missing_reason
from repro.backends.serving import gate_template
from repro.errors import EquivalenceError
from repro.workload.jobs import JobCatalog, serving_templates


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.backends.gate",
        description="cross-backend result-bag equivalence gate",
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=ENGINE_MODES,
        help="engine(s) to gate against (default: every available engine)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="gate at the full (non-quick) pricing caps",
    )
    args = parser.parse_args(argv)

    modes = args.backend
    if not modes:
        modes = []
        for mode in ENGINE_MODES:
            reason = missing_reason(mode)
            if reason is None:
                modes.append(mode)
            else:
                print(f"skip {mode}: {reason}")
    else:
        for mode in modes:
            reason = missing_reason(mode)
            if reason is not None:
                print(reason, file=sys.stderr)
                return 2

    catalog = JobCatalog(quick=not args.full)
    failures = 0
    for name in sorted(serving_templates()):
        template = serving_templates()[name]
        for mode in modes:
            try:
                digest = gate_template(catalog, template, mode)
            except EquivalenceError as exc:
                failures += 1
                print(f"FAIL sim vs {mode} on {name}: {exc}")
            else:
                print(f"ok   sim vs {mode} on {name}: {digest[:12]}")
    if failures:
        print(f"{failures} equivalence failure(s)", file=sys.stderr)
        return 1
    print(f"all templates equivalent across sim + {', '.join(modes)}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
