"""Materialize one job template's physical data for every backend.

All backends — the operator simulator and the real engines — must query
*the same physical rows*, or bag equivalence would be vacuous.  This
module is the single source of that data: it reproduces exactly the
stand-in tables :meth:`repro.workload.jobs.JobCatalog._price` generates
(same generators, same pricing seed, same physical caps), bundled with
the logical sizes the cost envelope scales measured profiles up to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

import numpy as np

from repro.tables import generate_join_relation_pair, generate_tpch
from repro.tables.table import Column, Table
from repro.workload.jobs import JobKind, JobTemplate


@dataclass(frozen=True)
class Dataset:
    """One template's materialized tables plus its sizing metadata."""

    template: JobTemplate
    seed: int
    row_cap: int
    sf_cap: float
    tables: Mapping[str, Table]
    #: Query parameters derived during materialization (e.g. the scan
    #: range bounds, which depend on the physical row count).
    params: Dict[str, int] = field(default_factory=dict)

    @property
    def physical_bytes(self) -> int:
        """Bytes actually materialized (what an engine holds in memory)."""
        return int(sum(t.physical_bytes for t in self.tables.values()))

    @property
    def logical_bytes(self) -> float:
        """The template's full logical size (what the cost model prices)."""
        return float(sum(t.logical_bytes for t in self.tables.values()))

    @property
    def physical_rows(self) -> int:
        return int(sum(t.num_rows for t in self.tables.values()))


def materialize(
    template: JobTemplate, *, seed: int, row_cap: int, sf_cap: float
) -> Dataset:
    """The physical stand-in data of ``template`` at the given caps.

    Matches the catalog's pricing runs field for field: join pairs come
    from :func:`generate_join_relation_pair` at ``seed``/``row_cap``,
    scans over ``arange(physical)`` with the ``[0, physical // 10]``
    range, TPC-H from :func:`generate_tpch` at ``seed``/``sf_cap``.
    """
    if template.kind is JobKind.JOIN:
        build, probe = generate_join_relation_pair(
            template.build_bytes,
            template.probe_bytes,
            seed=seed,
            physical_row_cap=row_cap,
        )
        tables: Dict[str, Table] = {"r": build, "s": probe}
        params: Dict[str, int] = {}
    elif template.kind is JobKind.SCAN:
        logical_rows = int(template.scan_bytes // 4)
        physical = max(1, min(row_cap, logical_rows))
        tables = {
            "scan_values": Table(
                "scan_values",
                [Column("v", np.arange(physical, dtype=np.int32))],
                sim_scale=logical_rows / physical,
            )
        }
        params = {"scan_lower": 0, "scan_upper": physical // 10}
    else:  # TPCH (JobTemplate.__post_init__ rejects anything else)
        data = generate_tpch(
            template.scale_factor, seed=seed, physical_sf_cap=sf_cap
        )
        tables = {
            "customer": data.customer,
            "orders": data.orders,
            "lineitem": data.lineitem,
            "part": data.part,
        }
        params = {}
    return Dataset(
        template=template,
        seed=seed,
        row_cap=row_cap,
        sf_cap=sf_cap,
        tables=dict(tables),
        params=params,
    )
