"""The backend protocol: prepare a dataset, execute a query, return rows.

A :class:`Backend` is one way of running a job template's logical query:
the operator-level simulator (:class:`~repro.backends.sim.SimBackend`) or
a real SQL engine (:mod:`repro.backends.engines`).  All implementations
share one contract:

* ``prepare(dataset) -> handle`` loads the template's materialized data
  (same physical rows for every backend — see
  :mod:`repro.backends.dataset`);
* ``execute(handle, query) -> (rows, MeasuredProfile)`` runs one query
  and returns the *result bag* (a list of tuples, the equivalence gate's
  input) plus a measured profile.

Profiles are explicit about their epistemic status: the simulator's
seconds are **simulated** (byte-deterministic, reportable); an engine's
seconds are **wall-clock** (nondeterministic, only ever consumed through
the checked-in calibration artifact — see
:mod:`repro.backends.calibrate`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.backends.dataset import Dataset, materialize
from repro.backends.sqlgen import render_sql
from repro.workload.jobs import JobTemplate

#: One result bag: a list of row tuples (ints / floats / None).
Rows = List[Tuple[Any, ...]]


@dataclass(frozen=True)
class BackendQuery:
    """One executable query: the template plus its SQL rendering."""

    template: JobTemplate
    sql: str


@dataclass(frozen=True)
class MeasuredProfile:
    """What one backend execution measured.

    ``simulated`` distinguishes deterministic simulated seconds (the sim
    backend) from wall-clock measurements (real engines).  Wall-clock
    values must never reach a report or trace directly; they enter the
    deterministic path only via the calibration artifact.
    """

    backend: str
    template: str
    prepare_s: float
    execute_s: float
    rows: int
    physical_bytes: int
    logical_bytes: float
    working_set_bytes: int
    simulated: bool


@dataclass(frozen=True)
class BackendHandle:
    """An opaque prepared dataset (engines add their connection)."""

    backend: str
    dataset: Dataset
    prepare_s: float = 0.0
    state: Any = None


class Backend(abc.ABC):
    """One execution backend for job templates."""

    #: Mode string (matches :data:`repro.backends.config.BACKEND_MODES`).
    name: str = "backend"

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return cls.missing_reason() is None

    @classmethod
    def missing_reason(cls) -> Optional[str]:
        """Why the backend cannot run (``None``: it can)."""
        return None

    @abc.abstractmethod
    def prepare(self, dataset: Dataset) -> BackendHandle:
        """Load ``dataset`` and return a handle for :meth:`execute`."""

    @abc.abstractmethod
    def execute(
        self, handle: BackendHandle, query: BackendQuery
    ) -> Tuple[Rows, MeasuredProfile]:
        """Run ``query`` against the prepared data; rows + profile."""

    # -- convenience -----------------------------------------------------

    def run_template(
        self, template: JobTemplate, *, seed: int, row_cap: int, sf_cap: float
    ) -> Tuple[Rows, MeasuredProfile]:
        """Materialize, prepare, and execute ``template`` in one call."""
        dataset = materialize(
            template, seed=seed, row_cap=row_cap, sf_cap=sf_cap
        )
        handle = self.prepare(dataset)
        query = BackendQuery(
            template=template, sql=render_sql(template, dataset)
        )
        try:
            return self.execute(handle, query)
        finally:
            close = getattr(handle.state, "close", None)
            if close is not None:
                close()
