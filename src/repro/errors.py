"""Exception hierarchy for the SGXv2 OLAP reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or combined with invalid parameters."""


class CapacityError(ReproError):
    """A simulated hardware capacity (EPC, DRAM, cache) would be exceeded."""


class EnclaveError(ReproError):
    """Enclave lifecycle violation (wrong state, missing measurement, ...)."""


class EnclaveStateError(EnclaveError):
    """An enclave operation was attempted in an invalid lifecycle state."""


class EpcExhaustedError(CapacityError, EnclaveError):
    """The Enclave Page Cache on the requested NUMA node is full."""


class AllocationError(ReproError):
    """A simulated memory allocation could not be satisfied."""


class AccessViolationError(ReproError):
    """Untrusted code touched enclave memory, or an enclave touched a freed
    region.  The real hardware would raise a page fault / abort; we raise."""


class ExecutionError(ReproError):
    """A simulated parallel execution could not be scheduled or completed."""


class PlanError(ReproError):
    """A query plan is malformed (unknown column, type mismatch, ...)."""


class BenchmarkError(ReproError):
    """A benchmark experiment was configured or invoked incorrectly."""


class ZeroLengthWindowError(BenchmarkError):
    """Records exist but span a zero-length window, so a rate is undefined.

    Distinct from the no-records case: the caller *has* data (e.g. a
    single instantaneous completion) and may legitimately render every
    other metric — only the per-second rates are meaningless."""


class CacheError(ReproError):
    """A result-cache key could not be built or an entry is malformed."""


class EquivalenceError(BenchmarkError):
    """Two backends disagreed on a query's result bag.

    Raised by the cross-backend equivalence gate *before* any timing is
    reported: a backend whose rows differ from the reference bag must not
    contribute performance numbers, because it did not run the same query."""
