"""Task-queue contention model (Fig. 10, Sec. 4.4).

Parallel joins distribute partition/join tasks through a shared queue.  The
queue flavour barely matters outside an enclave, but inside one an SDK-mutex
queue collapses under contention: a contended acquisition costs an enclave
transition, and while the owner is mid-transition the lock stays held, so
ever more threads arrive at a locked mutex (the avalanche).  The model below
computes a self-consistent contention ratio from the task granularity and
the (state-dependent) cost of one queue operation, which operators then
record on their profiles via :func:`repro.enclave.sync.record_lock_ops`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.enclave.sync import LockKind
from repro.hardware.calibration import CostParameters

#: Queue operations per task: one push by the producer, one pop by a worker.
OPS_PER_TASK = 2

_MAX_CONTENTION = 0.95
_FIXED_POINT_ROUNDS = 25


@dataclass(frozen=True)
class QueueUsage:
    """Resolved queue behaviour for one parallel run."""

    kind: LockKind
    operations_per_thread: int
    contention_ratio: float
    lock_cycles: float


class TaskQueueModel:
    """Computes contention for a shared task queue under a given load."""

    def __init__(self, kind: LockKind, params: CostParameters) -> None:
        self.kind = kind
        self._params = params

    def _lock_cycles(self, contention: float, enclave_mode: bool) -> float:
        """Cost of one queue operation at a given contention level."""
        params = self._params
        if self.kind is LockKind.SDK_MUTEX:
            if enclave_mode:
                return params.atomic_op_cycles + (
                    contention * params.transition_cycles * params.mutex_avalanche_factor
                )
            return params.atomic_op_cycles + contention * params.futex_syscall_cycles * 0.5
        if self.kind is LockKind.SPIN_LOCK:
            return params.atomic_op_cycles * (1.0 + 5.0 * contention)
        # Lock-free: one CAS, retried under contention.
        return params.atomic_op_cycles * (1.0 + 2.0 * contention)

    def resolve(
        self, *, tasks: int, threads: int, task_cycles: float, enclave_mode: bool
    ) -> QueueUsage:
        """Fixed-point solve for the contention ratio of this workload.

        ``task_cycles`` is the average work per task; small tasks relative
        to the queue-operation cost force contention toward saturation.
        """
        if tasks < 0:
            raise ConfigurationError("tasks must be non-negative")
        if threads < 1:
            raise ConfigurationError("threads must be >= 1")
        if task_cycles < 0:
            raise ConfigurationError("task_cycles must be non-negative")
        contention = 0.0
        lock_cycles = self._lock_cycles(contention, enclave_mode)
        if threads > 1 and tasks > 0:
            for _ in range(_FIXED_POINT_ROUNDS):
                lock_cycles = self._lock_cycles(contention, enclave_mode)
                # Probability that another thread holds the queue when one
                # arrives: the fraction of a task period the queue is busy,
                # summed over the other threads.
                busy_fraction = (
                    (threads - 1)
                    * OPS_PER_TASK
                    * lock_cycles
                    / max(task_cycles + OPS_PER_TASK * lock_cycles, 1.0)
                )
                contention = min(_MAX_CONTENTION, busy_fraction)
        ops_per_thread = (tasks * OPS_PER_TASK + threads - 1) // threads
        return QueueUsage(
            kind=self.kind,
            operations_per_thread=ops_per_thread,
            contention_ratio=contention,
            lock_cycles=lock_cycles,
        )
