"""Phase-structured parallel execution over the cost model.

The paper's join and scan implementations are bulk-synchronous: threads run
a phase (histogram, partition, build, probe, ...) to completion, meet at a
barrier, and continue.  :class:`ParallelExecutor` prices one phase by
pricing each thread's access profile independently under a shared
:class:`~repro.memory.cost_model.CostEnvironment` (threads in a phase share
the bandwidth domains) and taking the slowest thread plus the barrier cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ExecutionError
from repro.enclave.runtime import ExecutionSetting
from repro.exec.placement import Placement
from repro.memory.access import AccessProfile
from repro.memory.cost_model import CostEnvironment, MemoryCostModel
from repro.trace.tracer import current_tracer

#: Fixed cycles for one barrier rendezvous, plus a per-thread component.
_BARRIER_BASE_CYCLES = 200.0
_BARRIER_PER_THREAD_CYCLES = 30.0


@dataclass(frozen=True)
class PhaseResult:
    """Timing outcome of one bulk-synchronous phase."""

    name: str
    cycles: float
    per_thread_cycles: Sequence[float]

    @property
    def threads(self) -> int:
        return len(self.per_thread_cycles)

    @property
    def imbalance(self) -> float:
        """Slowest over mean thread time (1.0 = perfectly balanced)."""
        if not self.per_thread_cycles:
            return 1.0
        mean = sum(self.per_thread_cycles) / len(self.per_thread_cycles)
        if mean == 0:
            return 1.0
        return max(self.per_thread_cycles) / mean


@dataclass
class ExecutionTrace:
    """Accumulated phases of one operator run."""

    phases: List[PhaseResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(phase.cycles for phase in self.phases)

    def phase_cycles(self, name: str) -> float:
        """Summed cycles of every phase with ``name``."""
        return sum(p.cycles for p in self.phases if p.name == name)

    def breakdown(self) -> Dict[str, float]:
        """Phase-name -> cycles map (phases with equal names are summed)."""
        result: Dict[str, float] = {}
        for phase in self.phases:
            result[phase.name] = result.get(phase.name, 0.0) + phase.cycles
        return result


class ParallelExecutor:
    """Prices bulk-synchronous phases for a fixed placement and setting."""

    def __init__(
        self,
        cost_model: MemoryCostModel,
        setting: ExecutionSetting,
        placement: Placement,
    ) -> None:
        self.cost_model = cost_model
        self.setting = setting
        self.placement = placement
        self.trace = ExecutionTrace()

    @property
    def threads(self) -> int:
        return self.placement.threads

    def environment(self, thread_index: int, concurrency: Optional[int] = None) -> CostEnvironment:
        """Cost environment for one thread of this executor."""
        return CostEnvironment(
            enclave_mode=self.setting.enclave_mode,
            thread_node=self.placement.node_of(thread_index),
            concurrency=concurrency if concurrency is not None else self.threads,
        )

    def run_phase(
        self,
        name: str,
        thread_profiles: Sequence[AccessProfile],
        *,
        barrier: bool = True,
    ) -> PhaseResult:
        """Price one phase; ``thread_profiles[i]`` ran on placement core i.

        Fewer profiles than threads means the remaining cores idled through
        the phase (they still wait at the barrier).
        """
        if len(thread_profiles) > self.threads:
            raise ExecutionError(
                f"phase {name!r} has {len(thread_profiles)} profiles for "
                f"{self.threads} threads"
            )
        if not thread_profiles:
            raise ExecutionError(f"phase {name!r} has no work")
        concurrency = len(thread_profiles)
        per_thread = []
        for index, profile in enumerate(thread_profiles):
            env = self.environment(index, concurrency)
            per_thread.append(self.cost_model.profile_cycles(profile, env))
        cycles = max(per_thread)
        if barrier and self.threads > 1:
            cycles += _BARRIER_BASE_CYCLES + _BARRIER_PER_THREAD_CYCLES * self.threads
        result = PhaseResult(name=name, cycles=cycles, per_thread_cycles=tuple(per_thread))
        tracer = current_tracer()
        if tracer.enabled:
            # Span start is the executor-relative cycle count: phases are
            # bulk-synchronous, so the accumulated total is the phase's
            # begin time on this executor's simulated clock.
            tracer.span(
                name,
                category="operator-phase",
                start=self.trace.total_cycles,
                duration=cycles,
                unit="cycles",
                threads=concurrency,
                imbalance=result.imbalance,
                **self.setting.trace_attrs(),
            )
        self.trace.phases.append(result)
        return result

    def run_uniform_phase(self, name: str, profile: AccessProfile) -> PhaseResult:
        """Price a phase where every thread executes ``profile`` verbatim.

        Used when work is statically split into equal shares: build the
        per-thread share once and replicate it.
        """
        return self.run_phase(name, [profile] * self.threads)

    def total_cycles(self) -> float:
        """Cycles accumulated over all phases run so far."""
        return self.trace.total_cycles

    def seconds(self) -> float:
        """Elapsed simulated seconds over all phases."""
        return self.trace.total_cycles / self.cost_model.spec.base_frequency_hz
