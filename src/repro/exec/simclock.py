"""Simulated cycle counter (the RDTSCP stand-in).

The paper measures with ``RDTSCP`` because it is the only high-precision
clock available both inside and outside an enclave.  Our equivalent is a
monotonically advancing cycle counter that operators and the executor move
forward by priced amounts; conversions to wall-clock seconds use the fixed
2.9 GHz base frequency of the testbed (Turbo Boost disabled, Sec. 3).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import cycles_to_seconds


class SimClock:
    """A monotone simulated cycle counter with interval support."""

    def __init__(self, frequency_hz: float) -> None:
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        self.frequency_hz = frequency_hz
        self._cycles = 0.0
        self._marks = []

    @property
    def cycles(self) -> float:
        """Total cycles elapsed since construction."""
        return self._cycles

    @property
    def seconds(self) -> float:
        """Total elapsed simulated wall-clock time."""
        return cycles_to_seconds(self._cycles, self.frequency_hz)

    def advance(self, cycles: float) -> None:
        """Advance the clock; negative advances are rejected."""
        if cycles < 0:
            raise ConfigurationError(f"cannot advance clock by {cycles} cycles")
        self._cycles += cycles

    def mark(self) -> None:
        """Push the current time (RDTSCP at measurement start)."""
        self._marks.append(self._cycles)

    def elapsed_since_mark(self) -> float:
        """Pop the most recent mark and return cycles elapsed since it."""
        if not self._marks:
            raise ConfigurationError("no mark set on clock")
        return self._cycles - self._marks.pop()
