"""Thread placement: which cores execute an operator.

The paper pins threads to physical cores from the (trusted) OS before they
enter the enclave, because SGX itself exposes no affinity control (Sec. 3,
Sec. 4.3).  A :class:`Placement` is an ordered list of core ids; helpers
construct the configurations the NUMA experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.hardware.topology import Topology


@dataclass(frozen=True)
class Placement:
    """An ordered assignment of simulated threads to physical cores."""

    core_ids: Tuple[int, ...]
    topology: Topology

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ConfigurationError("a placement needs at least one core")
        if len(set(self.core_ids)) != len(self.core_ids):
            raise ConfigurationError(
                "threads must be pinned to distinct physical cores "
                "(the paper avoids hyper-thread sharing)"
            )
        for core_id in self.core_ids:
            self.topology.core(core_id)  # validates existence

    def __len__(self) -> int:
        return len(self.core_ids)

    @property
    def threads(self) -> int:
        return len(self.core_ids)

    def node_of(self, thread_index: int) -> int:
        """NUMA node of the ``thread_index``-th thread."""
        if not 0 <= thread_index < len(self.core_ids):
            raise ConfigurationError(f"no thread {thread_index} in placement")
        return self.topology.node_of_core(self.core_ids[thread_index])

    def nodes(self) -> List[int]:
        """Per-thread NUMA node list."""
        return [self.topology.node_of_core(c) for c in self.core_ids]

    @classmethod
    def on_node(cls, topology: Topology, node: int, threads: int) -> "Placement":
        """All threads on one socket (the paper's default: 16 on node 0)."""
        return cls(tuple(topology.cores_on_node(node, threads)), topology)

    @classmethod
    def all_cores(cls, topology: Topology) -> "Placement":
        """Every physical core of the machine (the 32-thread NUMA case)."""
        cores: Sequence[int] = range(topology.spec.total_cores)
        return cls(tuple(cores), topology)

    @classmethod
    def single(cls, topology: Topology, core: int = 0) -> "Placement":
        """One pinned thread (the single-threaded experiments)."""
        return cls((core,), topology)
