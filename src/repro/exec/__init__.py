"""Simulated parallel execution: placement, phases, task queues, clock."""

from repro.exec.simclock import SimClock
from repro.exec.placement import Placement
from repro.exec.queue import TaskQueueModel
from repro.exec.executor import ParallelExecutor, PhaseResult

__all__ = [
    "SimClock",
    "Placement",
    "TaskQueueModel",
    "ParallelExecutor",
    "PhaseResult",
]
