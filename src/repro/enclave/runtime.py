"""Execution settings: the paper's three benchmark configurations (Sec. 3).

1. **Plain CPU** — native execution, data in untrusted memory; the baseline
   with no protections and no overheads.
2. **SGX (Data in Enclave)** — code runs in enclave mode and all inputs,
   intermediate structures, and outputs live in the EPC.
3. **SGX (Data outside Enclave)** — code runs in enclave mode but operates
   on untrusted memory, isolating code-execution effects from memory
   encryption effects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Mode(enum.Enum):
    """Whether code executes natively or inside an SGX enclave."""

    PLAIN = "plain"
    SGX = "sgx"


@dataclass(frozen=True)
class ExecutionSetting:
    """One of the paper's execution settings (mode x data location)."""

    mode: Mode
    data_in_enclave: bool
    label: str

    def __post_init__(self) -> None:
        if self.mode is Mode.PLAIN and self.data_in_enclave:
            raise ConfigurationError(
                "plain CPU execution cannot place data inside an enclave"
            )

    @property
    def enclave_mode(self) -> bool:
        """True when code executes inside an enclave."""
        return self.mode is Mode.SGX

    def trace_attrs(self) -> dict:
        """Stable identifying attributes for trace records.

        Every charge the cost model prices under this setting is tagged
        with these keys, so a breakdown reporter can slice one exported
        trace by setting without re-running anything.
        """
        return {
            "setting": self.label,
            "mode": self.mode.value,
            "data_in_enclave": self.data_in_enclave,
        }

    @classmethod
    def plain_cpu(cls) -> "ExecutionSetting":
        """Native execution over untrusted memory (the baseline)."""
        return cls(Mode.PLAIN, data_in_enclave=False, label="Plain CPU")

    @classmethod
    def sgx_data_in_enclave(cls) -> "ExecutionSetting":
        """Enclave execution over EPC-resident data."""
        return cls(Mode.SGX, data_in_enclave=True, label="SGX (Data in Enclave)")

    @classmethod
    def sgx_data_outside_enclave(cls) -> "ExecutionSetting":
        """Enclave execution over untrusted data (isolates code effects)."""
        return cls(Mode.SGX, data_in_enclave=False, label="SGX (Data outside Enclave)")

    @classmethod
    def all_settings(cls) -> tuple:
        """The three settings, in the order the paper's figures use."""
        return (
            cls.plain_cpu(),
            cls.sgx_data_in_enclave(),
            cls.sgx_data_outside_enclave(),
        )
