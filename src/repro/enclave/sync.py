"""Synchronization primitives and their SGX cost signatures (Sec. 4.4).

The SGX SDK mutex parks waiting threads *outside* the enclave: a contended
acquisition triggers an OCALL, a futex wait, and an ERESUME — tens of
thousands of cycles for a critical section of tens of cycles.  Worse, while
the owner is mid-transition waking the next waiter, the lock stays held, so
late arrivals also leave the enclave (the avalanche effect).  Spin locks and
lock-free structures never leave enclave mode and keep their native cost.

Operators record lock traffic on their access profiles through
:func:`record_lock_ops`; the pricing itself lives in
:meth:`repro.memory.cost_model.MemoryCostModel.sync_cycles` so that the one
cost model prices everything.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError
from repro.memory.access import AccessProfile


class LockKind(enum.Enum):
    """The synchronization flavours compared in Fig. 10."""

    #: The SGX SDK / pthread mutex (OS-assisted sleeping under contention).
    SDK_MUTEX = "sdk_mutex"
    #: A userspace spin lock (stays in enclave mode).
    SPIN_LOCK = "spin_lock"
    #: A lock-free structure (e.g. the Boost lock-free queue the paper
    #: adopts as the RHO task queue); one atomic RMW per operation.
    LOCK_FREE = "lock_free"


def record_lock_ops(
    profile: AccessProfile,
    kind: LockKind,
    operations: int,
    contention_ratio: float,
) -> None:
    """Record ``operations`` acquisitions/queue-ops of ``kind`` on ``profile``.

    ``contention_ratio`` is the fraction of operations that find the lock
    (or the contended cache line) already taken; 0 means uncontended.
    """
    if operations < 0:
        raise ConfigurationError("operations must be non-negative")
    if not 0.0 <= contention_ratio <= 1.0:
        raise ConfigurationError("contention_ratio must be within [0, 1]")
    if kind is LockKind.SDK_MUTEX:
        previous = profile.sync.mutex_acquisitions
        total = previous + operations
        if total > 0:
            profile.sync.mutex_contention_ratio = (
                profile.sync.mutex_contention_ratio * previous
                + contention_ratio * operations
            ) / total
        profile.sync.mutex_acquisitions = total
    elif kind is LockKind.SPIN_LOCK:
        profile.sync.spinlock_acquisitions += operations
        # Spinning costs scale with contention through the spin-wait term
        # in the cost model; reuse the mutex contention field is wrong, so
        # fold contention into extra atomic traffic instead.
        profile.sync.atomic_ops += int(operations * contention_ratio * 4)
    elif kind is LockKind.LOCK_FREE:
        # One CAS per operation, plus retries proportional to contention.
        profile.sync.atomic_ops += operations + int(
            operations * contention_ratio * 2
        )
    else:  # pragma: no cover - exhaustive enum
        raise ConfigurationError(f"unknown lock kind {kind}")
