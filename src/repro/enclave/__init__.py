"""Simulated SGXv2 enclaves: lifecycle, EDMM, execution settings, sync."""

from repro.enclave.enclave import Enclave, EnclaveConfig, EnclaveState
from repro.enclave.runtime import ExecutionSetting, Mode
from repro.enclave.sync import LockKind, record_lock_ops

__all__ = [
    "Enclave",
    "EnclaveConfig",
    "EnclaveState",
    "ExecutionSetting",
    "Mode",
    "LockKind",
    "record_lock_ops",
]
