"""Enclave lifecycle and (dynamic) enclave memory management.

An :class:`Enclave` owns a statically pre-allocated EPC heap (the size the
SGX SDK reserves at ``ECREATE``/``EINIT`` time from the ``HeapMaxSize``
configuration) and optionally grows via SGXv2's EDMM (``EAUG`` +
``EACCEPT``) in 4 KiB pages.  Section 4.4 / Fig. 11 of the paper shows that
growing the enclave during a join collapses throughput to 4.5 % of the
statically-sized enclave; the page ledger kept here is what lets operators
charge those costs to their access profiles.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List

from repro.errors import CapacityError, ConfigurationError, EnclaveStateError
from repro.memory.access import AccessProfile
from repro.memory.allocator import MemoryAllocator, Region
from repro.trace.tracer import current_tracer
from repro.units import PAGE_BYTES


class EnclaveState(enum.Enum):
    """Lifecycle states (simplified ECREATE/EINIT/destroy protocol)."""

    CREATED = "created"
    INITIALIZED = "initialized"
    DESTROYED = "destroyed"


@dataclass(frozen=True)
class EnclaveConfig:
    """Build-time configuration of an enclave.

    ``heap_bytes`` is the statically committed EPC heap; ``dynamic`` enables
    EDMM growth up to ``max_bytes``.  A well-configured OLAP enclave sizes
    ``heap_bytes`` for the whole query (the paper's recommendation); the
    dynamic path exists to reproduce Fig. 11.
    """

    heap_bytes: int
    node: int = 0
    dynamic: bool = False
    max_bytes: int = 0

    def __post_init__(self) -> None:
        if self.heap_bytes < 0:
            raise ConfigurationError("heap_bytes must be non-negative")
        if self.dynamic and self.max_bytes < self.heap_bytes:
            raise ConfigurationError(
                "a dynamic enclave needs max_bytes >= heap_bytes"
            )


class Enclave:
    """A running enclave: EPC heap accounting plus the EDMM page ledger."""

    def __init__(self, config: EnclaveConfig, allocator: MemoryAllocator) -> None:
        self.config = config
        self._allocator = allocator
        self.state = EnclaveState.CREATED
        self._heap_region = allocator.allocate(
            "enclave-heap", config.heap_bytes, node=config.node, in_enclave=True
        )
        self._heap_used = 0
        self._dynamic_bytes = 0
        self._regions: List[Region] = []
        self.pages_added_total = 0

    # -- lifecycle -------------------------------------------------------

    def initialize(self) -> None:
        """EINIT: the enclave becomes usable."""
        if self.state is not EnclaveState.CREATED:
            raise EnclaveStateError(f"cannot initialize enclave in state {self.state}")
        self.state = EnclaveState.INITIALIZED
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(
                "enclave.init",
                heap_bytes=self.config.heap_bytes,
                dynamic=self.config.dynamic,
                max_bytes=self.config.max_bytes,
                node=self.config.node,
            )

    def destroy(self) -> None:
        """Tear the enclave down and release all EPC (idempotent).

        Crash-recovery paths tear enclaves down from error handlers that
        cannot know whether a previous handler already ran; a second
        ``destroy`` must therefore be a no-op, never an error.
        """
        if self.state is EnclaveState.DESTROYED:
            return
        for region in self._regions:
            if not region.freed:
                self._allocator.free(region)
        if not self._heap_region.freed:
            self._allocator.free(self._heap_region)
        self.state = EnclaveState.DESTROYED

    def _require_initialized(self) -> None:
        if self.state is not EnclaveState.INITIALIZED:
            raise EnclaveStateError(
                f"enclave must be initialized (state is {self.state.value})"
            )

    # -- memory ----------------------------------------------------------

    @property
    def node(self) -> int:
        return self.config.node

    @property
    def heap_free_bytes(self) -> int:
        return self.config.heap_bytes - self._heap_used

    @property
    def total_bytes(self) -> int:
        """Committed EPC: static heap plus dynamically added pages."""
        return self.config.heap_bytes + self._dynamic_bytes

    def allocate(
        self, name: str, size_bytes: int, profile: AccessProfile = None
    ) -> Region:
        """Allocate enclave memory, growing via EDMM when the heap is full.

        When ``profile`` is given, the page costs (static first-touch or
        EAUG/EACCEPT) are recorded on it so the cost model can price them.
        """
        self._require_initialized()
        if size_bytes < 0:
            raise ConfigurationError("allocation size must be non-negative")
        pages = math.ceil(size_bytes / PAGE_BYTES) if size_bytes else 0
        from_heap = min(size_bytes, self.heap_free_bytes)
        overflow = size_bytes - from_heap
        dynamic_pages = math.ceil(overflow / PAGE_BYTES) if overflow else 0
        if dynamic_pages:
            if not self.config.dynamic:
                raise CapacityError(
                    f"enclave heap exhausted allocating {name!r}: "
                    f"{self.heap_free_bytes} B free, {size_bytes} B requested "
                    "(enclave is statically sized)"
                )
            if self.total_bytes + overflow > self.config.max_bytes:
                raise CapacityError(
                    f"dynamic enclave limit exceeded allocating {name!r}"
                )
        # Dynamically added pages occupy EPC beyond the pre-reserved heap.
        if dynamic_pages:
            region = self._commit_dynamic(name, dynamic_pages)
        else:
            # Heap-backed allocations reuse the big heap region; hand out a
            # zero-cost view with the heap's placement.
            region = Region(
                region_id=-len(self._regions) - 1,
                name=name,
                size_bytes=size_bytes,
                node=self.config.node,
                in_enclave=True,
            )
        self._heap_used += from_heap
        if profile is not None:
            profile.sync.pages_touched_statically += pages - dynamic_pages
            profile.sync.pages_added_dynamically += dynamic_pages
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(
                "enclave.alloc",
                region=name,
                bytes=size_bytes,
                pages_static=pages - dynamic_pages,
                pages_dynamic=dynamic_pages,
                heap_free_bytes=self.heap_free_bytes,
            )
            tracer.count("enclave.allocations")
            if dynamic_pages:
                tracer.count("enclave.pages_added_dynamically", dynamic_pages)
        return region

    def grow(self, name: str, size_bytes: int, profile: AccessProfile = None) -> Region:
        """EDMM growth (``EAUG`` + ``EACCEPT``): commit new EPC pages.

        The public growth primitive the mid-query EDMM path uses: rounds
        ``size_bytes`` up to whole pages, charges them to ``profile`` when
        given, and raises :class:`~repro.errors.CapacityError` when the
        enclave is statically sized or the dynamic limit is exceeded —
        the failure the EDMM_DENIED fault injects at the serving layer.
        """
        self._require_initialized()
        if size_bytes <= 0:
            raise ConfigurationError("growth size must be positive")
        if not self.config.dynamic:
            raise CapacityError(
                f"cannot grow {name!r}: enclave is statically sized"
            )
        pages = math.ceil(size_bytes / PAGE_BYTES)
        if self.total_bytes + pages * PAGE_BYTES > self.config.max_bytes:
            raise CapacityError(
                f"dynamic enclave limit exceeded growing {name!r}"
            )
        region = self._commit_dynamic(name, pages)
        if profile is not None:
            profile.sync.pages_added_dynamically += pages
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(
                "enclave.grow",
                region=name,
                bytes=size_bytes,
                pages=pages,
                total_bytes=self.total_bytes,
            )
            tracer.count("enclave.pages_added_dynamically", pages)
        return region

    def _commit_dynamic(self, name: str, pages: int) -> Region:
        """Ledger bookkeeping shared by ``allocate`` overflow and ``grow``."""
        region = self._allocator.allocate(
            name,
            pages * PAGE_BYTES,
            node=self.config.node,
            in_enclave=True,
        )
        self._regions.append(region)
        self._dynamic_bytes += pages * PAGE_BYTES
        self.pages_added_total += pages
        return region

    def release_heap(self, size_bytes: int) -> None:
        """Return heap bytes (simplified free for reusable scratch space)."""
        self._require_initialized()
        if size_bytes < 0 or size_bytes > self._heap_used:
            raise ConfigurationError("invalid heap release size")
        self._heap_used -= size_bytes
