"""Job templates: the unit of work a serving engine admits and schedules.

A :class:`JobTemplate` names one query shape a tenant submits — a TPC-H
plan, an ad-hoc foreign-key join, or a column scan — at a fixed thread
count.  The :class:`JobCatalog` prices each template **once** per execution
setting by running it for real through the existing operators (the same
machinery the figure experiments use) and caches the result as a
:class:`JobProfile`: service seconds per setting plus the EPC working set
one execution occupies.  The serving simulation then replays thousands of
queries against those priced profiles without re-running the operators.

The EPC working set is measured, not estimated: one pricing run under
``SGX (Data in Enclave)`` records how much of the statically committed
enclave heap the query's base tables, scratch structures, and intermediates
consumed — exactly the quantity an EPC-aware admission controller must
budget for (Sec. 2: working sets beyond the EPC force paging; Fig. 11:
growing the enclave mid-query collapses throughput).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.cache.keys import query_profile_key
from repro.cache.profile import profile_memo
from repro.core.queries.executor import QueryExecutor
from repro.core.queries.tpch_queries import TPCH_QUERIES
from repro.core.scans.predicate import RangePredicate
from repro.core.scans.simd_scan import BitvectorScan
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.planner.candidates import (
    PlanCandidate,
    PlanHints,
    build_join,
    static_candidate,
)
from repro.tables import generate_join_relation_pair, generate_tpch
from repro.tables.table import Column
from repro.trace import NullTracer, use_tracer

#: Physical data caps for pricing runs (smaller than the figure experiments'
#: caps: a serving catalog prices several templates per experiment).
QUICK_ROW_CAP = 60_000
FULL_ROW_CAP = 200_000
QUICK_SF_CAP = 0.01
FULL_SF_CAP = 0.02


class JobKind(enum.Enum):
    """What a job template executes."""

    TPCH = "tpch"
    JOIN = "join"
    SCAN = "scan"


@dataclass(frozen=True)
class JobTemplate:
    """One query shape at a fixed degree of parallelism.

    ``threads`` is the core reservation the scheduler makes while the job
    runs; service time is priced at exactly that thread count.
    """

    name: str
    kind: JobKind
    threads: int = 4
    query: str = ""  # TPCH: plan name (Q3/Q10/Q12/Q19)
    scale_factor: float = 1.0  # TPCH: logical scale factor
    build_bytes: float = 0.0  # JOIN: logical input sizes
    probe_bytes: float = 0.0
    scan_bytes: float = 0.0  # SCAN: logical column size
    #: Optional pins on the planner's candidate space (None: all free).
    #: Templates describe *logical* work; physical choices belong to the
    #: planner, and hints are the sanctioned way to constrain it.
    plan_hints: Optional[PlanHints] = None

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigurationError("a job template needs >= 1 thread")
        if self.kind is JobKind.TPCH and self.query not in TPCH_QUERIES:
            raise ConfigurationError(
                f"job {self.name!r}: unknown TPC-H query {self.query!r}"
            )
        if self.kind is JobKind.JOIN and (
            self.build_bytes <= 0 or self.probe_bytes <= 0
        ):
            raise ConfigurationError(
                f"job {self.name!r}: join templates need positive input sizes"
            )
        if self.kind is JobKind.SCAN and self.scan_bytes <= 0:
            raise ConfigurationError(
                f"job {self.name!r}: scan templates need a positive column size"
            )


@dataclass(frozen=True)
class JobProfile:
    """Priced costs of one template: per-setting service time + footprint."""

    name: str
    threads: int
    working_set_bytes: int
    service_seconds_by_setting: Mapping[str, float] = field(default_factory=dict)

    def service_seconds(self, setting: ExecutionSetting) -> float:
        try:
            return self.service_seconds_by_setting[setting.label]
        except KeyError:
            raise ConfigurationError(
                f"job {self.name!r} was not priced under {setting.label!r}"
            ) from None


@dataclass(frozen=True)
class JobCost:
    """What the scheduler needs about one template under one setting."""

    name: str
    threads: int
    service_s: float
    working_set_bytes: int


class JobCatalog:
    """Prices job templates through the real operators, with caching.

    One catalog serves one experiment: it holds the machine prototype (spec
    and calibration; fresh state per pricing run), the fidelity mode, and
    the pricing seed, so every profile is deterministic.
    """

    #: The settings every template is priced under.
    SETTINGS = (
        ExecutionSetting.plain_cpu(),
        ExecutionSetting.sgx_data_in_enclave(),
    )

    def __init__(
        self,
        machine: Optional[SimMachine] = None,
        *,
        quick: bool = True,
        pricing_seed: int = 13,
        variant: CodeVariant = CodeVariant.UNROLLED,
    ) -> None:
        self._machine = machine
        self.quick = quick
        self.pricing_seed = pricing_seed
        #: Code variant of the join/query kernels (scans are SIMD kernels
        #: regardless).  UNROLLED is the paper's optimized engine; NAIVE
        #: models a lift-and-shift port (Fig. 17: +42 % average overhead).
        self.variant = variant
        #: Priced profiles by (template name, backend group): the sim
        #: path and each engine mode price differently, so they must not
        #: share cache entries.
        self._profiles: Dict[Tuple[str, str], JobProfile] = {}
        self._candidate_costs: Dict[
            Tuple[str, str, PlanCandidate], JobCost
        ] = {}
        #: Templates seen so far, by name.  Profiles and candidate costs
        #: are cached by template *name*, so two distinct templates
        #: sharing a name would silently reuse the first one's pricing;
        #: :meth:`_register` rejects that instead.
        self._templates: Dict[str, JobTemplate] = {}
        #: (template, mode) pairs the cross-backend equivalence gate has
        #: passed for this catalog (see :mod:`repro.backends.serving`).
        self._backend_gated: set = set()

    @property
    def row_cap(self) -> int:
        return QUICK_ROW_CAP if self.quick else FULL_ROW_CAP

    @property
    def sf_cap(self) -> float:
        return QUICK_SF_CAP if self.quick else FULL_SF_CAP

    def _fresh_machine(self) -> SimMachine:
        if self._machine is None:
            return SimMachine()
        return SimMachine(self._machine.spec, self._machine.params)

    def machine_prototype(self) -> SimMachine:
        """A machine carrying the catalog's spec (for EPC capacities)."""
        return self._fresh_machine()

    def _register(self, template: JobTemplate) -> None:
        """Reject a second template reusing a cached template's name.

        Every cache in the catalog is keyed by ``template.name``; handing
        back another template's pricing because the names collide would be
        a silent correctness bug, so a name may only ever map to one set
        of template fields per catalog.
        """
        known = self._templates.get(template.name)
        if known is None:
            self._templates[template.name] = template
        elif known != template:
            raise ConfigurationError(
                f"job template name {template.name!r} is already registered "
                "with different fields; the catalog caches pricing by name, "
                "so distinct templates need distinct names"
            )

    # -- pricing ---------------------------------------------------------

    def profile(self, template: JobTemplate) -> JobProfile:
        """The (cached) priced profile of ``template``.

        Under an ambient engine backend mode (``--backend sqlite|duckdb``)
        the profile comes from the engine's calibrated measurement priced
        through the SGX cost envelope; otherwise (default / ``sim``) from
        pricing runs of the operator simulator.  Both paths cache here,
        so each template is priced (and, for engines, equivalence-gated)
        once per catalog.
        """
        self._register(template)
        # Late imports: repro.backends imports this module for the
        # simulator backend, so the bridge cannot be a top-level import.
        from repro.backends.config import ENGINE_MODES, current_backend_mode

        mode = current_backend_mode()
        group = mode if mode in ENGINE_MODES else "sim"
        cached = self._profiles.get((template.name, group))
        if cached is not None:
            return cached
        if group != "sim":
            from repro.backends.serving import engine_profile

            profile = engine_profile(self, template, mode)
            self._profiles[(template.name, group)] = profile
            return profile
        service: Dict[str, float] = {}
        working_set = 0
        for setting in self.SETTINGS:
            seconds, footprint = self._price(template, setting)
            service[setting.label] = seconds
            if footprint is not None:
                working_set = footprint
        profile = JobProfile(
            name=template.name,
            threads=template.threads,
            working_set_bytes=working_set,
            service_seconds_by_setting=service,
        )
        self._profiles[(template.name, group)] = profile
        return profile

    def cost(self, template: JobTemplate, setting: ExecutionSetting) -> JobCost:
        """Scheduler-facing costs of ``template`` under ``setting``."""
        profile = self.profile(template)
        return JobCost(
            name=profile.name,
            threads=profile.threads,
            service_s=profile.service_seconds(setting),
            working_set_bytes=profile.working_set_bytes,
        )

    def candidate_cost(
        self,
        template: JobTemplate,
        setting: ExecutionSetting,
        candidate: PlanCandidate,
    ) -> JobCost:
        """Costs of ``template`` executed with ``candidate``'s plan.

        Priced through the same real-operator machinery as :meth:`cost`
        (one run per (template, setting, candidate), cached); this is how
        planner arms acquire the service time and EPC working set the
        serving scheduler charges.
        """
        self._register(template)
        key = (template.name, setting.label, candidate)
        cached = self._candidate_costs.get(key)
        if cached is not None:
            return cached
        seconds, footprint = self._price(template, setting, candidate)
        cost = JobCost(
            name=template.name,
            threads=candidate.threads,
            service_s=seconds,
            working_set_bytes=footprint or 0,
        )
        self._candidate_costs[key] = cost
        return cost

    def _price(
        self,
        template: JobTemplate,
        setting: ExecutionSetting,
        candidate: Optional[PlanCandidate] = None,
    ) -> Tuple[float, Optional[int]]:
        """Run ``template`` once under ``setting``; seconds + EPC footprint.

        ``candidate`` fixes the physical plan; ``None`` prices the
        historical static choice (RHO at the catalog's variant for joins
        and TPC-H plans, the SIMD scan kernel for scans).

        Pricing is *silent* (it runs under a ``NullTracer``): a pricing
        run is catalog bookkeeping, not measured serving work, and it is
        memoized through the ambient :func:`~repro.cache.profile_memo` —
        trace bytes therefore cannot depend on whether the operators
        actually ran or the memo answered.
        """
        if candidate is None:
            candidate = static_candidate(template, self.variant)
        storage = None
        if candidate.spill:
            from repro.storage.config import current_storage

            storage = current_storage()
            if storage is None:
                raise ConfigurationError(
                    f"spill candidate {candidate.label()!r} cannot be "
                    "priced without a storage budget (--storage)"
                )
        memo = profile_memo()
        key = ""
        if memo.enabled:
            proto = self._machine
            key = query_profile_key(
                kind="catalog-price",
                template=template,
                setting=setting,
                candidate=candidate,
                pricing_seed=self.pricing_seed,
                row_cap=self.row_cap,
                sf_cap=self.sf_cap,
                params=proto.params if proto is not None else None,
                spec=proto.spec if proto is not None else None,
                storage=storage,
            )
            hit = memo.get(key)
            if hit is not None:
                footprint = hit["footprint"]
                return (
                    float(hit["seconds"]),
                    int(footprint) if footprint is not None else None,
                )
        sim = self._fresh_machine()
        store = None
        budget = None
        if storage is not None:
            from repro.storage.sealed import SealedStore

            store = SealedStore(sim.params, block_bytes=storage.block_bytes)
            budget = float(storage.budget_bytes)
        with use_tracer(NullTracer()), sim.context(
            setting, threads=candidate.threads
        ) as ctx:
            if template.kind is JobKind.JOIN:
                build, probe = generate_join_relation_pair(
                    template.build_bytes,
                    template.probe_bytes,
                    seed=self.pricing_seed,
                    physical_row_cap=self.row_cap,
                )
                result = build_join(
                    candidate, store=store, budget_bytes=budget
                ).run(ctx, build, probe)
                seconds = result.seconds(sim.frequency_hz)
            elif template.kind is JobKind.SCAN:
                logical_rows = int(template.scan_bytes // 4)
                physical = max(1, min(self.row_cap, logical_rows))
                column = Column(
                    "values", np.arange(physical, dtype=np.int32)
                )
                predicate = RangePredicate(0, physical // 10)
                result = BitvectorScan(CodeVariant.SIMD).run(
                    ctx,
                    column,
                    predicate,
                    sim_scale=logical_rows / physical,
                )
                seconds = result.seconds(sim.frequency_hz)
            elif template.kind is JobKind.TPCH:
                data = generate_tpch(
                    template.scale_factor,
                    seed=self.pricing_seed,
                    physical_sf_cap=self.sf_cap,
                )
                tables = {
                    "customer": data.customer,
                    "orders": data.orders,
                    "lineitem": data.lineitem,
                    "part": data.part,
                }
                plan = TPCH_QUERIES[template.query]()
                result = QueryExecutor(
                    candidate.variant,
                    join_factory=lambda: build_join(
                        candidate, store=store, budget_bytes=budget
                    ),
                ).run(ctx, plan, tables)
                seconds = result.seconds(sim.frequency_hz)
            else:  # pragma: no cover - enum is exhaustive
                raise ConfigurationError(f"unknown job kind {template.kind!r}")
            footprint = None
            if ctx.enclave is not None:
                # Everything the query allocated came out of the statically
                # committed heap; the consumed share is its EPC working set.
                footprint = int(
                    ctx.enclave.config.heap_bytes - ctx.enclave.heap_free_bytes
                )
        if memo.enabled:
            memo.put(key, {"seconds": seconds, "footprint": footprint})
        return seconds, footprint


def serving_templates() -> Dict[str, JobTemplate]:
    """The canonical multi-tenant template set the wl experiments draw from.

    Sizes are chosen to span three regimes: a sub-100-ms single-threaded
    scan (the interactive tenant), a mid-size parallel ad-hoc join, and two
    full TPC-H plans whose working sets dominate an EPC budget.
    """
    return {
        "scan-small": JobTemplate(
            name="scan-small", kind=JobKind.SCAN, threads=1, scan_bytes=64e6
        ),
        "join-medium": JobTemplate(
            name="join-medium",
            kind=JobKind.JOIN,
            threads=4,
            build_bytes=50e6,
            probe_bytes=200e6,
        ),
        "join-big": JobTemplate(
            name="join-big",
            kind=JobKind.JOIN,
            threads=4,
            build_bytes=200e6,
            probe_bytes=800e6,
        ),
        "q12": JobTemplate(
            name="q12", kind=JobKind.TPCH, threads=4, query="Q12",
            scale_factor=1.0,
        ),
        "q3": JobTemplate(
            name="q3", kind=JobKind.TPCH, threads=4, query="Q3",
            scale_factor=1.0,
        ),
    }
