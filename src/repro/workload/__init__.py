"""Concurrent multi-tenant query serving on the SGXv2 simulator.

The figure experiments run one query at a time with exclusive ownership of
the machine; this package turns the same simulator into a *serving system*:
workload generators produce concurrent query streams, an enclave-aware
scheduler admits them against a shared EPC budget and core pool, and a
metrics layer reports the latency/throughput quantities a production
deployment cares about.  The ``wl01``-``wl05`` experiments in
:mod:`repro.bench.experiments` are built entirely on this package.

Physical plan choices come from :mod:`repro.planner`: templates describe
logical work (plus optional ``plan_hints``), and a
:class:`~repro.workload.engine.WorkloadConfig`'s ``planner`` mode decides
whether the scheduler serves the historical static plans, the cost-based
choice, or an adaptive bandit refining from observed latencies.
"""

from repro.workload.engine import ServingEngine, WorkloadConfig
from repro.workload.generators import (
    Arrival,
    ClosedLoopStream,
    OpenLoopStream,
    QueryMix,
)
from repro.workload.jobs import (
    JobCatalog,
    JobCost,
    JobKind,
    JobProfile,
    JobTemplate,
    serving_templates,
)
from repro.workload.metrics import (
    FailureRecord,
    MetricsRegistry,
    QueryRecord,
    SchedulerCounters,
    WorkloadMetrics,
    percentile,
)
from repro.workload.policies import (
    AdmissionPolicy,
    EpcAwarePolicy,
    FifoPolicy,
    ResourceState,
    make_policy,
)
from repro.workload.scheduler import (
    EDMM_OVERFLOW_SLOWDOWN,
    INTERFERENCE_FACTOR,
    SchedulerLoop,
    WorkloadScheduler,
)

__all__ = [
    "Arrival",
    "AdmissionPolicy",
    "ClosedLoopStream",
    "EDMM_OVERFLOW_SLOWDOWN",
    "EpcAwarePolicy",
    "FailureRecord",
    "FifoPolicy",
    "INTERFERENCE_FACTOR",
    "JobCatalog",
    "JobCost",
    "JobKind",
    "JobProfile",
    "JobTemplate",
    "MetricsRegistry",
    "OpenLoopStream",
    "QueryMix",
    "QueryRecord",
    "ResourceState",
    "SchedulerCounters",
    "SchedulerLoop",
    "ServingEngine",
    "WorkloadConfig",
    "WorkloadMetrics",
    "WorkloadScheduler",
    "make_policy",
    "percentile",
    "serving_templates",
]
