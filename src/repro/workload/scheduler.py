"""The enclave-aware serving scheduler: a simulated-time event loop.

Queries arrive (open-loop streams are pre-generated, closed-loop clients
resubmit on completion), wait in one arrival-ordered queue, and are
dispatched by an admission policy against two shared resources:

* a **core pool** — each running query reserves its template's thread
  count for its whole service time (the paper pins threads to physical
  cores before entering the enclave, Sec. 3; a serving system must
  partition them);
* an **EPC budget** — each running query holds its measured working set.
  Admitting past the budget means the enclave grows mid-query (EDMM) or
  pages: the overflowing share of the working set is served at a heavy
  penalty (Fig. 11 measures the collapse; we charge
  :data:`EDMM_OVERFLOW_SLOWDOWN` per overflowing byte fraction).

Service times are the catalog's priced per-query times, adjusted by two
deterministic factors frozen at dispatch: the EDMM overflow penalty and a
mild memory-bandwidth interference term proportional to how many other
cores are already busy (concurrent streams share the bandwidth domains the
cost model otherwise prices per-phase).

Everything — arrivals, mixes, dispatch order, tie-breaking — is a pure
function of the workload configuration and its seeds: two runs of the same
config produce identical metrics.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.trace.breakdown import (
    ARRIVAL,
    DISPATCH,
    EDMM_OVERFLOW,
    FINISH,
    RUN_END,
    RUN_START,
)
from repro.trace.tracer import current_tracer
from repro.workload.generators import Arrival, ClosedLoopStream, OpenLoopStream
from repro.workload.jobs import JobCost
from repro.workload.metrics import QueryRecord, SchedulerCounters, WorkloadMetrics
from repro.workload.policies import AdmissionPolicy, ResourceState

#: Service-time multiplier per fraction of the working set beyond the EPC
#: budget.  Fig. 11 measures a 22x collapse when the *whole* working set is
#: EDMM-grown; a query overflowing by fraction f pays 1 + f * this factor
#: (fully overflowing -> 10x, a conservative stand-in for growth + paging).
EDMM_OVERFLOW_SLOWDOWN = 9.0

#: Service-time multiplier per fraction of other cores busy at dispatch.
#: Concurrent queries share the memory bandwidth the cost model assumes a
#: lone query owns; 0.25 caps the penalty at +25 % on a fully busy machine.
INTERFERENCE_FACTOR = 0.25

# Event ordering: completions free resources before same-instant arrivals.
_FINISH = 0
_ARRIVAL = 1


@dataclass
class PendingQuery:
    """One submitted query waiting for (or holding) resources."""

    query_id: int
    stream: str
    template: str
    client: int
    arrival_s: float
    threads: int
    service_s: float
    working_set_bytes: int


class WorkloadScheduler:
    """Serves one workload configuration over simulated time."""

    def __init__(
        self,
        costs: Mapping[str, JobCost],
        policy: AdmissionPolicy,
        *,
        cores: int,
        epc_budget_bytes: float,
        setting_label: str,
    ) -> None:
        if cores < 1:
            raise ConfigurationError("the core pool needs at least one core")
        if epc_budget_bytes <= 0:
            raise ConfigurationError("the EPC budget must be positive")
        for cost in costs.values():
            if cost.threads > cores:
                raise ConfigurationError(
                    f"job {cost.name!r} needs {cost.threads} cores but the "
                    f"pool has {cores}"
                )
        self._costs = dict(costs)
        self._policy = policy
        self._cores = cores
        self._epc_budget = float(epc_budget_bytes)
        self._setting_label = setting_label

    # -- the event loop --------------------------------------------------

    def run(
        self,
        *,
        open_streams: Sequence[OpenLoopStream] = (),
        closed_streams: Sequence[ClosedLoopStream] = (),
        duration_s: float,
    ) -> WorkloadMetrics:
        """Simulate until every submitted query completes."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if not open_streams and not closed_streams:
            raise ConfigurationError("the workload needs at least one stream")
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(
                RUN_START,
                time_s=0.0,
                setting=self._setting_label,
                policy=self._policy.label,
                cores=self._cores,
                epc_budget_bytes=self._epc_budget,
                duration_s=duration_s,
            )
        counters = SchedulerCounters()
        records: List[QueryRecord] = []
        queue: Deque[PendingQuery] = deque()
        running: Dict[int, PendingQuery] = {}
        closed_by_name = {s.name: s for s in closed_streams}
        closed_rngs: Dict[str, random.Random] = {
            s.name: s.session_rng() for s in closed_streams
        }
        free_cores = self._cores
        epc_used = 0.0
        epc_high_water = 0.0
        next_id = 0
        seq = 0

        # (time, kind, seq, payload): kind breaks same-instant ties so a
        # finishing query releases its cores before a new arrival is seen.
        events: List[Tuple[float, int, int, object]] = []

        def push(time_s: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (time_s, kind, seq, payload))
            seq += 1

        for stream in open_streams:
            for arrival in stream.arrivals(duration_s):
                push(arrival.time_s, _ARRIVAL, arrival)
        for stream in closed_streams:
            for arrival in stream.initial_arrivals(closed_rngs[stream.name]):
                push(arrival.time_s, _ARRIVAL, arrival)

        def dispatch(now: float) -> None:
            nonlocal free_cores, epc_used, epc_high_water
            while True:
                state = ResourceState(
                    free_cores=free_cores,
                    total_cores=self._cores,
                    epc_used_bytes=epc_used,
                    epc_budget_bytes=self._epc_budget,
                )
                decision = self._policy.pick(queue, state)
                if decision is None:
                    if queue:
                        if self._policy.last_block_reason == "epc":
                            counters.blocked_on_epc += 1
                        elif self._policy.last_block_reason == "cores":
                            counters.blocked_on_cores += 1
                    return
                pending = queue[decision.queue_index]
                del queue[decision.queue_index]
                busy_before = self._cores - free_cores
                # The dispatch-time service decomposition: a frozen base
                # service time, plus two additive penalties the trace
                # attributes separately (the breakdown reporter re-derives
                # the paper-style split from exactly these three terms).
                interference_s = (
                    pending.service_s
                    * INTERFERENCE_FACTOR
                    * busy_before
                    / self._cores
                )
                service = pending.service_s + interference_s
                edmm_penalty_s = 0.0
                if decision.overflow_bytes > 0:
                    overflow_fraction = (
                        decision.overflow_bytes / pending.working_set_bytes
                    )
                    edmm_penalty_s = (
                        service * EDMM_OVERFLOW_SLOWDOWN * overflow_fraction
                    )
                    service += edmm_penalty_s
                    counters.edmm_admissions += 1
                    if tracer.enabled:
                        tracer.event(
                            EDMM_OVERFLOW,
                            time_s=now,
                            query_id=pending.query_id,
                            stream=pending.stream,
                            template=pending.template,
                            overflow_bytes=decision.overflow_bytes,
                            overflow_fraction=overflow_fraction,
                            penalty_s=edmm_penalty_s,
                        )
                if decision.bypassed:
                    counters.bypass_dispatches += 1
                if now == pending.arrival_s:
                    counters.dispatched_immediately += 1
                free_cores -= pending.threads
                epc_used += pending.working_set_bytes
                epc_high_water = max(epc_high_water, epc_used)
                if tracer.enabled:
                    tracer.event(
                        DISPATCH,
                        time_s=now,
                        query_id=pending.query_id,
                        stream=pending.stream,
                        template=pending.template,
                        queue_wait_s=now - pending.arrival_s,
                        base_service_s=pending.service_s,
                        interference_s=interference_s,
                        edmm_penalty_s=edmm_penalty_s,
                        overflow_bytes=decision.overflow_bytes,
                        bypassed=decision.bypassed,
                        free_cores=free_cores,
                        epc_used_bytes=epc_used,
                    )
                    tracer.gauge("scheduler.epc_high_water_bytes", epc_high_water)
                running[pending.query_id] = pending
                push(
                    now + service,
                    _FINISH,
                    _Finish(
                        query_id=pending.query_id,
                        start_s=now,
                        overflow_bytes=decision.overflow_bytes,
                        bypassed=decision.bypassed,
                    ),
                )

        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                arrival = payload
                cost = self._cost_of(arrival.template)
                counters.arrivals += 1
                pending = PendingQuery(
                    query_id=next_id,
                    stream=arrival.stream,
                    template=arrival.template,
                    client=arrival.client,
                    arrival_s=now,
                    threads=cost.threads,
                    service_s=cost.service_s,
                    working_set_bytes=cost.working_set_bytes,
                )
                next_id += 1
                if tracer.enabled:
                    tracer.event(
                        ARRIVAL,
                        time_s=now,
                        query_id=pending.query_id,
                        stream=pending.stream,
                        template=pending.template,
                        queue_depth=len(queue),
                    )
                queue.append(pending)
                # No resources were freed since the last dispatch round, so
                # the only query this round can admit is the new arrival:
                # an unchanged queue length means it stayed queued (an O(1)
                # check; scanning the deque re-compared every field).
                depth_before = len(queue)
                dispatch(now)
                if len(queue) == depth_before:
                    counters.queued += 1
            else:
                finish = payload
                pending = running.pop(finish.query_id)
                free_cores += pending.threads
                epc_used -= pending.working_set_bytes
                counters.completed += 1
                if tracer.enabled:
                    tracer.event(
                        FINISH,
                        time_s=now,
                        query_id=pending.query_id,
                        stream=pending.stream,
                        template=pending.template,
                        latency_s=now - pending.arrival_s,
                        service_s=now - finish.start_s,
                    )
                records.append(
                    QueryRecord(
                        query_id=pending.query_id,
                        stream=pending.stream,
                        template=pending.template,
                        client=pending.client,
                        arrival_s=pending.arrival_s,
                        start_s=finish.start_s,
                        finish_s=now,
                        working_set_bytes=pending.working_set_bytes,
                        overflow_bytes=finish.overflow_bytes,
                        bypassed=finish.bypassed,
                    )
                )
                stream = closed_by_name.get(pending.stream)
                if stream is not None and now < duration_s:
                    push(
                        *_arrival_event(
                            stream.next_arrival(
                                closed_rngs[stream.name], pending.client, now
                            )
                        )
                    )
                dispatch(now)

        metrics = WorkloadMetrics(
            setting_label=self._setting_label,
            policy=self._policy.label,
            records=sorted(records, key=lambda r: r.query_id),
            counters=counters,
            epc_budget_bytes=self._epc_budget,
            epc_high_water_bytes=int(epc_high_water),
            duration_s=duration_s,
        )
        if tracer.enabled:
            for name, value in counters.as_dict().items():
                tracer.count(f"scheduler.{name}", value)
            tracer.event(
                RUN_END,
                time_s=metrics.makespan_s,
                setting=self._setting_label,
                policy=self._policy.label,
                completed=counters.completed,
                epc_high_water_bytes=int(epc_high_water),
            )
        return metrics

    def _cost_of(self, template: str) -> JobCost:
        try:
            return self._costs[template]
        except KeyError:
            known = ", ".join(sorted(self._costs))
            raise ConfigurationError(
                f"no priced cost for template {template!r}; known: {known}"
            ) from None


@dataclass(frozen=True)
class _Finish:
    query_id: int
    start_s: float
    overflow_bytes: int
    bypassed: bool


def _arrival_event(arrival: Arrival) -> Tuple[float, int, Arrival]:
    return arrival.time_s, _ARRIVAL, arrival
