"""The enclave-aware serving scheduler: a simulated-time event loop.

Queries arrive (open-loop streams are pre-generated, closed-loop clients
resubmit on completion), wait in one arrival-ordered queue, and are
dispatched by an admission policy against two shared resources:

* a **core pool** — each running query reserves its template's thread
  count for its whole service time (the paper pins threads to physical
  cores before entering the enclave, Sec. 3; a serving system must
  partition them);
* an **EPC budget** — each running query holds its measured working set.
  Admitting past the budget means the enclave grows mid-query (EDMM) or
  pages: the overflowing share of the working set is served at a heavy
  penalty (Fig. 11 measures the collapse; we charge
  :data:`EDMM_OVERFLOW_SLOWDOWN` per overflowing byte fraction).

Service times are the catalog's priced per-query times, adjusted by two
deterministic factors frozen at dispatch: the EDMM overflow penalty and a
mild memory-bandwidth interference term proportional to how many other
cores are already busy (concurrent streams share the bandwidth domains the
cost model otherwise prices per-phase).

**Faults and resilience** (:mod:`repro.faults`): with an injector
installed, dispatched services can be inflated by AEX storms, aborted by
mid-service crashes, denied EDMM growth, poisoned per-template, or starved
by an EPC squeeze; with a :class:`~repro.faults.ResiliencePolicy` the
scheduler retries failed attempts with jittered backoff, sheds load
through a per-tenant circuit breaker, bounds attempts with a timeout, and
degrades gracefully under squeeze.  All fault paths stay cold under the
default :data:`~repro.faults.NULL_INJECTOR`, so an un-faulted run is
byte-identical to a pre-fault build.

**Multiplexing** (:mod:`repro.cluster`): the event loop lives in
:class:`SchedulerLoop`, a steppable object exposing ``peek``/``step`` so a
cluster scheduler can interleave many shards' loops on one simulated
clock, plus ``submit``/``evict``/``reject`` so routed arrivals, shard
crashes, and dead-shard rejections cross shard boundaries.  A shard label
threads into every trace event's attrs (``shard=...``) so tee'd shards
stay distinguishable; un-sharded runs omit the attr and stay
byte-identical to the pre-cluster build.  :meth:`WorkloadScheduler.run`
is now a thin drain of one loop — same events, same order, same bytes.

Everything — arrivals, mixes, dispatch order, tie-breaking, fault draws,
retry jitter — is a pure function of the workload configuration and its
seeds: two runs of the same config produce identical metrics.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.faults.injector import NULL_INJECTOR, CrashDraw, NullInjector
from repro.faults.resilience import (
    DEGRADED_SLOWDOWN,
    CircuitBreaker,
    ResiliencePolicy,
)
from repro.planner.adaptive import PlanSelector
from repro.trace.breakdown import (
    ARRIVAL,
    ATTEMPT_FAILED,
    BREAKER_OPEN,
    DEGRADED,
    DISPATCH,
    EDMM_OVERFLOW,
    FAILED,
    FAULT_AEX,
    FAULT_CRASH,
    FAULT_EDMM_DENIED,
    FAULT_STORAGE_STALL,
    FAULT_TORN_BLOCK,
    FINISH,
    PLANNER_CHOICE,
    PLANNER_OBSERVE,
    RETRY,
    RUN_END,
    RUN_START,
    SHED,
    SPILL,
)
from repro.storage.sealed import SpillModel
from repro.trace.tracer import current_tracer
from repro.workload.generators import Arrival, ClosedLoopStream, OpenLoopStream
from repro.workload.jobs import JobCost
from repro.workload.metrics import (
    FailureRecord,
    QueryRecord,
    SchedulerCounters,
    WorkloadMetrics,
)
from repro.workload.policies import AdmissionPolicy, ResourceState

#: Service-time multiplier per fraction of the working set beyond the EPC
#: budget.  Fig. 11 measures a 22x collapse when the *whole* working set is
#: EDMM-grown; a query overflowing by fraction f pays 1 + f * this factor
#: (fully overflowing -> 10x, a conservative stand-in for growth + paging).
EDMM_OVERFLOW_SLOWDOWN = 9.0

#: Service-time multiplier per fraction of other cores busy at dispatch.
#: Concurrent queries share the memory bandwidth the cost model assumes a
#: lone query owns; 0.25 caps the penalty at +25 % on a fully busy machine.
INTERFERENCE_FACTOR = 0.25

# Event ordering: completions free resources before same-instant wake-ups,
# and both before same-instant arrivals.
_FINISH = 0
_WAKE = 1
_ARRIVAL = 2


@dataclass
class PendingQuery:
    """One submitted query waiting for (or holding) resources."""

    query_id: int
    stream: str
    template: str
    client: int
    arrival_s: float
    threads: int
    service_s: float
    working_set_bytes: int
    attempt: int = 0  # retries already burned (0 = first attempt)
    arm: str = ""  # the planner arm serving this query ("" = static plan)


class WorkloadScheduler:
    """Serves one workload configuration over simulated time."""

    def __init__(
        self,
        costs: Mapping[str, JobCost],
        policy: AdmissionPolicy,
        *,
        cores: int,
        epc_budget_bytes: float,
        setting_label: str,
        injector: Optional[NullInjector] = None,
        resilience: Optional[ResiliencePolicy] = None,
        selector: Optional[PlanSelector] = None,
        storage: Optional[SpillModel] = None,
        shard: str = "",
        query_id_base: int = 0,
    ) -> None:
        if cores < 1:
            raise ConfigurationError("the core pool needs at least one core")
        if epc_budget_bytes <= 0:
            raise ConfigurationError("the EPC budget must be positive")
        for cost in costs.values():
            if cost.threads > cores:
                raise ConfigurationError(
                    f"job {cost.name!r} needs {cost.threads} cores but the "
                    f"pool has {cores}"
                )
        self._costs = dict(costs)
        self._policy = policy
        self._cores = cores
        self._epc_budget = float(epc_budget_bytes)
        self._setting_label = setting_label
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._resilience = resilience
        #: Whether any fault machinery is live this run; every fault branch
        #: hides behind this flag so an un-faulted run takes the exact
        #: pre-fault code path (and emits the exact pre-fault trace).
        self._faulting = self._injector.active or resilience is not None
        #: Plan selector (planner modes beyond ``static``).  Every planner
        #: branch hides behind ``selector is not None`` for the same
        #: byte-identity reason the fault branches hide behind _faulting.
        self._selector = selector
        #: Sealed-storage spill model (``--storage BUDGET``).  With one
        #: installed, overflow admissions spill their overflowing share to
        #: sealed untrusted storage instead of paying the EDMM/paging
        #: penalty; without one, every spill branch stays cold and runs
        #: are byte-identical to the pre-storage build.
        self._storage = storage
        #: Shard identity when multiplexed by a cluster scheduler; ""
        #: (un-sharded) suppresses every shard-related trace attr so solo
        #: runs stay byte-identical to the pre-cluster build.
        self._shard = shard
        #: First query id this scheduler assigns.  Shards take disjoint
        #: id ranges so cluster-wide merged records never collide.
        self._query_id_base = query_id_base

    # -- the event loop --------------------------------------------------

    def run(
        self,
        *,
        open_streams: Sequence[OpenLoopStream] = (),
        closed_streams: Sequence[ClosedLoopStream] = (),
        duration_s: float,
    ) -> WorkloadMetrics:
        """Simulate until every submitted query completes or fails."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if not open_streams and not closed_streams:
            raise ConfigurationError("the workload needs at least one stream")
        loop = SchedulerLoop(
            self,
            open_streams=open_streams,
            closed_streams=closed_streams,
            duration_s=duration_s,
        )
        while loop.pending:
            loop.step()
        return loop.result()

    def loop(
        self,
        *,
        open_streams: Sequence[OpenLoopStream] = (),
        closed_streams: Sequence[ClosedLoopStream] = (),
        duration_s: float,
    ) -> "SchedulerLoop":
        """A steppable loop for external multiplexing (cluster serving).

        Unlike :meth:`run` the loop may start with zero streams: a shard
        in a cluster receives every arrival through :meth:`SchedulerLoop.submit`.
        """
        return SchedulerLoop(
            self,
            open_streams=open_streams,
            closed_streams=closed_streams,
            duration_s=duration_s,
        )

    def _cost_of(self, template: str) -> JobCost:
        try:
            return self._costs[template]
        except KeyError:
            known = ", ".join(sorted(self._costs))
            raise ConfigurationError(
                f"no priced cost for template {template!r}; known: {known}"
            ) from None


class SchedulerLoop:
    """One scheduler's event loop, steppable from outside.

    Extracted from the old monolithic ``run`` body so a cluster scheduler
    can multiplex many loops on one simulated clock: ``peek`` exposes the
    next event's ``(time, kind)``, ``step`` processes exactly one event,
    and ``result`` finalises metrics once ``pending`` is False.  Routed
    work crosses shard boundaries through ``submit`` (deliver an arrival,
    optionally priced with a cross-socket shuffle), ``evict`` (a crashing
    shard hands back its queued + running queries), and ``reject`` (a
    dead shard sheds an arrival terminally).

    Event processing is verbatim the old loop body — driving a loop to
    exhaustion yields the same metrics and the same trace bytes as the
    pre-refactor ``run``.
    """

    def __init__(
        self,
        scheduler: WorkloadScheduler,
        *,
        open_streams: Sequence[OpenLoopStream] = (),
        closed_streams: Sequence[ClosedLoopStream] = (),
        duration_s: float,
    ) -> None:
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        self._s = scheduler
        self._duration_s = duration_s
        self._tracer = current_tracer()
        self._injector = scheduler._injector
        self._resilience = scheduler._resilience
        self._faulting = scheduler._faulting
        self._selector = scheduler._selector
        self._spill = scheduler._storage
        self._shard = scheduler._shard
        if self._tracer.enabled:
            self._emit(
                RUN_START,
                time_s=0.0,
                setting=scheduler._setting_label,
                policy=scheduler._policy.label,
                cores=scheduler._cores,
                epc_budget_bytes=scheduler._epc_budget,
                duration_s=duration_s,
            )
        self._counters = SchedulerCounters()
        self._records: List[QueryRecord] = []
        self._failures: List[FailureRecord] = []
        self._downtime_s = 0.0
        self._queue: Deque[PendingQuery] = deque()
        self._running: Dict[int, PendingQuery] = {}
        self._closed_by_name = {s.name: s for s in closed_streams}
        self._closed_rngs: Dict[str, random.Random] = {
            s.name: s.session_rng() for s in closed_streams
        }
        self._breaker: Optional[CircuitBreaker] = None
        if self._resilience is not None:
            self._breaker = CircuitBreaker(
                self._resilience.breaker_threshold,
                self._resilience.breaker_cooldown_s,
            )
        self._free_cores = scheduler._cores
        self._epc_used = 0.0
        self._epc_high_water = 0.0
        self._next_id = scheduler._query_id_base
        self._seq = 0
        self._queued_threads = 0  # incremental; backs the router's load score
        self._reserved: Dict[int, int] = {}  # qid -> EPC bytes held running
        self._cancelled: Set[int] = set()  # qids evicted while running

        # (time, kind, seq, payload): kind breaks same-instant ties so a
        # finishing query releases its cores before a new arrival is seen.
        self._events: List[Tuple[float, int, int, object]] = []

        # Batch-seed the initial event set: append everything, heapify
        # once — O(n) instead of n heappushes, and pop order is unchanged
        # because (time, kind, seq) totally orders events (payloads are
        # never compared), so any heap over the same set drains
        # identically.
        events = self._events
        seq = self._seq
        for stream in open_streams:
            for arrival in stream.arrivals(duration_s):
                events.append((arrival.time_s, _ARRIVAL, seq, arrival))
                seq += 1
        for stream in closed_streams:
            for arrival in stream.initial_arrivals(
                self._closed_rngs[stream.name]
            ):
                events.append((arrival.time_s, _ARRIVAL, seq, arrival))
                seq += 1
        if self._faulting:
            # Fault-window edges that change admission state (a squeeze
            # ending frees budget) must re-run dispatch even if no other
            # event lands on that instant.
            for wake_s in self._injector.wake_times(duration_s):
                events.append((wake_s, _WAKE, seq, None))
                seq += 1
        self._seq = seq
        heapq.heapify(events)

    # -- multiplexing surface ---------------------------------------------

    @property
    def pending(self) -> bool:
        """True while events remain to be stepped."""
        return bool(self._events)

    def peek(self) -> Tuple[float, int]:
        """``(time_s, kind)`` of the next event (events must be pending)."""
        time_s, kind, _, _ = self._events[0]
        return time_s, kind

    @property
    def load_score(self) -> float:
        """Demanded-thread pressure plus EPC pressure, for routing.

        ``(queued + running threads) / cores`` measures compute backlog;
        ``1 - headroom`` measures how full the enclave is.  A shard with
        an idle core pool but an exhausted EPC budget scores high, which
        is exactly the least-EPC-headroom signal the load-aware router
        ranks on.
        """
        busy = self._s._cores - self._free_cores
        compute = (self._queued_threads + busy) / self._s._cores
        return compute + (1.0 - self.epc_headroom_fraction)

    @property
    def epc_headroom_fraction(self) -> float:
        """Free share of the (un-squeezed) EPC budget, clamped to [0, 1]."""
        budget = self._s._epc_budget
        if budget == float("inf"):
            return 1.0
        free = max(0.0, budget - self._epc_used)
        return min(1.0, free / budget)

    def submit(
        self,
        arrival: Arrival,
        *,
        shuffle_s: float = 0.0,
        arrival_s: Optional[float] = None,
        attempt: int = 0,
    ) -> None:
        """Deliver a routed arrival to this shard.

        ``shuffle_s`` adds the cross-socket (or cross-machine) transfer
        time to the query's base service time — priced by the cluster
        router through :meth:`Topology.cross_socket_bytes`.  ``arrival_s``
        preserves the query's *original* submission time across a
        failover re-route, so end-to-end latency covers the lost attempt.
        """
        if shuffle_s == 0.0 and arrival_s is None and attempt == 0:
            self._push(arrival.time_s, _ARRIVAL, arrival)
            return
        self._push(
            arrival.time_s,
            _ARRIVAL,
            _Routed(
                arrival=arrival,
                shuffle_s=shuffle_s,
                arrival_s=arrival_s,
                attempt=attempt,
            ),
        )

    def evict(self, now: float) -> List[PendingQuery]:
        """Hand back every queued and running query (shard crash path).

        Queued queries return in queue order, then running queries in
        query-id order.  Running queries release their cores and EPC here;
        their in-flight finish events are cancelled (stepped over when
        they pop).  The caller re-routes or terminally fails the result.
        """
        victims = list(self._queue)
        self._queue.clear()
        self._queued_threads = 0
        for qid in sorted(self._running):
            pending = self._running[qid]
            self._free_cores += pending.threads
            self._epc_used -= self._reserved.pop(qid)
            self._cancelled.add(qid)
            victims.append(pending)
        self._running.clear()
        return victims

    def reject(self, arrival: Arrival, now: float, outcome: str = "shard_down") -> None:
        """Terminally shed an arrival routed at a dead shard."""
        cost = self._s._cost_of(arrival.template)
        self._counters.arrivals += 1
        pending = PendingQuery(
            query_id=self._next_id,
            stream=arrival.stream,
            template=arrival.template,
            client=arrival.client,
            arrival_s=now,
            threads=cost.threads,
            service_s=cost.service_s,
            working_set_bytes=cost.working_set_bytes,
        )
        self._next_id += 1
        if self._tracer.enabled:
            self._emit(
                ARRIVAL,
                time_s=now,
                query_id=pending.query_id,
                stream=pending.stream,
                template=pending.template,
                queue_depth=len(self._queue),
            )
            self._emit(
                SHED,
                time_s=now,
                query_id=pending.query_id,
                stream=pending.stream,
                template=pending.template,
                retry=False,
            )
        self._counters.shed += 1
        self._failures.append(
            FailureRecord(
                query_id=pending.query_id,
                stream=pending.stream,
                template=pending.template,
                client=pending.client,
                arrival_s=pending.arrival_s,
                failed_s=now,
                attempts=1,
                outcome=outcome,
            )
        )
        if self._tracer.enabled:
            self._emit(
                FAILED,
                time_s=now,
                query_id=pending.query_id,
                stream=pending.stream,
                template=pending.template,
                attempts=1,
                outcome=outcome,
                latency_s=0.0,
            )

    def fail_evicted(
        self, pending: PendingQuery, now: float, outcome: str = "shard_down"
    ) -> None:
        """Terminally fail a query evicted by a shard crash (no failover).

        The query already holds this shard's counters (its arrival was
        counted here), so the terminal failure must land here too —
        otherwise availability would silently ignore the lost work.
        """
        self._counters.failed += 1
        self._failures.append(
            FailureRecord(
                query_id=pending.query_id,
                stream=pending.stream,
                template=pending.template,
                client=pending.client,
                arrival_s=pending.arrival_s,
                failed_s=now,
                attempts=pending.attempt + 1,
                outcome=outcome,
            )
        )
        if self._tracer.enabled:
            self._emit(
                FAILED,
                time_s=now,
                query_id=pending.query_id,
                stream=pending.stream,
                template=pending.template,
                attempts=pending.attempt + 1,
                outcome=outcome,
                latency_s=now - pending.arrival_s,
            )

    # -- internals ---------------------------------------------------------

    def _emit(self, name: str, **attrs: object) -> None:
        if self._shard:
            attrs["shard"] = self._shard
        self._tracer.event(name, **attrs)

    def _push(self, time_s: float, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (time_s, kind, self._seq, payload))
        self._seq += 1

    def _resubmit_closed(self, pending: PendingQuery, now: float) -> None:
        """A closed-loop client moves on after a completion OR a
        terminal failure — otherwise a failure would silently remove
        the client from the workload and drain the stream."""
        stream = self._closed_by_name.get(pending.stream)
        if stream is not None and now < self._duration_s:
            self._push(
                *_arrival_event(
                    stream.next_arrival(
                        self._closed_rngs[stream.name], pending.client, now
                    )
                )
            )

    def _fail_attempt(
        self,
        pending: PendingQuery,
        now: float,
        outcome: str,
        *,
        wasted_s: float = 0.0,
        reinit_s: float = 0.0,
    ) -> None:
        """One attempt failed: retry with backoff, or fail terminally."""
        counters = self._counters
        resilience = self._resilience
        breaker = self._breaker
        if self._tracer.enabled:
            self._emit(
                ATTEMPT_FAILED,
                time_s=now,
                query_id=pending.query_id,
                stream=pending.stream,
                template=pending.template,
                attempt=pending.attempt,
                outcome=outcome,
                wasted_s=wasted_s,
            )
        if breaker is not None and outcome != "shed":
            if breaker.record_failure(pending.stream, now):
                if self._tracer.enabled:
                    self._emit(
                        BREAKER_OPEN,
                        time_s=now,
                        stream=pending.stream,
                        until_s=breaker.open_until(pending.stream),
                        consecutive_failures=breaker.threshold,
                    )
        retryable = (
            resilience is not None
            and outcome != "shed"
            and pending.attempt < resilience.max_retries
        )
        if retryable:
            pending.attempt += 1
            delay_s = (
                resilience.backoff_s(pending.query_id, pending.attempt)
                + reinit_s
            )
            counters.retries += 1
            if self._tracer.enabled:
                self._emit(
                    RETRY,
                    time_s=now,
                    query_id=pending.query_id,
                    stream=pending.stream,
                    template=pending.template,
                    attempt=pending.attempt,
                    delay_s=delay_s,
                    outcome=outcome,
                )
            self._push(now + delay_s, _ARRIVAL, _Retry(pending))
            return
        if outcome == "shed":
            counters.shed += 1
        else:
            counters.failed += 1
        self._failures.append(
            FailureRecord(
                query_id=pending.query_id,
                stream=pending.stream,
                template=pending.template,
                client=pending.client,
                arrival_s=pending.arrival_s,
                failed_s=now,
                attempts=pending.attempt + 1,
                outcome=outcome,
            )
        )
        if self._tracer.enabled:
            self._emit(
                FAILED,
                time_s=now,
                query_id=pending.query_id,
                stream=pending.stream,
                template=pending.template,
                attempts=pending.attempt + 1,
                outcome=outcome,
                latency_s=now - pending.arrival_s,
            )
        self._resubmit_closed(pending, now)

    def _plan_query(self, pending: PendingQuery, now: float) -> None:
        """(Re-)select the physical plan serving this attempt.

        Runs at queue entry — fresh arrivals and retries — so each
        attempt's draw has its own decision identity and a re-planned
        retry may switch arms.  The headroom handed to the selector is
        the momentary free share of the (possibly squeezed) EPC
        budget: what the oracle exploits, and what prices unobserved
        arms for the adaptive selector's cold start.
        """
        selector = self._selector
        budget = self._s._epc_budget
        if self._faulting:
            budget = budget * self._injector.epc_multiplier(now)
        headroom = budget - self._epc_used
        arm = selector.select(
            pending.template,
            pending.query_id,
            pending.attempt,
            headroom_bytes=headroom,
        )
        pending.arm = arm.label
        pending.threads = arm.candidate.threads
        pending.service_s = arm.service_s
        pending.working_set_bytes = arm.working_set_bytes
        if self._tracer.enabled:
            self._emit(
                PLANNER_CHOICE,
                time_s=now,
                query_id=pending.query_id,
                stream=pending.stream,
                template=pending.template,
                attempt=pending.attempt,
                mode=selector.mode,
                arm=arm.label,
                headroom_bytes=headroom,
                service_s=arm.service_s,
                working_set_bytes=arm.working_set_bytes,
            )

    def _dispatch(self, now: float) -> None:
        scheduler = self._s
        counters = self._counters
        injector = self._injector
        resilience = self._resilience
        faulting = self._faulting
        queue = self._queue
        while True:
            budget = scheduler._epc_budget
            if faulting:
                budget = budget * injector.epc_multiplier(now)
            state = ResourceState(
                free_cores=self._free_cores,
                total_cores=scheduler._cores,
                epc_used_bytes=self._epc_used,
                epc_budget_bytes=budget,
            )
            decision = scheduler._policy.pick(queue, state)
            if decision is None:
                if queue:
                    if scheduler._policy.last_block_reason == "epc":
                        counters.blocked_on_epc += 1
                    elif scheduler._policy.last_block_reason == "cores":
                        counters.blocked_on_cores += 1
                return
            pending = queue[decision.queue_index]
            del queue[decision.queue_index]
            self._queued_threads -= pending.threads
            busy_before = scheduler._cores - self._free_cores
            # The dispatch-time service decomposition: a frozen base
            # service time, plus additive penalties the trace
            # attributes separately (the breakdown reporter re-derives
            # the paper-style split from exactly these terms).
            interference_s = (
                pending.service_s
                * INTERFERENCE_FACTOR
                * busy_before
                / scheduler._cores
            )
            service = pending.service_s + interference_s
            edmm_penalty_s = 0.0
            degraded_penalty_s = 0.0
            spill_penalty_s = 0.0
            reserved_bytes = pending.working_set_bytes
            if decision.overflow_bytes > 0 and self._spill is not None:
                # Sealed spill path: the overflowing share of the
                # working set is sealed out to untrusted storage at
                # dispatch and streamed back (unsealed + re-scanned)
                # during service, so only the fitting share is reserved
                # in EPC — no EDMM growth, no Fig. 11 paging collapse,
                # just priced seal/unseal traffic.
                if faulting and injector.torn_block(
                    now, pending.query_id, pending.attempt
                ):
                    # A sealed block failed its AES-GCM tag check on
                    # the way back in: the attempt aborts before the
                    # query held any resources.
                    counters.torn_blocks += 1
                    if self._tracer.enabled:
                        self._emit(
                            FAULT_TORN_BLOCK,
                            time_s=now,
                            query_id=pending.query_id,
                            stream=pending.stream,
                            template=pending.template,
                            attempt=pending.attempt,
                            spilled_bytes=float(decision.overflow_bytes),
                        )
                    self._fail_attempt(pending, now, "torn_block")
                    continue
                reserved_bytes = max(
                    0,
                    pending.working_set_bytes - decision.overflow_bytes,
                )
                seal_s, unseal_s = self._spill.charge(
                    decision.overflow_bytes
                )
                stall = 1.0
                if faulting:
                    stall = injector.storage_stall_multiplier(now)
                stalled = stall > 1.0
                if stalled:
                    seal_s *= stall
                    unseal_s *= stall
                    counters.storage_stalled += 1
                    if self._tracer.enabled:
                        self._emit(
                            FAULT_STORAGE_STALL,
                            time_s=now,
                            query_id=pending.query_id,
                            stream=pending.stream,
                            template=pending.template,
                            inflation=stall,
                        )
                spill_penalty_s = seal_s + unseal_s
                service += spill_penalty_s
                counters.spills += 1
                counters.spilled_bytes += float(decision.overflow_bytes)
                if self._tracer.enabled:
                    self._emit(
                        SPILL,
                        time_s=now,
                        query_id=pending.query_id,
                        stream=pending.stream,
                        template=pending.template,
                        spilled_bytes=float(decision.overflow_bytes),
                        seal_s=seal_s,
                        unseal_s=unseal_s,
                        stalled=stalled,
                        penalty_s=spill_penalty_s,
                    )
            elif decision.overflow_bytes > 0:
                overflow_fraction = (
                    decision.overflow_bytes / pending.working_set_bytes
                )
                if (
                    faulting
                    and resilience is not None
                    and resilience.degrade_on_squeeze
                    and injector.squeezed(now)
                ):
                    # Graceful degradation: admit at a reduced EPC
                    # reservation (only what fits the squeezed budget)
                    # and stream the shortfall through a bounded
                    # buffer — a mild slowdown instead of the Fig. 11
                    # EDMM/paging collapse.
                    reserved_bytes = max(
                        0,
                        pending.working_set_bytes
                        - decision.overflow_bytes,
                    )
                    degraded_penalty_s = (
                        service
                        * DEGRADED_SLOWDOWN
                        * min(1.0, overflow_fraction)
                    )
                    service += degraded_penalty_s
                    counters.degraded += 1
                    if self._tracer.enabled:
                        self._emit(
                            DEGRADED,
                            time_s=now,
                            query_id=pending.query_id,
                            stream=pending.stream,
                            template=pending.template,
                            reserved_bytes=reserved_bytes,
                            shortfall_bytes=decision.overflow_bytes,
                            penalty_s=degraded_penalty_s,
                        )
                elif faulting and injector.edmm_denied(
                    now, pending.query_id, pending.attempt
                ):
                    # Enclave.grow raised CapacityError: the growth
                    # request died before the query held any resources.
                    counters.edmm_denied += 1
                    if self._tracer.enabled:
                        self._emit(
                            FAULT_EDMM_DENIED,
                            time_s=now,
                            query_id=pending.query_id,
                            stream=pending.stream,
                            template=pending.template,
                            attempt=pending.attempt,
                            overflow_bytes=decision.overflow_bytes,
                        )
                    self._fail_attempt(pending, now, "edmm_denied")
                    continue
                else:
                    edmm_penalty_s = (
                        service * EDMM_OVERFLOW_SLOWDOWN * overflow_fraction
                    )
                    service += edmm_penalty_s
                    counters.edmm_admissions += 1
                    if self._tracer.enabled:
                        self._emit(
                            EDMM_OVERFLOW,
                            time_s=now,
                            query_id=pending.query_id,
                            stream=pending.stream,
                            template=pending.template,
                            overflow_bytes=decision.overflow_bytes,
                            overflow_fraction=overflow_fraction,
                            penalty_s=edmm_penalty_s,
                        )
            aex_penalty_s = 0.0
            if faulting:
                inflation = injector.service_multiplier(
                    now, pending.query_id, pending.attempt
                )
                if inflation > 1.0:
                    aex_penalty_s = service * (inflation - 1.0)
                    service += aex_penalty_s
                    counters.aex_inflations += 1
                    if self._tracer.enabled:
                        self._emit(
                            FAULT_AEX,
                            time_s=now,
                            query_id=pending.query_id,
                            stream=pending.stream,
                            template=pending.template,
                            inflation=inflation,
                            penalty_s=aex_penalty_s,
                        )
            # Freeze this attempt's fate at dispatch: poison and
            # crashes are drawn now, and the timeout caps whatever
            # service the faults produced.
            outcome = "ok"
            attempt_s = service
            crash: Optional[CrashDraw] = None
            if faulting:
                if injector.poisoned(now, pending.template):
                    outcome = "poison"
                    counters.poisoned += 1
                else:
                    crash = injector.crash(
                        now, pending.query_id, pending.attempt
                    )
                    if crash is not None:
                        outcome = "crash"
                        attempt_s = service * crash.fraction
                        counters.crashes += 1
                        self._downtime_s += crash.reinit_s
                if (
                    resilience is not None
                    and resilience.timeout_s is not None
                    and attempt_s > resilience.timeout_s
                ):
                    outcome = "timeout"
                    attempt_s = resilience.timeout_s
                    crash = None
                    counters.timeouts += 1
            if decision.bypassed:
                counters.bypass_dispatches += 1
            if now == pending.arrival_s:
                counters.dispatched_immediately += 1
            self._free_cores -= pending.threads
            self._epc_used += reserved_bytes
            self._epc_high_water = max(self._epc_high_water, self._epc_used)
            if self._tracer.enabled:
                dispatch_attrs = dict(
                    time_s=now,
                    query_id=pending.query_id,
                    stream=pending.stream,
                    template=pending.template,
                    queue_wait_s=now - pending.arrival_s,
                    base_service_s=pending.service_s,
                    interference_s=interference_s,
                    edmm_penalty_s=edmm_penalty_s,
                    overflow_bytes=decision.overflow_bytes,
                    bypassed=decision.bypassed,
                    free_cores=self._free_cores,
                    epc_used_bytes=self._epc_used,
                )
                if faulting:
                    dispatch_attrs.update(
                        attempt=pending.attempt,
                        aex_penalty_s=aex_penalty_s,
                        degraded_penalty_s=degraded_penalty_s,
                    )
                if self._spill is not None:
                    dispatch_attrs.update(spill_penalty_s=spill_penalty_s)
                self._emit(DISPATCH, **dispatch_attrs)
                gauge = "scheduler.epc_high_water_bytes"
                if self._shard:
                    gauge = f"{gauge}.{self._shard}"
                self._tracer.gauge(gauge, self._epc_high_water)
            self._running[pending.query_id] = pending
            self._reserved[pending.query_id] = reserved_bytes
            self._push(
                now + attempt_s,
                _FINISH,
                _Finish(
                    query_id=pending.query_id,
                    start_s=now,
                    overflow_bytes=decision.overflow_bytes,
                    bypassed=decision.bypassed,
                    outcome=outcome,
                    reserved_bytes=reserved_bytes,
                    crash=crash,
                ),
            )

    def step(self) -> None:
        """Process exactly one event (events must be pending)."""
        counters = self._counters
        breaker = self._breaker
        selector = self._selector
        queue = self._queue
        now, kind, _, payload = heapq.heappop(self._events)
        if kind == _ARRIVAL:
            if isinstance(payload, _Retry):
                # A retried attempt re-enters the queue like a fresh
                # arrival but keeps its identity (and its original
                # arrival time, so latency covers every attempt).
                pending = payload.pending
                if breaker is not None and breaker.is_open(
                    pending.stream, now
                ):
                    if self._tracer.enabled:
                        self._emit(
                            SHED,
                            time_s=now,
                            query_id=pending.query_id,
                            stream=pending.stream,
                            template=pending.template,
                            retry=True,
                        )
                    self._fail_attempt(pending, now, "shed")
                    return
                if selector is not None:
                    self._plan_query(pending, now)
                queue.append(pending)
                self._queued_threads += pending.threads
                self._dispatch(now)
                return
            shuffle_s = 0.0
            anchor_s: Optional[float] = None
            attempt = 0
            if isinstance(payload, _Routed):
                shuffle_s = payload.shuffle_s
                anchor_s = payload.arrival_s
                attempt = payload.attempt
                arrival = payload.arrival
            else:
                arrival = payload
            cost = self._s._cost_of(arrival.template)
            counters.arrivals += 1
            pending = PendingQuery(
                query_id=self._next_id,
                stream=arrival.stream,
                template=arrival.template,
                client=arrival.client,
                arrival_s=now if anchor_s is None else anchor_s,
                threads=cost.threads,
                service_s=cost.service_s + shuffle_s,
                working_set_bytes=cost.working_set_bytes,
                attempt=attempt,
            )
            self._next_id += 1
            if self._tracer.enabled:
                self._emit(
                    ARRIVAL,
                    time_s=now,
                    query_id=pending.query_id,
                    stream=pending.stream,
                    template=pending.template,
                    queue_depth=len(queue),
                )
            if breaker is not None and breaker.is_open(pending.stream, now):
                # The tenant's breaker is open: fail fast instead of
                # burning cores on a service that is likely doomed.
                if self._tracer.enabled:
                    self._emit(
                        SHED,
                        time_s=now,
                        query_id=pending.query_id,
                        stream=pending.stream,
                        template=pending.template,
                        retry=False,
                    )
                self._fail_attempt(pending, now, "shed")
                return
            if selector is not None:
                self._plan_query(pending, now)
            queue.append(pending)
            self._queued_threads += pending.threads
            # No resources were freed since the last dispatch round, so
            # the only query this round can admit is the new arrival:
            # an unchanged queue length means it stayed queued (an O(1)
            # check; scanning the deque re-compared every field).
            depth_before = len(queue)
            self._dispatch(now)
            if len(queue) == depth_before:
                counters.queued += 1
        elif kind == _WAKE:
            # A fault window edge changed the admission state (e.g. an
            # EPC squeeze ended): give the queue another chance.
            self._dispatch(now)
        else:
            finish = payload
            if self._cancelled and finish.query_id in self._cancelled:
                # The query was evicted (shard crash) while running; its
                # resources were already released at eviction time.
                self._cancelled.discard(finish.query_id)
                return
            pending = self._running.pop(finish.query_id)
            self._reserved.pop(finish.query_id, None)
            self._free_cores += pending.threads
            self._epc_used -= finish.reserved_bytes
            if finish.outcome == "ok":
                counters.completed += 1
                if breaker is not None:
                    breaker.record_success(pending.stream)
                if self._tracer.enabled:
                    self._emit(
                        FINISH,
                        time_s=now,
                        query_id=pending.query_id,
                        stream=pending.stream,
                        template=pending.template,
                        latency_s=now - pending.arrival_s,
                        service_s=now - finish.start_s,
                    )
                if selector is not None:
                    # Feed back the *charged service time* (base +
                    # every dispatch penalty), not the end-to-end
                    # latency: queue wait is shared backlog no arm
                    # controls, and it is scale-incompatible with the
                    # unobserved arms' service-time priors.
                    selector.observe(
                        pending.template,
                        pending.arm,
                        now - finish.start_s,
                    )
                    if self._tracer.enabled:
                        self._emit(
                            PLANNER_OBSERVE,
                            time_s=now,
                            query_id=pending.query_id,
                            stream=pending.stream,
                            template=pending.template,
                            arm=pending.arm,
                            service_s=now - finish.start_s,
                            latency_s=now - pending.arrival_s,
                        )
                self._records.append(
                    QueryRecord(
                        query_id=pending.query_id,
                        stream=pending.stream,
                        template=pending.template,
                        client=pending.client,
                        arrival_s=pending.arrival_s,
                        start_s=finish.start_s,
                        finish_s=now,
                        working_set_bytes=pending.working_set_bytes,
                        overflow_bytes=finish.overflow_bytes,
                        bypassed=finish.bypassed,
                        attempts=pending.attempt + 1,
                    )
                )
                stream = self._closed_by_name.get(pending.stream)
                if stream is not None and now < self._duration_s:
                    self._push(
                        *_arrival_event(
                            stream.next_arrival(
                                self._closed_rngs[stream.name],
                                pending.client,
                                now,
                            )
                        )
                    )
            else:
                wasted_s = now - finish.start_s
                reinit_s = 0.0
                if finish.crash is not None:
                    reinit_s = finish.crash.reinit_s
                    if self._tracer.enabled:
                        self._emit(
                            FAULT_CRASH,
                            time_s=now,
                            query_id=pending.query_id,
                            stream=pending.stream,
                            template=pending.template,
                            attempt=pending.attempt,
                            at_fraction=finish.crash.fraction,
                            lost_s=wasted_s,
                            reinit_s=reinit_s,
                        )
                self._fail_attempt(
                    pending,
                    now,
                    finish.outcome,
                    wasted_s=wasted_s,
                    reinit_s=reinit_s,
                )
            self._dispatch(now)

    def result(self) -> WorkloadMetrics:
        """Finalise metrics and close the trace run (call exactly once)."""
        scheduler = self._s
        counters = self._counters
        metrics = WorkloadMetrics(
            setting_label=scheduler._setting_label,
            policy=scheduler._policy.label,
            records=sorted(self._records, key=lambda r: r.query_id),
            counters=counters,
            epc_budget_bytes=scheduler._epc_budget,
            epc_high_water_bytes=int(self._epc_high_water),
            duration_s=self._duration_s,
            failures=sorted(self._failures, key=lambda f: f.query_id),
            downtime_s=self._downtime_s,
        )
        if self._tracer.enabled:
            for name, value in counters.as_dict().items():
                self._tracer.count(f"scheduler.{name}", value)
            end_attrs = dict(
                time_s=metrics.makespan_s,
                setting=scheduler._setting_label,
                policy=scheduler._policy.label,
                completed=counters.completed,
                epc_high_water_bytes=int(self._epc_high_water),
            )
            if self._faulting:
                for name, value in counters.fault_dict().items():
                    self._tracer.count(f"scheduler.{name}", value)
            if self._spill is not None:
                for name, value in counters.storage_dict().items():
                    self._tracer.count(f"scheduler.{name}", value)
                end_attrs.update(
                    failed=counters.failed,
                    shed=counters.shed,
                    retries=counters.retries,
                    availability=metrics.availability,
                    downtime_s=self._downtime_s,
                )
            self._emit(RUN_END, **end_attrs)
        return metrics


@dataclass(frozen=True)
class _Finish:
    query_id: int
    start_s: float
    overflow_bytes: int
    bypassed: bool
    outcome: str = "ok"
    reserved_bytes: int = 0
    crash: Optional[CrashDraw] = None


@dataclass(frozen=True)
class _Retry:
    pending: PendingQuery


@dataclass(frozen=True)
class _Routed:
    """An arrival crossing a shard boundary (routed, or failover re-route)."""

    arrival: Arrival
    shuffle_s: float = 0.0
    arrival_s: Optional[float] = None
    attempt: int = 0


def _arrival_event(arrival: Arrival) -> Tuple[float, int, Arrival]:
    return arrival.time_s, _ARRIVAL, arrival
