"""Serving metrics: per-query latency records and their aggregations.

Every completed query leaves one :class:`QueryRecord` carrying its arrival,
dispatch, and completion times, so queueing delay and service time are
separable — the distinction the admission-policy experiments turn on (an
EPC-aware policy trades queueing for service speed).  Aggregations are
deterministic: percentiles use the nearest-rank method, never
interpolation, so golden-shape tests see bit-identical values across runs.

Aggregations over large runs are numpy-vectorized: a
:class:`WorkloadMetrics` lazily materializes column arrays (arrival,
start, finish, stream, template) once per record set and answers every
filter/percentile/rate query from boolean masks instead of re-scanning
Python record lists.  Vectorization never changes a produced value — only
operations with bit-identical scalar semantics are used (sorts, min/max,
comparisons, counts); means still reduce with sequential ``sum`` because
numpy's pairwise summation could differ in the last ulp.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import BenchmarkError, ZeroLengthWindowError


def percentile(
    samples: Union[Sequence[float], np.ndarray], p: float
) -> float:
    """Nearest-rank percentile of ``samples`` (``p`` in [0, 100]).

    Accepts a sequence or a 1-D float array; always returns a Python
    ``float`` (cached experiment payloads are JSON, and ``np.float64``
    is not JSON-serializable).  NaN samples are rejected: NaN is
    unordered, so a sort containing one produces input-order-dependent
    rankings — precisely the non-determinism this method exists to avoid.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1:
        raise BenchmarkError("percentile needs a flat sample sequence")
    if arr.size == 0:
        raise BenchmarkError("cannot take a percentile of zero samples")
    if not 0 <= p <= 100:
        raise BenchmarkError(f"percentile {p} outside [0, 100]")
    if np.isnan(arr).any():
        raise BenchmarkError(
            "cannot take a percentile of NaN samples (NaN is unordered, "
            "so nearest-rank results would depend on input order)"
        )
    ordered = np.sort(arr, kind="stable")
    if p == 0:
        return float(ordered[0])
    rank = math.ceil(p / 100.0 * arr.size)
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class QueryRecord:
    """One served query, from arrival to completion."""

    query_id: int
    stream: str
    template: str
    client: int
    arrival_s: float
    start_s: float
    finish_s: float
    working_set_bytes: int
    overflow_bytes: int = 0  # EPC demand beyond the budget at admission
    bypassed: bool = False  # dispatched through the small-query lane
    attempts: int = 1  # service attempts including the successful one

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass(frozen=True)
class FailureRecord:
    """One query that terminally failed (exhausted retries, or was shed).

    ``arrival_s`` is the *first* submission, so a failure's wall-clock
    cost — every burned attempt plus every backoff pause — is
    ``failed_s - arrival_s``.  ``outcome`` names the final failure mode
    (``crash``/``timeout``/``poison``/``edmm_denied``/``shed``).
    """

    query_id: int
    stream: str
    template: str
    client: int
    arrival_s: float
    failed_s: float
    attempts: int
    outcome: str


@dataclass
class SchedulerCounters:
    """Decision counts the scheduler accumulates while serving."""

    arrivals: int = 0
    completed: int = 0
    dispatched_immediately: int = 0
    queued: int = 0
    bypass_dispatches: int = 0
    edmm_admissions: int = 0  # admitted although the EPC budget was exceeded
    blocked_on_cores: int = 0  # dispatch rounds ending with a core-bound head
    blocked_on_epc: int = 0  # dispatch rounds ending with an EPC-bound head
    # -- fault/resilience decisions (all zero outside faulted runs) -------
    failed: int = 0  # terminal failures (retries exhausted / not retryable)
    shed: int = 0  # arrivals rejected by an open circuit breaker
    retries: int = 0  # re-queued attempts
    timeouts: int = 0  # attempts aborted at the per-query timeout
    crashes: int = 0  # attempts killed by a mid-service enclave crash
    edmm_denied: int = 0  # overflow admissions whose EDMM growth failed
    poisoned: int = 0  # attempts of a poisoned template (always fail)
    degraded: int = 0  # dispatches at a reduced EPC reservation
    aex_inflations: int = 0  # dispatches inflated by an AEX storm
    # -- sealed-storage decisions (all zero without a --storage budget) ---
    spills: int = 0  # dispatches served through the sealed spill path
    spilled_bytes: float = 0.0  # working-set bytes sealed out to storage
    storage_stalled: int = 0  # spills inflated by a STORAGE_STALL window
    torn_blocks: int = 0  # attempts aborted by a torn-block unseal failure

    def as_dict(self) -> Dict[str, int]:
        """The steady-state counters (the pre-fault serving vocabulary).

        Kept to exactly the original eight keys: the scheduler mirrors
        this dict into trace counters on every run, so growing it would
        change un-faulted trace artifacts byte-for-byte.
        """
        return {
            "arrivals": self.arrivals,
            "completed": self.completed,
            "dispatched_immediately": self.dispatched_immediately,
            "queued": self.queued,
            "bypass_dispatches": self.bypass_dispatches,
            "edmm_admissions": self.edmm_admissions,
            "blocked_on_cores": self.blocked_on_cores,
            "blocked_on_epc": self.blocked_on_epc,
        }

    def fault_dict(self) -> Dict[str, int]:
        """The fault-path counters (mirrored into traces only when faulting)."""
        return {
            "failed": self.failed,
            "shed": self.shed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "edmm_denied": self.edmm_denied,
            "poisoned": self.poisoned,
            "degraded": self.degraded,
            "aex_inflations": self.aex_inflations,
        }

    def storage_dict(self) -> Dict[str, Union[int, float]]:
        """The spill-path counters (mirrored into traces only when a
        sealed-storage budget is installed, so storage-less runs keep
        their pre-storage trace bytes)."""
        return {
            "spills": self.spills,
            "spilled_bytes": self.spilled_bytes,
            "storage_stalled": self.storage_stalled,
            "torn_blocks": self.torn_blocks,
        }


@dataclass
class WorkloadMetrics:
    """Everything one serving run measured."""

    setting_label: str
    policy: str
    records: List[QueryRecord] = field(default_factory=list)
    counters: SchedulerCounters = field(default_factory=SchedulerCounters)
    epc_budget_bytes: float = 0.0
    epc_high_water_bytes: int = 0
    duration_s: float = 0.0  # submission window of the workload
    failures: List[FailureRecord] = field(default_factory=list)
    downtime_s: float = 0.0  # summed enclave teardown + re-init time

    @property
    def makespan_s(self) -> float:
        """Time from the first arrival to the last completion.

        Anchored at the first *arrival*, not t=0: a stream whose first
        query arrives late (a staggered tenant, a warm-up gap) must not
        have the idle lead-in billed against its throughput.
        """
        if not self.records:
            return 0.0
        cols = self._columns()
        return float(cols["finish"].max() - cols["arrival"].min())

    def _columns(self) -> Dict[str, np.ndarray]:
        """Lazily built column arrays over ``records`` (cached).

        The cache token is ``(id(records), len(records))``: replacing or
        growing the record list invalidates it, so a metrics object that
        is filled incrementally (the scheduler appends in place only
        before handing the list over) always answers from fresh columns.
        """
        token = (id(self.records), len(self.records))
        cached = self.__dict__.get("_column_cache")
        if cached is not None and cached["token"] == token:
            return cached
        recs = self.records
        n = len(recs)
        cols: Dict[str, np.ndarray] = {
            "token": token,  # type: ignore[dict-item]
            "arrival": np.fromiter(
                (r.arrival_s for r in recs), np.float64, count=n
            ),
            "start": np.fromiter(
                (r.start_s for r in recs), np.float64, count=n
            ),
            "finish": np.fromiter(
                (r.finish_s for r in recs), np.float64, count=n
            ),
            "stream": np.array(
                [r.stream for r in recs] if n else [], dtype=str
            ),
            "template": np.array(
                [r.template for r in recs] if n else [], dtype=str
            ),
        }
        self.__dict__["_column_cache"] = cols
        return cols

    def _mask(
        self, stream: Optional[str] = None, template: Optional[str] = None
    ) -> Tuple[Dict[str, np.ndarray], Optional[np.ndarray]]:
        """The column arrays plus the boolean row mask of a filter."""
        cols = self._columns()
        mask: Optional[np.ndarray] = None
        if stream is not None:
            mask = cols["stream"] == stream
        if template is not None:
            selected = cols["template"] == template
            mask = selected if mask is None else mask & selected
        return cols, mask

    def _filtered(
        self, stream: Optional[str] = None, template: Optional[str] = None
    ) -> List[QueryRecord]:
        records = self.records
        if stream is not None:
            records = [r for r in records if r.stream == stream]
        if template is not None:
            records = [r for r in records if r.template == template]
        return records

    def latencies_s(
        self, stream: Optional[str] = None, template: Optional[str] = None
    ) -> List[float]:
        cols, mask = self._mask(stream, template)
        latency = cols["finish"] - cols["arrival"]
        if mask is not None:
            latency = latency[mask]
        return latency.tolist()

    def latency_percentile_s(
        self,
        p: float,
        stream: Optional[str] = None,
        template: Optional[str] = None,
    ) -> float:
        cols, mask = self._mask(stream, template)
        latency = cols["finish"] - cols["arrival"]
        if mask is not None:
            latency = latency[mask]
        return percentile(latency, p)

    def mean_queue_wait_s(self, stream: Optional[str] = None) -> float:
        cols, mask = self._mask(stream)
        wait = cols["start"] - cols["arrival"]
        if mask is not None:
            wait = wait[mask]
        if wait.size == 0:
            raise BenchmarkError("no records to average")
        # Sequential sum on purpose: numpy's pairwise reduction can differ
        # from ``sum()`` in the last ulp, which would shift golden values.
        return sum(wait.tolist()) / int(wait.size)

    def achieved_qps(self, stream: Optional[str] = None) -> float:
        """Completed queries per second of total serving time (incl. drain).

        Under overload the makespan stretches past the submission window,
        so achieved QPS converges to the service capacity — the saturation
        plateau of a latency-throughput curve.  The span is computed from
        the *filtered* records' own first arrival and last completion, so
        a stream that overlaps the run only partially is rated over its
        own active window, not the global makespan.
        """
        cols, mask = self._mask(stream)
        finish, arrival = cols["finish"], cols["arrival"]
        if mask is not None:
            finish, arrival = finish[mask], arrival[mask]
        if finish.size == 0:
            raise BenchmarkError("no completed queries to rate")
        span = float(finish.max() - arrival.min())
        if span <= 0:
            raise ZeroLengthWindowError(
                f"{int(finish.size)} completed queries span a zero-length "
                "window (first arrival coincides with last completion); "
                "a per-second rate is undefined"
            )
        return int(finish.size) / span

    def slo_attainment(
        self, threshold_s: float, stream: Optional[str] = None
    ) -> float:
        """Share of terminally resolved queries finishing within the SLO.

        Failures count against attainment (a shed or crashed query missed
        its SLO by definition), so this is a *goodput-style* fraction: a
        shard that sheds half its load cannot report perfect attainment.
        Returns 1.0 for an empty slice, matching :meth:`availability`.
        """
        if threshold_s <= 0:
            raise BenchmarkError("SLO threshold must be positive")
        cols, mask = self._mask(stream)
        latency = cols["finish"] - cols["arrival"]
        if mask is not None:
            latency = latency[mask]
        failures = self.failures
        if stream is not None:
            failures = [f for f in failures if f.stream == stream]
        resolved = int(latency.size) + len(failures)
        if resolved == 0:
            return 1.0
        within = int(np.count_nonzero(latency <= threshold_s))
        return within / resolved

    # -- serving under faults ---------------------------------------------

    @property
    def availability(self) -> float:
        """Completed share of terminally resolved queries (1.0 if none).

        A retried-then-successful query counts as available; a shed or
        retry-exhausted query counts against.  In-flight queries cannot
        exist here (the scheduler drains every event before returning).
        """
        resolved = self.counters.completed + len(self.failures)
        if resolved == 0:
            return 1.0
        return self.counters.completed / resolved

    def goodput_qps(self) -> float:
        """Successful completions per second of total serving activity.

        Unlike :meth:`achieved_qps`, the span covers failures too — time
        burned on doomed attempts stretches the denominator, which is
        exactly why goodput (not raw throughput) is the metric that drops
        under faults and recovers under mitigation.
        """
        if not self.records:
            return 0.0
        cols = self._columns()
        end = float(cols["finish"].max())
        start = float(cols["arrival"].min())
        if self.failures:
            end = max(end, max(f.failed_s for f in self.failures))
            start = min(start, min(f.arrival_s for f in self.failures))
        span = end - start
        if span <= 0:
            raise ZeroLengthWindowError(
                f"{len(self.records)} completed queries span a zero-length "
                "window (first arrival coincides with last resolution); "
                "goodput is undefined"
            )
        return len(self.records) / span

    def fault_summary(self) -> str:
        """One-line digest of the run's failure/mitigation activity."""
        c = self.counters
        try:
            goodput = f"{self.goodput_qps():.1f} QPS"
        except ZeroLengthWindowError:
            goodput = "n/a (zero-length window)"
        return (
            f"availability {self.availability:.2%}, "
            f"goodput {goodput}, "
            f"{c.retries} retries, {c.failed} failed, {c.shed} shed "
            f"({c.crashes} crashes, {c.timeouts} timeouts, "
            f"{c.edmm_denied} EDMM denials, {c.poisoned} poisoned, "
            f"{c.degraded} degraded), downtime {self.downtime_s:.2f} s"
        )

    def summary(self) -> str:
        """One-line digest for report notes (also for zero-query runs)."""
        if not self.records:
            return (
                f"0 queries completed ({self.setting_label}, "
                f"policy {self.policy})"
            )
        try:
            achieved = f"{self.achieved_qps():.1f} QPS achieved"
        except ZeroLengthWindowError:
            # A single instantaneous record has latencies but no rateable
            # window; the digest must survive it, not crash the report.
            achieved = "QPS n/a (zero-length window)"
        return (
            f"{self.counters.completed} queries, "
            f"p50 {self.latency_percentile_s(50) * 1e3:.1f} ms, "
            f"p99 {self.latency_percentile_s(99) * 1e3:.1f} ms, "
            f"{achieved}, "
            f"EPC high water {self.epc_high_water_bytes / 1e9:.2f} GB"
        )


class MetricsRegistry:
    """Per-shard metrics with a deterministic cluster-wide merge.

    The cluster scheduler registers each shard's :class:`WorkloadMetrics`
    under its shard label; :meth:`merged` folds them into one cluster-wide
    view whose records are re-sorted on ``(arrival_s, query_id)`` — a total
    order independent of registration order, so serial runs, ``--jobs N``
    workers, and cached replays all aggregate byte-identically.  Per-shard
    and cluster-wide percentiles then flow through the *same* nearest-rank
    path (:func:`percentile` via :class:`WorkloadMetrics`), never a second
    implementation that could drift.
    """

    def __init__(self) -> None:
        self._shards: Dict[str, WorkloadMetrics] = {}

    def register(self, label: str, metrics: WorkloadMetrics) -> None:
        if not label:
            raise BenchmarkError("shard label must be non-empty")
        if label in self._shards:
            raise BenchmarkError(f"shard {label!r} registered twice")
        self._shards[label] = metrics

    @property
    def labels(self) -> List[str]:
        return sorted(self._shards)

    def shard(self, label: str) -> WorkloadMetrics:
        if label not in self._shards:
            raise BenchmarkError(f"no metrics registered for shard {label!r}")
        return self._shards[label]

    def merged(
        self, setting_label: str = "", policy: str = ""
    ) -> WorkloadMetrics:
        """One cluster-wide :class:`WorkloadMetrics` over every shard.

        The merged view's ``setting_label``/``policy`` default to the
        shards' shared values; if the shards *disagree*, the merge
        refuses rather than silently stamping shard[0]'s labels onto
        everyone's records — pass an explicit non-empty override to
        merge heterogeneous shards under a label of your choosing.
        """
        if not self._shards:
            raise BenchmarkError("no shard metrics registered")
        shards = [self._shards[label] for label in self.labels]
        if not setting_label:
            settings = sorted({m.setting_label for m in shards})
            if len(settings) > 1:
                raise BenchmarkError(
                    "shards disagree on setting_label "
                    f"({', '.join(repr(s) for s in settings)}); pass an "
                    "explicit setting_label to merge them anyway"
                )
            setting_label = settings[0]
        if not policy:
            policies = sorted({m.policy for m in shards})
            if len(policies) > 1:
                raise BenchmarkError(
                    "shards disagree on policy "
                    f"({', '.join(repr(s) for s in policies)}); pass an "
                    "explicit policy to merge them anyway"
                )
            policy = policies[0]
        counters = SchedulerCounters()
        for m in shards:
            for name in vars(counters):
                setattr(
                    counters, name,
                    getattr(counters, name) + getattr(m.counters, name),
                )
        records = sorted(
            (r for m in shards for r in m.records),
            key=lambda r: (r.arrival_s, r.query_id),
        )
        failures = sorted(
            (f for m in shards for f in m.failures),
            key=lambda f: (f.failed_s, f.query_id),
        )
        return WorkloadMetrics(
            setting_label=setting_label,
            policy=policy,
            records=records,
            counters=counters,
            epc_budget_bytes=sum(m.epc_budget_bytes for m in shards),
            epc_high_water_bytes=sum(m.epc_high_water_bytes for m in shards),
            duration_s=max(m.duration_s for m in shards),
            failures=failures,
            downtime_s=sum(m.downtime_s for m in shards),
        )
