"""Workload generators: who submits queries, when, and what mix.

Two client models, both deterministic given their seed:

* **Open loop** (:class:`OpenLoopStream`) — a Poisson arrival process at a
  target QPS, independent of the system's state.  The right model for
  internet-facing traffic: load does not slow down because the server is
  slow, which is what exposes saturation (arrival rate > service capacity
  makes queues grow without bound).
* **Closed loop** (:class:`ClosedLoopStream`) — N clients that submit one
  query, wait for its completion, think for an exponentially distributed
  pause, and submit again.  In-flight queries never exceed N, so a closed
  stream self-throttles; the right model for interactive tenants.

Each stream owns a query mix: weighted template names sampled per
submission from the stream's own RNG, so two streams never perturb each
other's sequences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QueryMix:
    """Weighted choice over job-template names."""

    weights: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigurationError("a query mix needs at least one template")
        for name, weight in self.weights:
            if weight <= 0:
                raise ConfigurationError(
                    f"query mix weight for {name!r} must be positive"
                )

    @classmethod
    def of(cls, weights: Mapping[str, float]) -> "QueryMix":
        return cls(tuple(weights.items()))

    @property
    def template_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.weights)

    def sample(self, rng: random.Random) -> str:
        """One weighted draw from the mix."""
        total = sum(weight for _, weight in self.weights)
        point = rng.random() * total
        cumulative = 0.0
        for name, weight in self.weights:
            cumulative += weight
            if point < cumulative:
                return name
        return self.weights[-1][0]


@dataclass(frozen=True)
class Arrival:
    """One query submission: when, from which stream, which template."""

    time_s: float
    stream: str
    template: str
    client: int = -1  # closed-loop client id; -1 for open-loop arrivals


@dataclass(frozen=True)
class OpenLoopStream:
    """Poisson arrivals at ``qps`` with a per-stream seed and mix.

    ``start_s``/``end_s`` optionally window the stream inside the run —
    the building block for diurnal load shapes (a peak is just extra
    streams active only during the peak window).  The defaults reproduce
    the historical full-duration stream byte-for-byte.
    """

    name: str
    qps: float
    mix: QueryMix
    seed: int = 1
    start_s: float = 0.0
    end_s: Optional[float] = None  # None: the run's duration

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ConfigurationError(
                f"stream {self.name!r}: qps must be positive"
            )
        if self.start_s < 0:
            raise ConfigurationError(
                f"stream {self.name!r}: start_s must be non-negative"
            )
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ConfigurationError(
                f"stream {self.name!r}: end_s must be past start_s"
            )

    def arrivals(self, duration_s: float) -> List[Arrival]:
        """All arrivals in ``[start_s, min(end_s, duration_s))``."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        horizon = duration_s if self.end_s is None else min(self.end_s, duration_s)
        rng = random.Random(self.seed)
        out: List[Arrival] = []
        t = self.start_s + rng.expovariate(self.qps)
        while t < horizon:
            out.append(Arrival(t, self.name, self.mix.sample(rng)))
            t += rng.expovariate(self.qps)
        return out


@dataclass(frozen=True)
class ClosedLoopStream:
    """N think-time clients; the engine drives resubmission on completion."""

    name: str
    clients: int
    think_s: float
    mix: QueryMix
    seed: int = 1

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigurationError(
                f"stream {self.name!r}: needs at least one client"
            )
        if self.think_s < 0:
            raise ConfigurationError(
                f"stream {self.name!r}: think time must be non-negative"
            )

    def session_rng(self) -> random.Random:
        """The stream's private RNG (the engine owns its state)."""
        return random.Random(self.seed)

    def initial_arrivals(self, rng: random.Random) -> List[Arrival]:
        """Each client's first submission, staggered over one think period."""
        stagger = self.think_s if self.think_s > 0 else 0.001
        return [
            Arrival(rng.random() * stagger, self.name, self.mix.sample(rng), client)
            for client in range(self.clients)
        ]

    def next_arrival(
        self, rng: random.Random, client: int, finished_at_s: float
    ) -> Arrival:
        """The client's next submission after finishing at ``finished_at_s``."""
        pause = rng.expovariate(1.0 / self.think_s) if self.think_s > 0 else 0.0
        return Arrival(
            finished_at_s + pause, self.name, self.mix.sample(rng), client
        )
