"""The serving engine: workload config in, serving metrics out.

:class:`ServingEngine` is the layer the wl experiments (and every future
scaling PR) drive: it resolves each stream's templates through the catalog
into priced :class:`~repro.workload.jobs.JobCost` entries for the chosen
execution setting, constructs the admission policy, and hands everything to
the event-loop scheduler.  The EPC budget defaults to the machine's
per-socket EPC (Table 1: 64 GB) for enclave settings and is unlimited for
plain-CPU serving — native execution has no EPC to exhaust.

Typical use::

    catalog = JobCatalog(quick=True)
    engine = ServingEngine(catalog)
    metrics = engine.run(WorkloadConfig(
        setting=ExecutionSetting.sgx_data_in_enclave(),
        open_streams=(OpenLoopStream("tenant-a", qps=8.0, mix=mix, seed=3),),
        duration_s=30.0,
        policy="epc-aware",
    ))
    print(metrics.latency_percentile_s(99))
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.faults.injector import make_injector
from repro.faults.plan import FaultPlan, current_fault_plan
from repro.faults.resilience import ResiliencePolicy
from repro.workload.generators import ClosedLoopStream, OpenLoopStream
from repro.workload.jobs import JobCatalog, JobCost, JobTemplate
from repro.workload.metrics import WorkloadMetrics
from repro.workload.policies import make_policy
from repro.workload.scheduler import WorkloadScheduler

#: Default core pool: one socket of the paper's testbed.
DEFAULT_CORES = 16


@dataclass(frozen=True)
class WorkloadConfig:
    """One serving scenario: streams, setting, resources, policy."""

    setting: ExecutionSetting
    open_streams: Tuple[OpenLoopStream, ...] = ()
    closed_streams: Tuple[ClosedLoopStream, ...] = ()
    duration_s: float = 30.0
    cores: int = DEFAULT_CORES
    policy: str = "fifo"
    bypass_bytes: Optional[int] = None  # small-query lane threshold
    epc_budget_bytes: Optional[float] = None  # None: socket EPC (or inf, plain)
    #: None defers to the ambient plan (``use_fault_plan`` / ``--faults``);
    #: an explicit plan — including :data:`~repro.faults.NO_FAULTS` — pins
    #: this config regardless of context (wl04 pins all three of its arms).
    faults: Optional[FaultPlan] = None
    resilience: Optional[ResiliencePolicy] = None

    def __post_init__(self) -> None:
        if not self.open_streams and not self.closed_streams:
            raise ConfigurationError("a workload needs at least one stream")
        names = [s.name for s in self.open_streams + self.closed_streams]
        if len(set(names)) != len(names):
            raise ConfigurationError("stream names must be unique")

    def template_names(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for stream in self.open_streams + self.closed_streams:
            for name in stream.mix.template_names:
                seen.setdefault(name, None)
        return tuple(seen)


class ServingEngine:
    """Prices a workload's templates and serves it over simulated time."""

    def __init__(
        self,
        catalog: JobCatalog,
        templates: Optional[Mapping[str, JobTemplate]] = None,
    ) -> None:
        from repro.workload.jobs import serving_templates

        self.catalog = catalog
        self.templates = dict(templates) if templates is not None else serving_templates()

    def costs_for(self, config: WorkloadConfig) -> Dict[str, JobCost]:
        """Priced costs of every template the config's streams reference."""
        costs: Dict[str, JobCost] = {}
        for name in config.template_names():
            try:
                template = self.templates[name]
            except KeyError:
                known = ", ".join(sorted(self.templates))
                raise ConfigurationError(
                    f"workload references unknown template {name!r}; "
                    f"known: {known}"
                ) from None
            costs[name] = self.catalog.cost(template, config.setting)
        return costs

    def epc_budget(self, config: WorkloadConfig) -> float:
        """The effective EPC budget for this config."""
        if config.epc_budget_bytes is not None:
            return float(config.epc_budget_bytes)
        if not config.setting.data_in_enclave:
            return math.inf
        machine = self.catalog.machine_prototype()
        return float(machine.topology.node(0).epc_bytes)

    def run(self, config: WorkloadConfig) -> WorkloadMetrics:
        """Serve ``config`` to completion and return its metrics."""
        policy = make_policy(config.policy, bypass_bytes=config.bypass_bytes)
        plan = config.faults if config.faults is not None else current_fault_plan()
        scheduler = WorkloadScheduler(
            self.costs_for(config),
            policy,
            cores=config.cores,
            epc_budget_bytes=self.epc_budget(config),
            setting_label=config.setting.label,
            injector=make_injector(plan),
            resilience=config.resilience,
        )
        return scheduler.run(
            open_streams=config.open_streams,
            closed_streams=config.closed_streams,
            duration_s=config.duration_s,
        )
