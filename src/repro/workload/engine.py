"""The serving engine: workload config in, serving metrics out.

:class:`ServingEngine` is the layer the wl experiments (and every future
scaling PR) drive: it resolves each stream's templates through the catalog
into priced :class:`~repro.workload.jobs.JobCost` entries for the chosen
execution setting, constructs the admission policy, and hands everything to
the event-loop scheduler.  The EPC budget defaults to the machine's
per-socket EPC (Table 1: 64 GB) for enclave settings and is unlimited for
plain-CPU serving — native execution has no EPC to exhaust.

Typical use::

    catalog = JobCatalog(quick=True)
    engine = ServingEngine(catalog)
    metrics = engine.run(WorkloadConfig(
        setting=ExecutionSetting.sgx_data_in_enclave(),
        open_streams=(OpenLoopStream("tenant-a", qps=8.0, mix=mix, seed=3),),
        duration_s=30.0,
        policy="epc-aware",
    ))
    print(metrics.latency_percentile_s(99))
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.faults.injector import make_injector
from repro.faults.plan import FaultPlan, current_fault_plan
from repro.faults.resilience import ResiliencePolicy
from repro.planner import (
    ArmCost,
    CostSelector,
    EpsilonGreedySelector,
    OracleSelector,
    Planner,
    PlanSelector,
    current_planner_mode,
    validate_mode,
)
from repro.workload.generators import ClosedLoopStream, OpenLoopStream
from repro.workload.jobs import JobCatalog, JobCost, JobTemplate
from repro.workload.metrics import WorkloadMetrics
from repro.workload.policies import make_policy
from repro.workload.scheduler import WorkloadScheduler

#: Default core pool: one socket of the paper's testbed.
DEFAULT_CORES = 16


@dataclass(frozen=True)
class WorkloadConfig:
    """One serving scenario: streams, setting, resources, policy."""

    setting: ExecutionSetting
    open_streams: Tuple[OpenLoopStream, ...] = ()
    closed_streams: Tuple[ClosedLoopStream, ...] = ()
    duration_s: float = 30.0
    cores: int = DEFAULT_CORES
    policy: str = "fifo"
    bypass_bytes: Optional[int] = None  # small-query lane threshold
    epc_budget_bytes: Optional[float] = None  # None: socket EPC (or inf, plain)
    #: None defers to the ambient plan (``use_fault_plan`` / ``--faults``);
    #: an explicit plan — including :data:`~repro.faults.NO_FAULTS` — pins
    #: this config regardless of context (wl04 pins all three of its arms).
    faults: Optional[FaultPlan] = None
    resilience: Optional[ResiliencePolicy] = None
    #: None defers to the ambient mode (``use_planner_mode`` /
    #: ``--planner``); an explicit mode — including ``"static"`` — pins
    #: this config regardless of context (wl05 pins all four of its arms).
    planner: Optional[str] = None
    #: How many of the analytically best candidates per template become
    #: bandit/oracle arms in the non-static planner modes.
    plan_top_k: int = 3
    #: Seed of the adaptive selector's exploration draws; None defers to
    #: the session seed (``--seed``), which is what makes ``--planner
    #: adaptive --seed N`` reproducible across serial/parallel/cached runs.
    plan_seed: Optional[int] = None
    #: Cluster topology: a :class:`~repro.cluster.ClusterConfig`, a spec
    #: string (``"2x4"``), or ``None`` to defer to the ambient cluster
    #: (``use_cluster`` / ``--cluster``).  With a cluster in effect the
    #: engine serves through :class:`~repro.cluster.ClusterScheduler`:
    #: per-shard cores and EPC budgets come from the shard map, not from
    #: ``cores``/``epc_budget_bytes`` (an explicit ``epc_budget_bytes``
    #: applies per shard).
    cluster: Optional[object] = None
    #: Sealed-storage budget: a :class:`~repro.storage.StorageConfig`, a
    #: spec string (``"2G"`` or ``"2G:1M"``), or ``None`` to defer to the
    #: ambient storage config (``use_storage`` / ``--storage``).  With one
    #: in effect the serving budget is clamped to the storage budget and
    #: overflow admissions spill their overflowing share to sealed
    #: untrusted storage (priced seal/unseal traffic) instead of paying
    #: the EDMM/paging penalty.
    storage: Optional[object] = None
    #: Logical rewrite mode: ``"off"``/``"prove"``/``"race"``/``"learned"``,
    #: or ``None`` to defer to the ambient mode (``use_rewrite`` /
    #: ``--rewrite``).  Active modes prove (and race) rewrite candidates
    #: while the planner builds its arms; ``"learned"`` additionally adds
    #: each TPC-H template's proven-and-priced winner to the bandit's arm
    #: set.  Rewriting rides the planner's arm machinery, so it takes a
    #: non-static ``planner`` mode to serve a learned rewrite.
    rewrite: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.open_streams and not self.closed_streams:
            raise ConfigurationError("a workload needs at least one stream")
        names = [s.name for s in self.open_streams + self.closed_streams]
        if len(set(names)) != len(names):
            raise ConfigurationError("stream names must be unique")
        if self.planner is not None:
            validate_mode(self.planner)
        if self.rewrite is not None:
            from repro.rewrite.config import validate_mode as validate_rewrite

            validate_rewrite(self.rewrite)
        if self.plan_top_k < 1:
            raise ConfigurationError("plan_top_k must be >= 1")

    def template_names(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for stream in self.open_streams + self.closed_streams:
            for name in stream.mix.template_names:
                seen.setdefault(name, None)
        return tuple(seen)


class ServingEngine:
    """Prices a workload's templates and serves it over simulated time."""

    def __init__(
        self,
        catalog: JobCatalog,
        templates: Optional[Mapping[str, JobTemplate]] = None,
    ) -> None:
        from repro.workload.jobs import serving_templates

        from repro.planner.stats import QErrorTracker

        self.catalog = catalog
        self.templates = dict(templates) if templates is not None else serving_templates()
        #: Engine-lifetime cardinality feedback: proofs run while arms are
        #: planned observe executed cardinalities here, so later runs (and
        #: re-plans) of the same engine price rewrites with shrinking
        #: Q-error.  Only ever touched under an active rewrite mode.
        self.qerror = QErrorTracker()

    def costs_for(self, config: WorkloadConfig) -> Dict[str, JobCost]:
        """Priced costs of every template the config's streams reference."""
        costs: Dict[str, JobCost] = {}
        for name in config.template_names():
            try:
                template = self.templates[name]
            except KeyError:
                known = ", ".join(sorted(self.templates))
                raise ConfigurationError(
                    f"workload references unknown template {name!r}; "
                    f"known: {known}"
                ) from None
            costs[name] = self.catalog.cost(template, config.setting)
        return costs

    def epc_budget(self, config: WorkloadConfig) -> float:
        """The effective EPC budget for this config."""
        if config.epc_budget_bytes is not None:
            return float(config.epc_budget_bytes)
        if not config.setting.data_in_enclave:
            return math.inf
        machine = self.catalog.machine_prototype()
        return float(machine.topology.node(0).epc_bytes)

    def planner_mode(self, config: WorkloadConfig) -> str:
        """The planner mode this config serves under (explicit or ambient)."""
        if config.planner is not None:
            return validate_mode(config.planner)
        return current_planner_mode()

    def rewrite_of(self, config: WorkloadConfig) -> Optional[str]:
        """The effective rewrite mode (explicit, ambient, or ``None``)."""
        from repro.rewrite.config import current_rewrite
        from repro.rewrite.config import validate_mode as validate_rewrite

        if config.rewrite is not None:
            return validate_rewrite(config.rewrite)
        return current_rewrite()

    def plan_arms(self, config: WorkloadConfig) -> Dict[str, Tuple[ArmCost, ...]]:
        """Per-template bandit/oracle arms: the top-k candidates, priced.

        The planner ranks each template's candidate space analytically;
        the catalog then prices the surviving arms through the real
        operators (one run each, cached), so every arm carries the same
        measured service time and EPC working set a static profile would.
        Arms are handed to the selectors best-first.

        Under an active rewrite mode, each TPC-H template's logical
        rewrite candidates are additionally proven (and, beyond
        ``prove``, raced) right here — ``rewrite.*`` trace events land in
        the caller's tracer — and ``learned`` appends the winning
        rewrite, priced at the template's static physical plan with its
        knob hints applied, as one more arm (labelled ``rw:...``, never
        colliding with the physical arms' labels).
        """
        from repro.storage.config import use_storage

        budget = self.epc_budget(config)
        storage = self.storage_of(config)
        rewrite_mode = self.rewrite_of(config)
        planner = Planner(
            self.catalog.machine_prototype(),
            config.setting,
            epc_budget_bytes=None if math.isinf(budget) else budget,
            cores=config.cores,
            pricing_seed=self.catalog.pricing_seed,
            storage=storage,
        )
        arms: Dict[str, Tuple[ArmCost, ...]] = {}
        # Pricing spill arms goes through the catalog, which resolves the
        # storage budget ambiently — pin the config's own (possibly
        # explicit) storage for the pricing scope.
        with use_storage(storage):
            for name in config.template_names():
                template = self.templates[name]
                arm_list = []
                for candidate in planner.top_k(template, config.plan_top_k):
                    cost = self.catalog.candidate_cost(
                        template, config.setting, candidate
                    )
                    arm_list.append(
                        ArmCost(
                            candidate=candidate,
                            label=candidate.label(template.threads),
                            service_s=cost.service_s,
                            working_set_bytes=cost.working_set_bytes,
                        )
                    )
                if rewrite_mode is not None and rewrite_mode != "off":
                    from repro.rewrite.race import plan_rewrites

                    decision = plan_rewrites(
                        template,
                        rewrite_mode,
                        self.catalog.machine_prototype(),
                        config.setting,
                        tracker=self.qerror,
                    )
                    if rewrite_mode == "learned" and decision.winner is not None:
                        winner = decision.winner
                        arm_list.append(
                            ArmCost(
                                candidate=winner.physical,
                                label=winner.candidate.label(),
                                service_s=winner.seconds,
                                working_set_bytes=winner.working_set_bytes,
                            )
                        )
                arms[name] = tuple(arm_list)
        return arms

    def _make_selector(self, config: WorkloadConfig) -> Optional[PlanSelector]:
        mode = self.planner_mode(config)
        if mode == "static":
            return None
        arms = self.plan_arms(config)
        if mode == "cost":
            return CostSelector(arms)
        if mode == "oracle":
            return OracleSelector(arms)
        from repro.bench.runner import DEFAULT_BASE_SEED

        seed = (
            config.plan_seed
            if config.plan_seed is not None
            else DEFAULT_BASE_SEED
        )
        return EpsilonGreedySelector(arms, seed=seed)

    def cluster_of(self, config: WorkloadConfig):
        """The effective cluster config (explicit, ambient, or ``None``)."""
        from repro.cluster.config import ClusterConfig, current_cluster

        raw = config.cluster if config.cluster is not None else current_cluster()
        if raw is None:
            return None
        if isinstance(raw, str):
            return ClusterConfig.parse(raw)
        if not isinstance(raw, ClusterConfig):
            raise ConfigurationError(
                f"cluster must be a ClusterConfig or a spec string, "
                f"got {type(raw).__name__}"
            )
        return raw

    def storage_of(self, config: WorkloadConfig):
        """The effective storage config (explicit, ambient, or ``None``)."""
        from repro.storage.config import StorageConfig, current_storage

        raw = config.storage if config.storage is not None else current_storage()
        if raw is None:
            return None
        if isinstance(raw, str):
            return StorageConfig.parse(raw)
        if not isinstance(raw, StorageConfig):
            raise ConfigurationError(
                f"storage must be a StorageConfig or a spec string, "
                f"got {type(raw).__name__}"
            )
        return raw

    def _make_spill(self, storage):
        """A :class:`~repro.storage.SpillModel` priced for this machine."""
        if storage is None:
            return None
        from repro.storage.sealed import SealedStore, SpillModel

        machine = self.catalog.machine_prototype()
        store = SealedStore(machine.params, block_bytes=storage.block_bytes)
        return SpillModel(store, machine.spec.base_frequency_hz)

    def run(self, config: WorkloadConfig) -> WorkloadMetrics:
        """Serve ``config`` to completion and return its metrics."""
        cluster = self.cluster_of(config)
        if cluster is not None:
            return self.run_cluster(config, cluster).metrics
        policy = make_policy(config.policy, bypass_bytes=config.bypass_bytes)
        plan = config.faults if config.faults is not None else current_fault_plan()
        storage = self.storage_of(config)
        budget = self.epc_budget(config)
        if storage is not None:
            # The storage budget caps the in-enclave working-set share:
            # anything beyond it takes the sealed spill path, which is
            # what lets ``--storage 2G`` force the spill regime on a
            # machine whose physical EPC would otherwise absorb it.
            budget = min(budget, float(storage.budget_bytes))
        scheduler = WorkloadScheduler(
            self.costs_for(config),
            policy,
            cores=config.cores,
            epc_budget_bytes=budget,
            setting_label=config.setting.label,
            injector=make_injector(plan),
            resilience=config.resilience,
            selector=self._make_selector(config),
            storage=self._make_spill(storage),
        )
        return scheduler.run(
            open_streams=config.open_streams,
            closed_streams=config.closed_streams,
            duration_s=config.duration_s,
        )

    def run_cluster(self, config: WorkloadConfig, cluster=None):
        """Serve ``config`` over a shard map; returns the full
        :class:`~repro.cluster.ClusterResult` (merged metrics plus the
        routing layer's activity — :meth:`run` keeps only the metrics).

        Each shard is a complete :class:`WorkloadScheduler` with its own
        admission policy instance, plan selector, fault injector, and the
        shard map's core/EPC slice; disjoint query-id ranges keep merged
        records collision-free.
        """
        from repro.cluster.scheduler import QUERY_ID_STRIDE, ClusterScheduler

        if cluster is None:
            cluster = self.cluster_of(config)
        if cluster is None:
            raise ConfigurationError("run_cluster needs a cluster config")
        machine = self.catalog.machine_prototype()
        shards = cluster.spec.shards(machine.spec)
        costs = self.costs_for(config)
        plan = config.faults if config.faults is not None else current_fault_plan()
        storage = self.storage_of(config)
        spill = self._make_spill(storage)
        schedulers = []
        for shard in shards:
            if config.epc_budget_bytes is not None:
                budget = float(config.epc_budget_bytes)
            elif not config.setting.data_in_enclave:
                budget = math.inf
            else:
                budget = shard.epc_budget_bytes
            if storage is not None:
                # Shard-local spill: each shard spills against its own
                # slice of the storage budget; the ``shard`` attr on the
                # resulting storage.* events is what keeps local spill
                # traffic distinguishable from re-shard shuffles (which
                # report through ``ClusterResult.shuffle_s``).
                budget = min(budget, float(storage.budget_bytes))
            schedulers.append(
                WorkloadScheduler(
                    costs,
                    make_policy(
                        config.policy, bypass_bytes=config.bypass_bytes
                    ),
                    cores=shard.cores,
                    epc_budget_bytes=budget,
                    setting_label=config.setting.label,
                    injector=make_injector(plan),
                    resilience=config.resilience,
                    selector=self._make_selector(config),
                    storage=spill,
                    shard=shard.label,
                    query_id_base=shard.shard_id * QUERY_ID_STRIDE,
                )
            )
        scheduler = ClusterScheduler(
            cluster=cluster,
            shards=shards,
            schedulers=schedulers,
            costs=costs,
            spec=machine.spec,
            params=machine.params,
        )
        return scheduler.run(
            open_streams=config.open_streams,
            closed_streams=config.closed_streams,
            duration_s=config.duration_s,
        )
