"""Admission policies: which pending query (if any) gets dispatched next.

The scheduler keeps one arrival-ordered queue and asks its policy for the
next admissible query whenever resources change.  Policies differ in what
"admissible" means:

* :class:`FifoPolicy` — strict arrival order, cores are the only gate.  A
  query whose working set exceeds the remaining EPC budget is admitted
  anyway and pays the EDMM/paging penalty for the overflowing share (the
  Fig. 11 failure mode: the enclave grows mid-query).
* :class:`EpcAwarePolicy` — arrival order, but a query is held back until
  both cores *and* EPC headroom fit its measured working set, so no
  admitted query ever grows the enclave.  Queueing delay is traded for
  full-speed service.

Both accept a **small-query bypass lane**: when the head of the queue is
blocked, the first queued query whose working set is at most
``bypass_bytes`` (and which fits the policy's gates) may jump ahead —
interactive point-queries are not stuck behind a bulk join waiting for
half the EPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import ConfigurationError
from repro.units import GiB

#: Upper bound for a plausible small-query bypass threshold: one socket's
#: EPC (Table 1, 64 GB).  A threshold above the whole EPC would classify
#: every query as "small" and turn the bypass lane into queue reordering.
MAX_BYPASS_BYTES = 64 * GiB


@dataclass(frozen=True)
class ResourceState:
    """What the scheduler exposes to a policy at decision time."""

    free_cores: int
    total_cores: int
    epc_used_bytes: float
    epc_budget_bytes: float

    @property
    def epc_headroom_bytes(self) -> float:
        # An EPC_SQUEEZE fault can shrink the budget below what running
        # queries already hold; clamp so headroom never goes negative
        # (a negative value would over-penalise FIFO overflow accounting
        # and make EpcAware comparisons depend on sign conventions).
        return max(0.0, self.epc_budget_bytes - self.epc_used_bytes)


@dataclass
class AdmissionDecision:
    """The policy's pick: a queue index plus how it may be admitted."""

    queue_index: int
    overflow_bytes: int = 0  # EPC demand beyond the budget (FIFO only)
    bypassed: bool = False


class AdmissionPolicy:
    """Base policy: arrival order with an optional small-query bypass lane."""

    name = "base"

    def __init__(self, bypass_bytes: Optional[int] = None) -> None:
        if bypass_bytes is not None:
            if bypass_bytes <= 0:
                raise ConfigurationError("bypass threshold must be positive")
            if bypass_bytes > MAX_BYPASS_BYTES:
                raise ConfigurationError(
                    f"bypass threshold {bypass_bytes} B exceeds any "
                    f"plausible EPC budget (max {MAX_BYPASS_BYTES} B, one "
                    "socket's EPC)"
                )
        self.bypass_bytes = bypass_bytes
        #: Why the last ``pick`` returned nothing ("cores" / "epc" / None).
        self.last_block_reason: Optional[str] = None

    @property
    def label(self) -> str:
        return self.name + ("+bypass" if self.bypass_bytes else "")

    # -- hooks -----------------------------------------------------------

    def _admissible(self, pending, state: ResourceState) -> Optional[AdmissionDecision]:
        """A decision for ``pending`` if this policy would admit it now."""
        raise NotImplementedError

    def _block_reason(self, pending, state: ResourceState) -> str:
        """Why ``pending`` cannot be admitted (diagnostic counter key)."""
        raise NotImplementedError

    # -- public API ------------------------------------------------------

    def pick(self, queue: Deque, state: ResourceState) -> Optional[AdmissionDecision]:
        """The next query to dispatch, or None (with a block reason)."""
        self.last_block_reason = None
        if not queue:
            return None
        head = self._admissible(queue[0], state)
        if head is not None:
            head.queue_index = 0
            return head
        if self.bypass_bytes is not None:
            for index, pending in enumerate(queue):
                if index == 0 or pending.working_set_bytes > self.bypass_bytes:
                    continue
                decision = self._admissible(pending, state)
                if decision is not None:
                    decision.queue_index = index
                    decision.bypassed = True
                    return decision
        self.last_block_reason = self._block_reason(queue[0], state)
        return None


class FifoPolicy(AdmissionPolicy):
    """First come, first served; EPC overflow is admitted and penalized."""

    name = "fifo"

    def _admissible(self, pending, state: ResourceState) -> Optional[AdmissionDecision]:
        if pending.threads > state.free_cores:
            return None
        overflow = max(
            0.0,
            pending.working_set_bytes - state.epc_headroom_bytes,
        )
        return AdmissionDecision(queue_index=0, overflow_bytes=int(overflow))

    def _block_reason(self, pending, state: ResourceState) -> str:
        return "cores"


class EpcAwarePolicy(AdmissionPolicy):
    """Admit only queries whose working set fits the remaining EPC budget."""

    name = "epc-aware"

    def _admissible(self, pending, state: ResourceState) -> Optional[AdmissionDecision]:
        if pending.threads > state.free_cores:
            return None
        if pending.working_set_bytes > state.epc_headroom_bytes:
            return None
        return AdmissionDecision(queue_index=0)

    def _block_reason(self, pending, state: ResourceState) -> str:
        if pending.threads > state.free_cores:
            return "cores"
        return "epc"


def make_policy(name: str, *, bypass_bytes: Optional[int] = None) -> AdmissionPolicy:
    """Policy factory: ``fifo`` or ``epc-aware``, optionally ``+bypass``.

    The ``+bypass`` suffix requires ``bypass_bytes`` (the small-query
    threshold comes from the workload, not from the policy).
    """
    base = name
    if name.endswith("+bypass"):
        base = name[: -len("+bypass")]
        if bypass_bytes is None:
            raise ConfigurationError(
                f"policy {name!r} needs an explicit bypass_bytes threshold"
            )
    policies = {"fifo": FifoPolicy, "epc-aware": EpcAwarePolicy}
    try:
        cls = policies[base]
    except KeyError:
        known = ", ".join(sorted(policies))
        raise ConfigurationError(
            f"unknown admission policy {name!r}; known: {known}"
        ) from None
    return cls(bypass_bytes=bypass_bytes)
