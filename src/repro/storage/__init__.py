"""Sealed spill/scan storage under the operator simulator.

When a working set exceeds the enclave's EPC/static budget, operators can
partition to *sealed* untrusted storage instead of paying EDMM growth or
paging: blocks are AES-GCM sealed on the way out, unsealed (and
integrity-checked) on the way back in, and every byte is priced through
the calibrated cycle-accounting path (`hardware/calibration.py`).

* :class:`~repro.storage.config.StorageConfig` — the ``--storage BUDGET``
  knob and its ambient channel (:func:`use_storage` /
  :func:`current_storage`), mirroring ``--cluster``/``--faults``.
* :class:`~repro.storage.sealed.SealedStore` — per-block seal/unseal/IO
  pricing plus traffic counters.
* :mod:`~repro.storage.spill` — spill-aware operator variants
  (grace-partitioned join, external aggregate) that produce bag-identical
  results to their in-memory counterparts.
"""

from repro.storage.config import (
    StorageConfig,
    current_storage,
    parse_size,
    use_storage,
)
from repro.storage.sealed import SealedStore, SpillModel
from repro.storage.spill import ExternalGroupAggregate, GraceHashJoin

__all__ = [
    "StorageConfig",
    "SealedStore",
    "SpillModel",
    "GraceHashJoin",
    "ExternalGroupAggregate",
    "current_storage",
    "parse_size",
    "use_storage",
]
