"""The sealed store: per-block seal/unseal/IO pricing for spilled data.

Data leaving the enclave for untrusted storage is *sealed* — AES-GCM
encrypted and MACed with an enclave-held key — and unsealed (decrypted +
tag-verified) on the way back, following the per-block cost model of
"Securing the Storage Data Path with SGX Enclaves".  Three calibrated
per-byte constants price the path (:class:`~repro.hardware.calibration.
CostParameters`: ``seal_cycles_per_byte``, ``unseal_cycles_per_byte``,
``storage_io_cycles_per_byte``), and every block additionally pays one
enclave transition (the OCALL that hands the ciphertext to the untrusted
block layer), so small blocks are visibly worse than large ones.

The store only *prices* and *counts* — spilled payloads themselves stay
ordinary numpy arrays held by the operators, because the simulator's
sealing has no behavioral effect on results (bag-identity with in-memory
variants is the correctness gate).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.hardware.calibration import CostParameters
from repro.memory.access import AccessProfile
from repro.storage.config import DEFAULT_BLOCK_BYTES


class SealedStore:
    """Prices sealed block traffic and keeps the session's spill counters."""

    def __init__(
        self,
        params: CostParameters,
        *,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
    ) -> None:
        if not params.sealing_enabled:
            raise ConfigurationError(
                "this calibration does not price the sealed storage path "
                "(seal_cycles_per_byte is 0)"
            )
        if block_bytes < 1:
            raise ConfigurationError("block_bytes must be positive")
        self.params = params
        self.block_bytes = block_bytes
        self.sealed_bytes = 0.0
        self.unsealed_bytes = 0.0
        self.sealed_blocks = 0
        self.unsealed_blocks = 0

    # -- pricing ---------------------------------------------------------

    def blocks_for(self, num_bytes: float) -> int:
        """Number of sealed blocks ``num_bytes`` occupies (ceiling)."""
        if num_bytes < 0:
            raise ConfigurationError("byte count must be non-negative")
        return max(1, -(-int(num_bytes) // self.block_bytes)) if num_bytes else 0

    def seal_cycles(self, num_bytes: float) -> float:
        """Cycles to seal ``num_bytes`` out to untrusted storage."""
        blocks = self.blocks_for(num_bytes)
        return (
            num_bytes
            * (
                self.params.seal_cycles_per_byte
                + self.params.storage_io_cycles_per_byte
            )
            + blocks * self.params.transition_cycles
        )

    def unseal_cycles(self, num_bytes: float) -> float:
        """Cycles to read ``num_bytes`` back in and unseal them."""
        blocks = self.blocks_for(num_bytes)
        return (
            num_bytes
            * (
                self.params.unseal_cycles_per_byte
                + self.params.storage_io_cycles_per_byte
            )
            + blocks * self.params.transition_cycles
        )

    def roundtrip_cycles(self, num_bytes: float) -> float:
        """Seal + unseal cycles for spilling ``num_bytes`` once."""
        return self.seal_cycles(num_bytes) + self.unseal_cycles(num_bytes)

    # -- charging --------------------------------------------------------

    def charge_seal(
        self,
        profile: AccessProfile,
        num_bytes: float,
        *,
        threads: int = 1,
        label: str = "seal",
    ) -> float:
        """Charge a seal of ``num_bytes`` to ``profile``; returns cycles.

        ``profile`` is treated as one thread's profile of a
        ``threads``-wide phase (the executor replicates it), so the cycles
        are the per-thread share while the traffic counters record the
        whole ``num_bytes``.
        """
        cycles = self.seal_cycles(num_bytes / max(1, threads))
        profile.compute(cycles, label=label)
        self.sealed_bytes += num_bytes
        self.sealed_blocks += self.blocks_for(num_bytes)
        return cycles

    def charge_unseal(
        self,
        profile: AccessProfile,
        num_bytes: float,
        *,
        threads: int = 1,
        label: str = "unseal",
    ) -> float:
        """Charge an unseal of ``num_bytes`` to ``profile`` (see seal)."""
        cycles = self.unseal_cycles(num_bytes / max(1, threads))
        profile.compute(cycles, label=label)
        self.unsealed_bytes += num_bytes
        self.unsealed_blocks += self.blocks_for(num_bytes)
        return cycles

    # -- inspection ------------------------------------------------------

    @property
    def stats(self) -> Dict[str, float]:
        return {
            "sealed_bytes": self.sealed_bytes,
            "unsealed_bytes": self.unsealed_bytes,
            "sealed_blocks": float(self.sealed_blocks),
            "unsealed_blocks": float(self.unsealed_blocks),
        }


class SpillModel:
    """Wall-clock pricing of admission-time spills for the scheduler.

    The serving scheduler reasons in seconds, not cycles, and has no
    frequency of its own — so the engine bakes one in here once per run.
    When an admitted query's working set exceeds the EPC budget and a
    sealed-storage budget is installed, the overflowing share is sealed
    out at dispatch and unsealed back during service: the scheduler calls
    :meth:`charge` with the overflow bytes and adds the returned seal +
    unseal seconds to the service time instead of the EDMM/paging
    collapse penalty.  Counters accumulate in the wrapped
    :class:`SealedStore` so per-query spills and operator-level spills
    report through one set of numbers.
    """

    def __init__(self, store: SealedStore, frequency_hz: float) -> None:
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        self.store = store
        self.frequency_hz = float(frequency_hz)

    def seal_s(self, num_bytes: float) -> float:
        return self.store.seal_cycles(num_bytes) / self.frequency_hz

    def unseal_s(self, num_bytes: float) -> float:
        return self.store.unseal_cycles(num_bytes) / self.frequency_hz

    def charge(self, num_bytes: float) -> Tuple[float, float]:
        """Record one spill of ``num_bytes``; returns (seal_s, unseal_s)."""
        store = self.store
        store.sealed_bytes += num_bytes
        store.unsealed_bytes += num_bytes
        blocks = store.blocks_for(num_bytes)
        store.sealed_blocks += blocks
        store.unsealed_blocks += blocks
        return self.seal_s(num_bytes), self.unseal_s(num_bytes)
