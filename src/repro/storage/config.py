"""Storage configuration and its ambient (session-scoped) channel.

A :class:`StorageConfig` bundles the spill budget (the EPC/static-size
ceiling an operator's working set must stay under before it partitions to
sealed storage) and the sealed block size.  Like fault plans, planner
modes, and cluster configs, it flows through an explicit ambient channel
(:func:`use_storage` / :func:`current_storage`) so ``--storage 256m``
reshapes every serving run in a session without threading a parameter
through every experiment module — and ``--storage`` unset leaves every
code path byte-identical to the pre-storage build.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.units import GB, GiB, KB, KiB, MB, MiB, PAGE_BYTES, format_bytes

#: Default sealed block: 1 MiB amortizes the per-block enclave transition
#: to well under a cycle per byte while keeping partition buffers far
#: below any plausible budget.
DEFAULT_BLOCK_BYTES = 1 * MiB

_SUFFIXES = {
    "k": KB,
    "kb": KB,
    "m": MB,
    "mb": MB,
    "g": GB,
    "gb": GB,
    "ki": KiB,
    "kib": KiB,
    "mi": MiB,
    "mib": MiB,
    "gi": GiB,
    "gib": GiB,
}


def parse_size(text: str) -> int:
    """Parse a byte size like ``"256m"``, ``"1gib"``, or ``"1048576"``.

    Decimal suffixes (``k``/``m``/``g``, optionally with ``b``) follow the
    paper's table-size convention; ``ki``/``mi``/``gi`` are binary.  A bare
    number is plain bytes.
    """
    raw = text.strip().lower()
    number = raw
    factor = 1
    for suffix in sorted(_SUFFIXES, key=len, reverse=True):
        if raw.endswith(suffix):
            number = raw[: -len(suffix)]
            factor = _SUFFIXES[suffix]
            break
    if not number.isdigit():
        raise ConfigurationError(
            f"bad size {text!r}; expected BYTES or a k/m/g(-ib) suffixed "
            f"count, e.g. 256m or 1gib"
        )
    return int(number) * factor


@dataclass(frozen=True)
class StorageConfig:
    """One sealed-storage setup: the spill budget and the block size."""

    budget_bytes: int
    block_bytes: int = DEFAULT_BLOCK_BYTES

    def __post_init__(self) -> None:
        if self.budget_bytes < PAGE_BYTES:
            raise ConfigurationError(
                f"storage budget must be at least one page "
                f"({PAGE_BYTES} B), got {self.budget_bytes}"
            )
        if self.block_bytes < PAGE_BYTES:
            raise ConfigurationError(
                f"sealed block must be at least one page "
                f"({PAGE_BYTES} B), got {self.block_bytes}"
            )
        if self.block_bytes > self.budget_bytes:
            raise ConfigurationError(
                f"sealed block ({self.block_bytes} B) cannot exceed the "
                f"storage budget ({self.budget_bytes} B)"
            )

    @classmethod
    def parse(cls, text: str) -> "StorageConfig":
        """``--storage BUDGET[:BLOCK]``, e.g. ``256m`` or ``256m:4mi``."""
        budget, _, block = text.partition(":")
        if not block:
            return cls(budget_bytes=parse_size(budget))
        return cls(
            budget_bytes=parse_size(budget), block_bytes=parse_size(block)
        )

    def canonical(self) -> str:
        """A stable spec string (used in cache keys and notes)."""
        if self.block_bytes == DEFAULT_BLOCK_BYTES:
            return str(self.budget_bytes)
        return f"{self.budget_bytes}:{self.block_bytes}"

    def describe(self) -> str:
        """One-line summary for notes and logs."""
        text = f"spill over {format_bytes(self.budget_bytes)}"
        if self.block_bytes != DEFAULT_BLOCK_BYTES:
            text += f", {format_bytes(self.block_bytes)} blocks"
        return text


_ACTIVE: List[Optional[StorageConfig]] = [None]


def current_storage() -> Optional[StorageConfig]:
    """The ambient storage config (``None``: no sealed spill path)."""
    return _ACTIVE[-1]


@contextlib.contextmanager
def use_storage(
    config: Optional[StorageConfig],
) -> Iterator[Optional[StorageConfig]]:
    """Install ``config`` as the ambient storage for the ``with`` scope.

    ``None`` is a no-op scope (the session default), mirroring
    ``use_cluster``/``use_fault_plan``: a workload config whose
    ``storage`` field is set explicitly is never overridden.
    """
    _ACTIVE.append(config)
    try:
        yield config
    finally:
        _ACTIVE.pop()
