"""Spill-aware operator variants: partition to sealed runs, join/aggregate
partition-at-a-time.

The grace-partitioned join is the classical larger-than-memory hash join:
one pass hash-partitions both inputs into P sealed partitions such that
each partition's build side (tuples + hash table) fits the storage budget,
then each partition is unsealed and joined in-memory.  Every partitioned
byte pays seal + I/O on the way out and unseal + I/O on the way back
(:class:`~repro.storage.sealed.SealedStore`), so the in-EPC vs. spill
crossover is a priced trade the planner can reason about, not a free
escape hatch.

Results are **bag-identical** to the in-memory variants: the real
computation is the same numpy join/aggregate run per partition, and a hash
partition never splits a key group across partitions.  When the working
set already fits the budget, both operators skip the partition pass
entirely and degenerate to their in-memory counterparts (zero sealed
bytes) — the property the planner's crossover pricing relies on.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.joins.base import JoinAlgorithm, JoinResult
from repro.core.ops.aggregate import AggFunc, AggregateResult, HashAggregate
from repro.core.structures.hashtable import ChainedHashTable, table_bytes_for
from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import (
    AccessBatch,
    AccessProfile,
    CodeVariant,
    PatternKind,
)
from repro.storage.sealed import SealedStore
from repro.tables.generator import JOIN_TUPLE_BYTES
from repro.tables.table import Table

#: Fibonacci-hash partitioning multiplier (64-bit golden ratio); unrelated
#: to the hash table's Knuth multiplier so partition skew does not
#: correlate with bucket skew.
_PARTITION_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)

#: Ceiling on the partition fan-out: beyond this the partition buffers
#: themselves thrash and a real system would recurse instead.
MAX_PARTITIONS = 1024

#: Share of the budget one partition's working set may occupy: headroom
#: for partition buffers, the probe stream, and the output.
_BUDGET_FILL = 0.5

#: Per-tuple cycles of the partition pass (hash + scatter append).
_PARTITION_COMPUTE = 4.0

# The per-partition build/probe loops reuse PHT's cost signature: once a
# partition fits the budget (and thus the EPC), its random accesses are
# cache-to-DRAM resident like any small hash join.
_BUILD_PARALLELISM = 6.0
_PROBE_PARALLELISM = 6.0
_BUILD_COMPUTE = 10.0
_PROBE_COMPUTE = 6.0
_BUILD_REORDER_SENSITIVITY = 0.02
_PROBE_REORDER_SENSITIVITY = 0.02
_BUILD_MLP_SENSITIVITY = 1.0
_PROBE_MLP_SENSITIVITY = 0.55


def _partition_of(keys: np.ndarray, partitions: int) -> np.ndarray:
    """Deterministic hash partition id per key (``partitions`` a power of 2)."""
    hashed = keys.astype(np.uint64) * _PARTITION_MULTIPLIER
    shift = np.uint64(64 - max(1, (partitions - 1).bit_length()))
    if partitions == 1:
        return np.zeros(len(keys), dtype=np.int64)
    return (hashed >> shift).astype(np.int64) % partitions


def partition_count(
    build_bytes: float, budget_bytes: float, *, tuple_bytes: int = JOIN_TUPLE_BYTES
) -> int:
    """Smallest power-of-two fan-out whose partitions fit the budget.

    A partition's in-memory footprint is its build share plus the chained
    hash table over it (~3x the raw tuples); it must fit inside
    ``_BUDGET_FILL`` of the budget.  Returns 1 when no partitioning is
    needed (the in-memory fast path).
    """
    if budget_bytes <= 0:
        raise ConfigurationError("storage budget must be positive")
    partitions = 1
    while partitions < MAX_PARTITIONS:
        share = build_bytes / partitions
        footprint = share + table_bytes_for(max(1, int(share / tuple_bytes)))
        if footprint <= _BUDGET_FILL * budget_bytes:
            break
        partitions *= 2
    return partitions


class GraceHashJoin(JoinAlgorithm):
    """Grace hash join: sealed hash partitioning, then partition-wise PHT."""

    name = "GRACE"

    def __init__(
        self,
        variant: CodeVariant = CodeVariant.NAIVE,
        *,
        store: SealedStore,
        budget_bytes: float,
        load_factor: float = 1.0,
    ) -> None:
        super().__init__(variant)
        if budget_bytes <= 0:
            raise ConfigurationError("storage budget must be positive")
        self.store = store
        self.budget_bytes = float(budget_bytes)
        self.load_factor = load_factor

    def run(
        self,
        ctx: ExecutionContext,
        build: Table,
        probe: Table,
        *,
        materialize: bool = False,
    ) -> JoinResult:
        """Like :meth:`JoinAlgorithm.run`, but only budget-bounded state is
        enclave-resident: inputs stream through sealed partitions, so the
        enclave allocation is the budget, not the working set."""
        for table, role in ((build, "build"), (probe, "probe")):
            for column in ("key", "payload"):
                if column not in table:
                    raise ConfigurationError(
                        f"{role} table {table.name!r} lacks a {column!r} column"
                    )
        resident = min(
            float(build.logical_bytes + probe.logical_bytes),
            _BUDGET_FILL * self.budget_bytes,
        )
        ctx.allocate(f"{self.name}-staging", int(resident))
        return self._execute(ctx, build, probe, materialize)

    def _execute(
        self,
        ctx: ExecutionContext,
        build: Table,
        probe: Table,
        materialize: bool,
    ) -> JoinResult:
        executor = ctx.executor()
        locality = ctx.data_locality
        threads = ctx.threads

        partitions = partition_count(float(build.logical_bytes), self.budget_bytes)
        build_keys = build["key"]
        probe_keys = probe["key"]

        # ---- partition pass (skipped entirely on the in-memory path) ----
        if partitions > 1:
            build_parts = _partition_of(build_keys, partitions)
            probe_parts = _partition_of(probe_keys, partitions)
            spilled_bytes = float(build.logical_bytes + probe.logical_bytes)
            share = self.split_rows(
                build.logical_rows + probe.logical_rows, threads
            )
            profile = AccessProfile()
            profile.seq_read(
                share,
                JOIN_TUPLE_BYTES,
                locality,
                working_set_bytes=spilled_bytes,
                label="partition-scan",
            )
            profile.seq_write(
                share,
                JOIN_TUPLE_BYTES,
                locality,
                working_set_bytes=spilled_bytes,
                label="partition-out",
            )
            profile.compute(share * _PARTITION_COMPUTE, label="partition-hash")
            self.store.charge_seal(
                profile, spilled_bytes, threads=threads, label="partition-seal"
            )
            executor.run_uniform_phase("partition", profile)
        else:
            build_parts = np.zeros(len(build_keys), dtype=np.int64)
            probe_parts = np.zeros(len(probe_keys), dtype=np.int64)
            spilled_bytes = 0.0

        # ---- partition-wise build + probe -------------------------------
        build_index = np.full(len(probe_keys), -1, dtype=np.int64)
        hit_mask = np.zeros(len(probe_keys), dtype=bool)
        logical_table_bytes = 0.0
        for part in range(partitions):
            build_rows = np.flatnonzero(build_parts == part)
            probe_rows = np.flatnonzero(probe_parts == part)
            if len(probe_rows) == 0:
                continue
            table = ChainedHashTable(
                build_keys[build_rows],
                build["payload"][build_rows],
                self.load_factor,
            )
            local_index, local_hits = table.probe_first(probe_keys[probe_rows])
            hits = probe_rows[local_hits]
            build_index[hits] = build_rows[local_index[local_hits]]
            hit_mask[hits] = True
            logical_table_bytes = max(
                logical_table_bytes,
                float(
                    table_bytes_for(
                        max(1, int(len(build_rows) * build.sim_scale)),
                        self.load_factor,
                    )
                ),
            )
        matches = int(hit_mask.sum())
        ctx.allocate("grace-hash-table", int(logical_table_bytes))

        build_share = self.split_rows(build.logical_rows, threads)
        build_profile = AccessProfile()
        if partitions > 1:
            self.store.charge_unseal(
                build_profile,
                float(build.logical_bytes),
                threads=threads,
                label="build-unseal",
            )
        build_profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=build_share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=float(build.logical_bytes) / partitions,
                locality=locality,
                variant=self.variant,
                parallelism=_BUILD_PARALLELISM,
                compute_cycles_per_item=_BUILD_COMPUTE,
                table_bytes=logical_table_bytes,
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=_BUILD_REORDER_SENSITIVITY,
                mlp_sensitivity=_BUILD_MLP_SENSITIVITY,
                label="build-insert",
            )
        )
        executor.run_uniform_phase("build", build_profile)

        probe_share = self.split_rows(probe.logical_rows, threads)
        probe_profile = AccessProfile()
        if partitions > 1:
            self.store.charge_unseal(
                probe_profile,
                float(probe.logical_bytes),
                threads=threads,
                label="probe-unseal",
            )
        probe_profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=probe_share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=float(probe.logical_bytes) / partitions,
                locality=locality,
                variant=self.variant,
                parallelism=_PROBE_PARALLELISM,
                compute_cycles_per_item=_PROBE_COMPUTE,
                table_bytes=logical_table_bytes,
                table_locality=locality,
                table_writes=False,
                reorder_sensitivity=_PROBE_REORDER_SENSITIVITY,
                mlp_sensitivity=_PROBE_MLP_SENSITIVITY,
                label="probe",
            )
        )
        output = None
        if materialize:
            output = self.materialize_output(
                ctx,
                build,
                probe,
                build_index,
                hit_mask,
                probe_profile,
                sim_scale=probe.sim_scale,
            )
        executor.run_uniform_phase("probe", probe_profile)

        breakdown = executor.trace.breakdown()
        return JoinResult(
            algorithm=self.name,
            setting=ctx.setting.label,
            variant=self.variant,
            threads=threads,
            build_rows=build.logical_rows,
            probe_rows=probe.logical_rows,
            matches=matches,
            matches_logical=matches * probe.sim_scale,
            cycles=executor.total_cycles(),
            phase_cycles=breakdown,
            output=output,
            match_index=build_index,
        )


class ExternalGroupAggregate:
    """Hash aggregate that partitions to sealed runs past the budget.

    Partitioning by key hash keeps every group within one partition, so
    per-partition in-memory aggregation followed by a key-sorted merge is
    bag-identical to :class:`~repro.core.ops.aggregate.HashAggregate`.
    """

    name = "external-aggregate"

    def __init__(
        self,
        variant: CodeVariant = CodeVariant.NAIVE,
        *,
        store: SealedStore,
        budget_bytes: float,
    ) -> None:
        if budget_bytes <= 0:
            raise ConfigurationError("storage budget must be positive")
        self.variant = variant
        self.store = store
        self.budget_bytes = float(budget_bytes)

    def run(
        self,
        ctx: ExecutionContext,
        keys: np.ndarray,
        values: np.ndarray,
        functions: Sequence[AggFunc] = (AggFunc.COUNT,),
        *,
        sim_scale: float = 1.0,
    ) -> AggregateResult:
        keys = np.asarray(keys)
        values = np.asarray(values)
        if len(keys) != len(values):
            raise ConfigurationError("keys and values must have equal length")
        logical_rows = len(keys) * sim_scale
        input_bytes = logical_rows * 8.0
        partitions = partition_count(
            input_bytes, self.budget_bytes, tuple_bytes=8
        )
        inner = HashAggregate(self.variant)
        if partitions == 1:
            return inner.run(
                ctx, keys, values, functions, sim_scale=sim_scale
            )

        # ---- partition pass, priced like the join's ----------------------
        executor = ctx.executor()
        locality = ctx.data_locality
        share = logical_rows / ctx.threads
        profile = AccessProfile()
        profile.seq_read(
            share, 8, locality, working_set_bytes=input_bytes, label="partition-scan"
        )
        profile.seq_write(
            share, 8, locality, working_set_bytes=input_bytes, label="partition-out"
        )
        profile.compute(share * _PARTITION_COMPUTE, label="partition-hash")
        self.store.charge_seal(
            profile, input_bytes, threads=ctx.threads, label="partition-seal"
        )
        self.store.charge_unseal(
            profile, input_bytes, threads=ctx.threads, label="partition-unseal"
        )
        executor.run_uniform_phase("partition", profile)
        partition_cycles = executor.total_cycles()

        # ---- per-partition in-memory aggregation -------------------------
        part_of = _partition_of(keys, partitions)
        group_chunks = []
        agg_chunks: Dict[str, list] = {}
        total_cycles = partition_cycles
        for part in range(partitions):
            rows = np.flatnonzero(part_of == part)
            if len(rows) == 0:
                continue
            result = inner.run(
                ctx,
                keys[rows],
                values[rows],
                functions,
                sim_scale=sim_scale,
            )
            total_cycles += result.cycles
            group_chunks.append(result.group_keys)
            for name, column in result.aggregates.items():
                agg_chunks.setdefault(name, []).append(column)

        group_keys = np.concatenate(group_chunks) if group_chunks else np.empty(0)
        order = np.argsort(group_keys, kind="stable")
        aggregates = {
            name: np.concatenate(chunks)[order]
            for name, chunks in agg_chunks.items()
        }
        return AggregateResult(
            group_keys=group_keys[order],
            aggregates=aggregates,
            input_rows=logical_rows,
            cycles=total_cycles,
        )
