"""Model of the SGXv2 memory-encryption hardware (the AES-XTS engine).

SGXv2 replaced SGXv1's Memory Encryption Engine (with its integrity tree)
by Total Memory Encryption-style AES-XTS plus cryptographic integrity.  The
observable consequences the paper measures, and which this class encodes:

* data held in CPU caches is plaintext → zero overhead for cache-resident
  working sets (Fig. 5 left, Fig. 12 left);
* the prefetcher hides decryption latency for sequential streams → only
  2-5.5 % overhead for linear access (Fig. 15);
* dependent random reads expose the full decryption latency → down to 53 %
  relative throughput for DRAM-sized working sets (Fig. 5);
* random writes additionally pay read-for-ownership + encrypt-on-evict →
  2x at 256 MB up to ~3x at 8 GB (Fig. 5);
* around the L3 boundary, relative SGX performance is *better* than the
  neighbouring sizes (paper footnote 2 attributes this to cache-clearing
  side effects of the SGX security protocol).

All factors are relative multipliers on the plain-CPU cost of the identical
access pattern.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.hardware.calibration import CostParameters
from repro.memory.access import CodeVariant, PatternKind


class MemoryEncryptionEngine:
    """Size- and pattern-dependent SGX memory penalties."""

    def __init__(self, params: CostParameters, l3_bytes: float) -> None:
        if l3_bytes <= 0:
            raise ConfigurationError("l3_bytes must be positive")
        self._params = params
        self._l3 = float(l3_bytes)

    # -- sequential ------------------------------------------------------

    def sequential_factor(self, kind: PatternKind, variant: CodeVariant) -> float:
        """Multiplier for streaming access to EPC data outside the cache."""
        if kind is PatternKind.SEQ_WRITE:
            return 1.0 + self._params.linear_write_penalty
        if variant is CodeVariant.SIMD:
            return 1.0 + self._params.linear_read_simd_penalty
        return 1.0 + self._params.linear_read_scalar_penalty

    # -- random ----------------------------------------------------------

    def _size_progress(self, working_set_bytes: float, anchor: float) -> float:
        """How far ``working_set_bytes`` has progressed from L3 to ``anchor``.

        0 at or below the L3 capacity, 1 at or beyond ``anchor``, log-linear
        in between — penalties grow with the DRAM-resident share, which is
        logarithmic-looking on the paper's log-scaled size axes.
        """
        if working_set_bytes <= self._l3:
            return 0.0
        if working_set_bytes >= anchor:
            return 1.0
        span = math.log(anchor / self._l3)
        return math.log(working_set_bytes / self._l3) / span

    def _boundary_relief(self, working_set_bytes: float) -> float:
        """Penalty reduction near the L3 boundary (paper footnote 2).

        Returns a multiplier in (0, 1] applied to the *excess* penalty; it
        dips to ``1 - cache_boundary_relief`` at exactly the L3 size and
        fades within a factor of ~4 in either direction.
        """
        ratio = working_set_bytes / self._l3
        if ratio <= 0:
            # Degenerate (or denormal-underflowed) sizes are far below the
            # boundary: no relief.
            return 1.0
        distance = abs(math.log(ratio))
        width = math.log(4.0)
        if distance >= width:
            return 1.0
        dip = self._params.cache_boundary_relief * (1.0 - distance / width)
        return 1.0 - dip

    def random_read_factor(self, working_set_bytes: float) -> float:
        """Latency multiplier for random/dependent reads of EPC data."""
        params = self._params
        progress = self._size_progress(
            working_set_bytes, params.random_penalty_saturation_bytes
        )
        excess = (params.random_read_penalty_max - 1.0) * progress
        return 1.0 + excess * self._boundary_relief(working_set_bytes)

    def random_write_factor(
        self, working_set_bytes: float, variant: CodeVariant = CodeVariant.NAIVE
    ) -> float:
        """Latency multiplier for random writes to EPC data.

        Anchored to Fig. 5: 2x at 256 MB and ~3x at 8 GB for the naive write
        loop.  Unrolled/SIMD code overlaps the read-for-ownership traffic and
        recovers roughly half of the excess (this is why the optimized PHT
        join in Fig. 8 stays at 68 % of native: a reduced, but not
        eliminated, random-write penalty remains).
        """
        params = self._params
        anchor_256mb = 256e6
        if working_set_bytes <= self._l3:
            factor = 1.0
        elif working_set_bytes <= anchor_256mb:
            progress = self._size_progress(working_set_bytes, anchor_256mb)
            factor = 1.0 + (params.random_write_penalty_at_256mb - 1.0) * progress
        else:
            span = math.log(params.random_penalty_saturation_bytes / anchor_256mb)
            progress = min(
                1.0, math.log(working_set_bytes / anchor_256mb) / span
            )
            factor = params.random_write_penalty_at_256mb + (
                params.random_write_penalty_max - params.random_write_penalty_at_256mb
            ) * progress
        excess = (factor - 1.0) * self._boundary_relief(working_set_bytes)
        if variant is not CodeVariant.NAIVE:
            excess *= 0.45
        return 1.0 + excess

    # -- exposed per-line latencies (used for dependent chains) ----------

    @property
    def decrypt_line_cycles(self) -> float:
        return self._params.mee_cacheline_decrypt_cycles

    @property
    def encrypt_line_cycles(self) -> float:
        return self._params.mee_cacheline_encrypt_cycles
