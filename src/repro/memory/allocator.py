"""Simulated memory allocation with NUMA and EPC placement.

A :class:`Region` stands for one allocation (a table column, a hash table,
a partition buffer).  The allocator enforces the capacities of the simulated
machine: per-node DRAM and — for enclave allocations — per-node EPC, whose
exhaustion is exactly the failure mode that made SGXv1 impractical and that
SGXv2's 64 GB/socket EPC lifts (Sec. 2).

The allocator also keeps the usage counters that the benchmark harness
reports, and hands each region the :class:`~repro.memory.access.Locality`
the cost model needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import AccessViolationError, AllocationError, EpcExhaustedError
from repro.hardware.topology import Topology
from repro.memory.access import Locality


@dataclass
class Region:
    """One simulated allocation.  Freed regions must not be used again."""

    region_id: int
    name: str
    size_bytes: int
    node: int
    in_enclave: bool
    freed: bool = field(default=False, compare=False)

    @property
    def locality(self) -> Locality:
        """Placement descriptor for the cost model."""
        if self.freed:
            raise AccessViolationError(
                f"use-after-free of region {self.name!r} ({self.size_bytes} B)"
            )
        return Locality(node=self.node, in_enclave=self.in_enclave)


class MemoryAllocator:
    """Tracks DRAM and EPC usage per NUMA node and hands out regions.

    ``allow_epc_oversubscription`` reflects the platform generation: SGXv1
    enclaves may be (much) larger than the physical EPC — the kernel pages
    EPC contents in and out, and the *cost model* charges those faults —
    whereas on SGXv2 the paper's methodology keeps every working set
    EPC-resident, so exceeding it is an error here.
    """

    def __init__(
        self, topology: Topology, *, allow_epc_oversubscription: bool = False
    ) -> None:
        self._topology = topology
        self.allow_epc_oversubscription = allow_epc_oversubscription
        self._ids = itertools.count(1)
        self._dram_used: Dict[int, int] = {n.node_id: 0 for n in topology.nodes}
        self._epc_used: Dict[int, int] = {n.node_id: 0 for n in topology.nodes}
        self._live: Dict[int, Region] = {}
        self.peak_epc_bytes = 0

    # -- queries ---------------------------------------------------------

    def dram_used(self, node: int) -> int:
        """Bytes of DRAM currently allocated on ``node`` (incl. EPC)."""
        self._topology.node(node)
        return self._dram_used[node]

    def epc_used(self, node: int) -> int:
        """Bytes of EPC currently allocated on ``node``."""
        self._topology.node(node)
        return self._epc_used[node]

    def epc_free(self, node: int) -> int:
        """Remaining EPC capacity on ``node``."""
        return self._topology.node(node).epc_bytes - self.epc_used(node)

    @property
    def live_regions(self) -> int:
        return len(self._live)

    # -- allocation ------------------------------------------------------

    def allocate(
        self,
        name: str,
        size_bytes: int,
        *,
        node: int = 0,
        in_enclave: bool = False,
    ) -> Region:
        """Allocate ``size_bytes`` on ``node``; EPC-backed if ``in_enclave``.

        Raises :class:`EpcExhaustedError` when an enclave allocation exceeds
        the node's EPC (on real SGXv2 this would trigger enclave paging,
        which the paper's benchmarks explicitly avoid), and
        :class:`AllocationError` when DRAM itself is exhausted.
        """
        if size_bytes < 0:
            raise AllocationError(f"negative allocation size for {name!r}")
        numa_node = self._topology.node(node)
        if (
            in_enclave
            and not self.allow_epc_oversubscription
            and self._epc_used[node] + size_bytes > numa_node.epc_bytes
        ):
            raise EpcExhaustedError(
                f"EPC on node {node} exhausted: {self._epc_used[node]} used, "
                f"{size_bytes} requested, {numa_node.epc_bytes} capacity"
            )
        if self._dram_used[node] + size_bytes > numa_node.dram_bytes:
            raise AllocationError(
                f"DRAM on node {node} exhausted: {self._dram_used[node]} used, "
                f"{size_bytes} requested, {numa_node.dram_bytes} capacity"
            )
        region = Region(
            region_id=next(self._ids),
            name=name,
            size_bytes=size_bytes,
            node=node,
            in_enclave=in_enclave,
        )
        self._dram_used[node] += size_bytes
        if in_enclave:
            self._epc_used[node] += size_bytes
            self.peak_epc_bytes = max(self.peak_epc_bytes, sum(self._epc_used.values()))
        self._live[region.region_id] = region
        return region

    def free(self, region: Region) -> None:
        """Release ``region``; double frees raise."""
        if region.freed or region.region_id not in self._live:
            raise AccessViolationError(f"double free of region {region.name!r}")
        region.freed = True
        del self._live[region.region_id]
        self._dram_used[region.node] -= region.size_bytes
        if region.in_enclave:
            self._epc_used[region.node] -= region.size_bytes

    def free_all(self) -> None:
        """Release every live region (benchmark teardown)."""
        for region in list(self._live.values()):
            self.free(region)

    def resolve(self, region_id: int) -> Optional[Region]:
        """Look up a live region by id, or ``None``."""
        return self._live.get(region_id)
