"""Simulated memory subsystem: access profiles, residency, costs, allocation."""

from repro.memory.access import (
    AccessBatch,
    AccessProfile,
    CodeVariant,
    Locality,
    PatternKind,
)
from repro.memory.residency import CacheResidency
from repro.memory.cost_model import CostEnvironment, MemoryCostModel
from repro.memory.allocator import MemoryAllocator, Region
from repro.memory.encryption import MemoryEncryptionEngine

__all__ = [
    "AccessBatch",
    "AccessProfile",
    "CodeVariant",
    "Locality",
    "PatternKind",
    "CacheResidency",
    "CostEnvironment",
    "MemoryCostModel",
    "MemoryAllocator",
    "Region",
    "MemoryEncryptionEngine",
]
