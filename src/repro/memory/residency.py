"""Cache residency model.

Random accesses that stay within a cache level pay that level's latency and
— crucially for this paper — incur *no* SGX penalty, because EPC data is
held decrypted in the cache hierarchy (Sec. 2).  The model below estimates,
for a uniformly random access stream over a working set of ``ws`` bytes,
what fraction of accesses is served by each level.

The estimate assumes steady state with LRU-like behaviour: a level of
capacity ``c`` holds a ``c / ws`` fraction of a uniformly accessed working
set (capped at 1).  This matches the qualitative curves of Fig. 4/5: flat at
100 % relative performance while ``ws`` fits L3, then falling as the DRAM
fraction grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.hardware.spec import HardwareSpec


@dataclass(frozen=True)
class LevelShare:
    """Fraction of accesses served by one level of the hierarchy."""

    name: str
    fraction: float
    latency_cycles: float


class CacheResidency:
    """Distributes random accesses over L1/L2/L3/DRAM for a working set."""

    def __init__(self, spec: HardwareSpec) -> None:
        self._spec = spec
        self._levels: List[Tuple[str, float, float]] = [
            (spec.l1d.name, float(spec.l1d.capacity_bytes), spec.l1d.latency_cycles),
            (spec.l2.name, float(spec.l2.capacity_bytes), spec.l2.latency_cycles),
            (spec.l3.name, float(spec.l3.capacity_bytes), spec.l3.latency_cycles),
        ]

    @property
    def l3_bytes(self) -> float:
        return float(self._spec.l3.capacity_bytes)

    def fits_in_cache(self, working_set_bytes: float) -> bool:
        """True when the working set is fully L3-resident."""
        return working_set_bytes <= self.l3_bytes

    def shares(
        self, working_set_bytes: float, dram_latency_cycles: float
    ) -> List[LevelShare]:
        """Level-by-level access fractions for a uniform random stream.

        The returned fractions sum to 1; the last entry is DRAM.
        """
        if working_set_bytes < 0:
            raise ConfigurationError("working set must be non-negative")
        shares: List[LevelShare] = []
        covered = 0.0
        ws = max(working_set_bytes, 1.0)
        for name, capacity, latency in self._levels:
            reachable = min(capacity, ws)
            fraction = max(0.0, (reachable - covered) / ws)
            if fraction > 0:
                shares.append(LevelShare(name, fraction, latency))
            covered = max(covered, reachable)
            if covered >= ws:
                break
        dram_fraction = max(0.0, (ws - covered) / ws)
        if dram_fraction > 0:
            shares.append(LevelShare("DRAM", dram_fraction, dram_latency_cycles))
        return shares

    def dram_fraction(self, working_set_bytes: float) -> float:
        """Fraction of random accesses that miss all caches."""
        ws = max(working_set_bytes, 1.0)
        return max(0.0, (ws - self.l3_bytes) / ws)

    def avg_random_latency(
        self, working_set_bytes: float, dram_latency_cycles: float
    ) -> float:
        """Expected per-access latency for a uniform random stream."""
        return sum(
            share.fraction * share.latency_cycles
            for share in self.shares(working_set_bytes, dram_latency_cycles)
        )
