"""The SGXv2 cost model: prices access batches in simulated CPU cycles.

This is the single component that turns *what an operator did to memory*
(an :class:`~repro.memory.access.AccessProfile`) into *how long the paper's
C++ implementation would have taken* under a given execution environment
(plain CPU vs. enclave mode, NUMA placement, phase concurrency).

Modelled effects, with their calibration sources:

============================  =========================================
sequential bandwidth domains   Table 1 (channels), Fig. 13/15/16
cache residency                Table 1 cache sizes, Fig. 4/5/12 (flat
                               in-cache segments)
random access latency + MLP    Fig. 4/5
SGX linear penalties           Fig. 12/15 (2-5.5 %)
SGX random penalties           Fig. 5 (read 1.9x, write 2-3x)
enclave-mode loop execution    Fig. 6/7 (3.25x naive, 1.2x unrolled)
UPI bandwidth + encryption     Fig. 9/16 (67.2 GB/s cap; 77 %->96 %)
transitions / mutexes / EDMM   Fig. 10/11 (Sec. 4.4)
============================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.calibration import CostParameters
from repro.hardware.spec import HardwareSpec
from repro.memory.access import (
    AccessBatch,
    AccessProfile,
    CodeVariant,
    PatternKind,
    SyncCosts,
)
from repro.memory.encryption import MemoryEncryptionEngine
from repro.memory.residency import CacheResidency
from repro.units import nanoseconds_to_cycles

#: Cycles of an ordinary (non-enclave) function call standing in for what
#: would be an enclave transition when the same code runs without SGX.
_PLAIN_CALL_CYCLES = 50.0

#: Cycles a plain process pays per freshly faulted-in heap page.
_PLAIN_PAGE_FAULT_CYCLES = 2_000.0

#: Out-of-order windows overlap at most this many cache hits of an RMW
#: table access stream.
_CACHE_HIT_OVERLAP = 4.0

#: A core streaming from the remote socket loses part of its request
#: concurrency to the longer round trip.
_CROSS_NUMA_CORE_EFFICIENCY = 0.8


@dataclass(frozen=True)
class CostEnvironment:
    """Execution environment a batch is priced under.

    ``concurrency`` is the number of threads simultaneously executing the
    same phase (they share bandwidth domains); ``thread_node`` is the NUMA
    node of the core running this thread.
    """

    enclave_mode: bool
    thread_node: int = 0
    concurrency: int = 1

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        if self.thread_node < 0:
            raise ConfigurationError("thread_node must be >= 0")


class MemoryCostModel:
    """Prices :class:`AccessBatch`/:class:`AccessProfile` objects in cycles."""

    def __init__(self, spec: HardwareSpec, params: CostParameters) -> None:
        self.spec = spec
        self.params = params
        self.residency = CacheResidency(spec)
        self.mee = MemoryEncryptionEngine(params, spec.l3.capacity_bytes)
        freq = spec.base_frequency_hz
        self._dram_latency = nanoseconds_to_cycles(
            spec.memory.random_read_latency_ns, freq
        )
        self._cross_extra = nanoseconds_to_cycles(
            spec.memory.cross_numa_extra_latency_ns, freq
        )
        self._core_stream_bpc = spec.single_core_stream_bandwidth_bytes() / freq
        self._socket_stream_bpc = spec.socket_stream_bandwidth_bytes() / freq
        self._upi_bpc = spec.upi_total_bandwidth_bytes / freq

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def batch_cycles(self, batch: AccessBatch, env: CostEnvironment) -> float:
        """Simulated cycles one thread spends executing ``batch``."""
        kind = batch.kind
        if kind is PatternKind.COMPUTE:
            return batch.count
        if kind in (PatternKind.SEQ_READ, PatternKind.SEQ_WRITE):
            return self._sequential_cycles(batch, env)
        if kind in (
            PatternKind.RANDOM_READ,
            PatternKind.RANDOM_WRITE,
            PatternKind.DEPENDENT_READ,
        ):
            return self._random_cycles(batch, env)
        if kind is PatternKind.RMW_LOOP:
            return self._rmw_loop_cycles(batch, env)
        raise ConfigurationError(f"unknown pattern kind: {kind}")

    def sync_cycles(self, sync: SyncCosts, env: CostEnvironment) -> float:
        """Cycles spent on synchronization, transitions, and paging."""
        params = self.params
        cycles = 0.0
        if env.enclave_mode:
            cycles += sync.transitions * params.transition_cycles
            # SDK mutex: a contended acquisition parks the thread via an
            # OCALL; the avalanche factor models the pile-up described in
            # Sec. 4.4 (waiters arriving while the owner is mid-transition).
            per_mutex = params.atomic_op_cycles + (
                sync.mutex_contention_ratio
                * params.transition_cycles
                * params.mutex_avalanche_factor
            )
            cycles += sync.pages_added_dynamically * params.edmm_page_add_cycles
        else:
            cycles += sync.transitions * _PLAIN_CALL_CYCLES
            # A contended pthread mutex mostly resolves via brief kernel
            # futex waits; only part of the contended acquisitions pay the
            # full syscall.
            per_mutex = params.atomic_op_cycles + (
                sync.mutex_contention_ratio * params.futex_syscall_cycles * 0.5
            )
            cycles += sync.pages_added_dynamically * _PLAIN_PAGE_FAULT_CYCLES
        cycles += sync.mutex_acquisitions * per_mutex
        spin_wait = sync.mutex_contention_ratio * 5.0 * params.atomic_op_cycles
        cycles += sync.spinlock_acquisitions * (params.atomic_op_cycles + spin_wait)
        cycles += sync.atomic_ops * params.atomic_op_cycles
        cycles += sync.pages_touched_statically * params.static_page_touch_cycles
        cycles += sync.barriers * (200.0 + 30.0 * env.concurrency)
        return cycles

    def profile_cycles(self, profile: AccessProfile, env: CostEnvironment) -> float:
        """Total cycles for all batches plus synchronization costs."""
        total = sum(self.batch_cycles(batch, env) for batch in profile)
        return total + self.sync_cycles(profile.sync, env)

    # ------------------------------------------------------------------
    # legacy EPC paging (SGXv1 platform models; disabled on SGXv2)
    # ------------------------------------------------------------------

    def _epc_overflow_fraction(self, working_set_bytes: float) -> float:
        """Share of an enclave working set that does not fit the EPC."""
        params = self.params
        if not params.epc_paging_enabled or working_set_bytes <= 0:
            return 0.0
        return max(
            0.0, (working_set_bytes - params.epc_effective_bytes) / working_set_bytes
        )

    def _paging_sequential_cycles(
        self, bytes_streamed: float, working_set_bytes: float,
        locality, env: CostEnvironment,
    ) -> float:
        """Page-fault cycles for streaming through an oversubscribed EPC.

        Each 4 KiB page of the overflowing share is evicted (re-encrypted)
        and re-loaded once per streaming pass.
        """
        if not (env.enclave_mode and locality.in_enclave):
            return 0.0
        overflow = self._epc_overflow_fraction(working_set_bytes)
        if overflow == 0.0:
            return 0.0
        pages = bytes_streamed * overflow / 4096.0
        return pages * self.params.epc_page_fault_cycles

    def _paging_random_cycles(
        self, accesses: float, working_set_bytes: float,
        locality, env: CostEnvironment,
    ) -> float:
        """Page-fault cycles for random access into an oversubscribed EPC.

        In steady state a random access misses the resident EPC set with
        probability equal to the overflow share — this is the
        orders-of-magnitude collapse that made SGXv1 joins impractical.
        """
        if not (env.enclave_mode and locality.in_enclave):
            return 0.0
        overflow = self._epc_overflow_fraction(working_set_bytes)
        if overflow == 0.0:
            return 0.0
        return accesses * overflow * self.params.epc_page_fault_cycles

    # ------------------------------------------------------------------
    # sequential access
    # ------------------------------------------------------------------

    def _cache_seq_bpc(self, working_set: float, variant: CodeVariant) -> float:
        """Bytes per cycle for a cache-resident stream."""
        scalar = variant is not CodeVariant.SIMD
        if working_set <= self.spec.l2.capacity_bytes:
            return 8.0 if scalar else 64.0
        return 8.0 if scalar else 32.0

    def _dram_seq_bpc(
        self, cross_numa: bool, concurrency: int, variant: CodeVariant
    ) -> float:
        """Per-thread bytes per cycle when streaming from DRAM."""
        core = self._core_stream_bpc
        if variant is not CodeVariant.SIMD:
            core = min(core, 8.0)
        if cross_numa:
            core *= _CROSS_NUMA_CORE_EFFICIENCY
            domain = self._upi_bpc
        else:
            domain = self._socket_stream_bpc
        return min(core, domain / max(concurrency, 1))

    def _upi_sgx_relative(self, concurrency: int) -> float:
        """Fig. 16 curve: relative SGX cross-NUMA scan throughput."""
        single = self.params.upi_seq_single_thread_relative
        saturated = self.params.upi_seq_saturated_relative
        return saturated - (saturated - single) / max(concurrency, 1)

    def _sequential_cycles(self, batch: AccessBatch, env: CostEnvironment) -> float:
        total_bytes = batch.bytes_touched
        if total_bytes <= 0:
            return 0.0
        in_cache = self.residency.fits_in_cache(batch.working_set_bytes)
        if in_cache:
            # Plaintext in cache: identical inside and outside SGX.
            return total_bytes / self._cache_seq_bpc(
                batch.working_set_bytes, batch.variant
            )
        cross = env.thread_node != batch.locality.node
        bpc = self._dram_seq_bpc(cross, env.concurrency, batch.variant)
        cycles = total_bytes / bpc
        if env.enclave_mode and batch.locality.in_enclave:
            if cross:
                # UPI Crypto Engine: latency-bound penalty for few threads,
                # amortized once the UPI links themselves saturate.
                cycles /= self._upi_sgx_relative(env.concurrency)
            else:
                cycles *= self.mee.sequential_factor(batch.kind, batch.variant)
        cycles += self._paging_sequential_cycles(
            total_bytes, batch.working_set_bytes, batch.locality, env
        )
        return cycles

    # ------------------------------------------------------------------
    # random access
    # ------------------------------------------------------------------

    def _random_cycles(self, batch: AccessBatch, env: CostEnvironment) -> float:
        if batch.count <= 0:
            return 0.0
        cross = env.thread_node != batch.locality.node
        dram_latency = self._dram_latency + (self._cross_extra if cross else 0.0)
        sgx_data = env.enclave_mode and batch.locality.in_enclave
        if sgx_data:
            if batch.kind is PatternKind.RANDOM_WRITE:
                dram_latency *= self.mee.random_write_factor(
                    batch.working_set_bytes, batch.variant
                )
            else:
                dram_latency *= self.mee.random_read_factor(batch.working_set_bytes)
            if cross:
                dram_latency *= self.params.upi_random_latency_factor
        shares = self.residency.shares(batch.working_set_bytes, dram_latency)
        mlp = 1.0 if batch.kind is PatternKind.DEPENDENT_READ else batch.parallelism
        per_access = 0.0
        for share in shares:
            if share.name == "DRAM":
                per_access += share.fraction * share.latency_cycles / mlp
            else:
                overlap = min(mlp, _CACHE_HIT_OVERLAP)
                per_access += max(
                    share.fraction * share.latency_cycles / overlap,
                    share.fraction * 1.0,
                )
        per_access += batch.compute_cycles_per_item
        paging = self._paging_random_cycles(
            batch.count, batch.working_set_bytes, batch.locality, env
        )
        return batch.count * per_access + paging

    # ------------------------------------------------------------------
    # fused read-modify-write loops (Sec. 4.2)
    # ------------------------------------------------------------------

    def _loop_penalty(self, variant: CodeVariant) -> float:
        """Enclave-mode code-execution penalty for a fused loop body."""
        if variant is CodeVariant.NAIVE:
            return self.params.rmw_loop_penalty_naive
        if variant is CodeVariant.UNROLLED:
            return self.params.rmw_loop_penalty_unrolled
        return self.params.rmw_loop_penalty_simd

    def _rmw_loop_cycles(self, batch: AccessBatch, env: CostEnvironment) -> float:
        """Cost of a loop that scans an input and updates a table.

        The loop-execution penalty (restricted instruction reordering in
        enclave mode, Sec. 4.2) applies to the *whole loop body* — input
        scan, index computation, and cache-resident table accesses — which
        is why the histogram slowdown is independent of data location
        (Fig. 7).  DRAM-resident table accesses additionally pay the memory
        encryption penalties with a correspondingly reduced memory-level
        parallelism.
        """
        if batch.count <= 0:
            return 0.0
        assert batch.table_locality is not None  # enforced in __post_init__
        # -- input scan component (sequential) ---------------------------
        seq_bytes = batch.bytes_touched
        in_cache_input = self.residency.fits_in_cache(batch.working_set_bytes)
        if in_cache_input:
            seq = seq_bytes / self._cache_seq_bpc(
                batch.working_set_bytes, batch.variant
            )
            seq_sgx_factor = 1.0
        else:
            cross_in = env.thread_node != batch.locality.node
            seq = seq_bytes / self._dram_seq_bpc(
                cross_in, env.concurrency, batch.variant
            )
            seq_sgx_factor = 1.0
            if env.enclave_mode and batch.locality.in_enclave:
                if cross_in:
                    seq_sgx_factor = 1.0 / self._upi_sgx_relative(env.concurrency)
                else:
                    seq_sgx_factor = self.mee.sequential_factor(
                        PatternKind.SEQ_READ, batch.variant
                    )
        # -- loop body compute --------------------------------------------
        body = batch.count * batch.compute_cycles_per_item
        # -- table access component ---------------------------------------
        cross_tab = env.thread_node != batch.table_locality.node
        dram_latency = self._dram_latency + (self._cross_extra if cross_tab else 0.0)
        sgx_table = env.enclave_mode and batch.table_locality.in_enclave
        if sgx_table:
            if batch.table_writes:
                dram_latency *= self.mee.random_write_factor(
                    batch.table_bytes, batch.variant
                )
            else:
                dram_latency *= self.mee.random_read_factor(batch.table_bytes)
            if cross_tab:
                dram_latency *= self.params.upi_random_latency_factor
        shares = self.residency.shares(batch.table_bytes, dram_latency)
        cache_hits = 0.0
        dram_fraction = 0.0
        dram_per_access = 0.0
        for share in shares:
            if share.name == "DRAM":
                dram_fraction = share.fraction
                dram_per_access = share.latency_cycles
            else:
                overlap = min(batch.parallelism, _CACHE_HIT_OVERLAP)
                cache_hits += max(
                    share.fraction * share.latency_cycles / overlap,
                    share.fraction * 1.0,
                )
        cache_component = batch.count * cache_hits
        mlp = batch.parallelism
        dram_component = batch.count * dram_fraction * dram_per_access / mlp
        # Legacy EPC paging on both sides of the fused loop.
        paging = self._paging_sequential_cycles(
            seq_bytes, batch.working_set_bytes, batch.locality, env
        )
        paging += self._paging_random_cycles(
            batch.count * dram_fraction,
            batch.table_bytes,
            batch.table_locality,
            env,
        )
        if not env.enclave_mode:
            return seq + body + cache_component + dram_component + paging
        raw_penalty = self._loop_penalty(batch.variant)
        body_penalty = 1.0 + (raw_penalty - 1.0) * batch.reorder_sensitivity
        mlp_sensitivity = (
            batch.reorder_sensitivity
            if batch.mlp_sensitivity is None
            else batch.mlp_sensitivity
        )
        mlp_penalty = 1.0 + (raw_penalty - 1.0) * mlp_sensitivity
        loop_part = (seq * seq_sgx_factor + body + cache_component) * body_penalty
        mlp_restricted = max(1.0, mlp / mlp_penalty)
        dram_part = batch.count * dram_fraction * dram_per_access / mlp_restricted
        return loop_part + dram_part + paging
