"""Access profiles: the structured trace an operator hands to the cost model.

Operators in this library do their work twice over, in a single pass: they
compute the *real* result with numpy, and they record *what the equivalent
C++ implementation would have done to memory* as a list of
:class:`AccessBatch` objects.  A batch summarizes a homogeneous group of
accesses ("12.5 M independent random 8-byte writes into a 256 MB region on
node 0, from naive code").  The cost model prices batches; it never sees
individual addresses, which keeps simulation cost independent of data size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError


class PatternKind(enum.Enum):
    """The memory access patterns distinguished by the cost model."""

    #: Pure computation; ``count`` is a cycle count, no memory traffic.
    COMPUTE = "compute"
    #: Streaming reads of ``count`` elements of ``element_bytes`` each.
    SEQ_READ = "seq_read"
    #: Streaming writes.
    SEQ_WRITE = "seq_write"
    #: Independent random reads (out-of-order execution can overlap them).
    RANDOM_READ = "random_read"
    #: Independent random writes.
    RANDOM_WRITE = "random_write"
    #: Dependent random reads — each address depends on the previous value
    #: (pointer chasing); no memory-level parallelism is possible.
    DEPENDENT_READ = "dependent_read"
    #: A fused read-modify-write loop (histogram building, hash-table
    #: inserts): sequential reads of the input interleaved with random
    #: read-modify-writes into a table of ``table_bytes``.
    RMW_LOOP = "rmw_loop"


class CodeVariant(enum.Enum):
    """How the inner loop is written; Sec. 4.2 of the paper.

    Inside an SGXv2 enclave the CPU's dynamic instruction reordering is
    restricted, so dependent loops run at a fraction of their native speed
    unless the *source code* is manually unrolled and reordered.
    """

    #: The straightforward loop (Listing 1).
    NAIVE = "naive"
    #: Manually unrolled 8x with index computations hoisted (Listing 2).
    UNROLLED = "unrolled"
    #: AVX-512-assisted unrolling with up to 32 indexes in registers.
    SIMD = "simd"


@dataclass(frozen=True)
class Locality:
    """Where the touched data lives: NUMA node and protection domain."""

    node: int
    in_enclave: bool

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(f"node must be non-negative, got {self.node}")


@dataclass(frozen=True)
class AccessBatch:
    """A homogeneous group of memory accesses (see module docstring).

    ``working_set_bytes`` is the region size random accesses are spread
    over; it drives cache residency and the size-dependent SGX penalties.
    ``parallelism`` is the memory-level parallelism the access stream
    exhibits on the plain CPU (1 for fully dependent chains, ~8 for
    independent accesses); the enclave-mode code-execution restriction
    reduces it for :attr:`CodeVariant.NAIVE` code.
    ``table_bytes``/``table_locality`` describe the RMW target of fused
    :attr:`PatternKind.RMW_LOOP` batches; ``table_writes`` distinguishes
    updating loops (histogram build, hash insert) from read-only probing
    loops, which pay the lighter random-read penalty.
    """

    kind: PatternKind
    count: float
    element_bytes: int
    working_set_bytes: float
    locality: Locality
    variant: CodeVariant = CodeVariant.NAIVE
    parallelism: float = 8.0
    compute_cycles_per_item: float = 1.0
    table_bytes: float = 0.0
    table_locality: Optional[Locality] = None
    table_writes: bool = True
    #: How exposed the loop body is to the enclave-mode reordering
    #: restriction (Sec. 4.2).  1.0 = a tight dependent loop like the radix
    #: histogram (full 3.25x); values < 1 model loops with enough inherent
    #: instruction-level parallelism that the restriction bites less (the
    #: in-cache probe loops of Fig. 6 barely slow down).
    reorder_sensitivity: float = 1.0
    #: How strongly the restriction throttles the loop's *memory-level
    #: parallelism* (the dynamic unrolling the CPU loses in enclave mode).
    #: Defaults to ``reorder_sensitivity``; PHT-style loops have cheap
    #: bodies (low reorder_sensitivity) yet lose their overlapping of DRAM
    #: misses entirely (mlp_sensitivity 1.0) — that is why PHT is unhurt
    #: in-cache (Fig. 4, 95 %) but collapses once the table exceeds cache.
    mlp_sensitivity: Optional[float] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError("count must be non-negative")
        if self.kind is not PatternKind.COMPUTE:
            if self.element_bytes <= 0:
                raise ConfigurationError("element_bytes must be positive")
            if self.working_set_bytes < 0:
                raise ConfigurationError("working_set_bytes must be non-negative")
        if self.parallelism < 1.0:
            raise ConfigurationError("parallelism must be >= 1")
        if not 0.0 <= self.reorder_sensitivity <= 1.0:
            raise ConfigurationError("reorder_sensitivity must be within [0, 1]")
        if self.mlp_sensitivity is not None and not 0.0 <= self.mlp_sensitivity <= 1.0:
            raise ConfigurationError("mlp_sensitivity must be within [0, 1]")
        if self.kind is PatternKind.RMW_LOOP:
            if self.table_bytes <= 0:
                raise ConfigurationError("RMW_LOOP batches need table_bytes > 0")
            if self.table_locality is None:
                raise ConfigurationError("RMW_LOOP batches need a table_locality")

    @property
    def bytes_touched(self) -> float:
        """Total bytes moved by the batch (input side for RMW loops)."""
        if self.kind is PatternKind.COMPUTE:
            return 0.0
        return self.count * self.element_bytes

    def scaled(self, factor: float) -> "AccessBatch":
        """A copy with ``count`` multiplied by ``factor`` (work splitting)."""
        if factor < 0:
            raise ConfigurationError("scale factor must be non-negative")
        return replace(self, count=self.count * factor)


@dataclass
class SyncCosts:
    """Non-memory events an operator incurs: transitions, locks, pages.

    These are accumulated separately from access batches because their cost
    depends on enclave state rather than on data placement.
    """

    transitions: int = 0
    mutex_acquisitions: int = 0
    mutex_contention_ratio: float = 0.0
    spinlock_acquisitions: int = 0
    atomic_ops: int = 0
    barriers: int = 0
    pages_added_dynamically: int = 0
    pages_touched_statically: int = 0

    def merge(self, other: "SyncCosts") -> None:
        """Accumulate ``other`` into self (contention ratio is count-weighted)."""
        total_mutex = self.mutex_acquisitions + other.mutex_acquisitions
        if total_mutex > 0:
            self.mutex_contention_ratio = (
                self.mutex_contention_ratio * self.mutex_acquisitions
                + other.mutex_contention_ratio * other.mutex_acquisitions
            ) / total_mutex
        self.transitions += other.transitions
        self.mutex_acquisitions += other.mutex_acquisitions
        self.spinlock_acquisitions += other.spinlock_acquisitions
        self.atomic_ops += other.atomic_ops
        self.barriers += other.barriers
        self.pages_added_dynamically += other.pages_added_dynamically
        self.pages_touched_statically += other.pages_touched_statically


class AccessProfile:
    """An ordered collection of access batches plus synchronization costs."""

    def __init__(self, batches: Optional[Iterable[AccessBatch]] = None) -> None:
        self._batches: List[AccessBatch] = list(batches or [])
        self.sync = SyncCosts()

    def __iter__(self) -> Iterator[AccessBatch]:
        return iter(self._batches)

    def __len__(self) -> int:
        return len(self._batches)

    @property
    def batches(self) -> List[AccessBatch]:
        return list(self._batches)

    def add(self, batch: AccessBatch) -> None:
        """Append one batch."""
        self._batches.append(batch)

    def extend(self, batches: Iterable[AccessBatch]) -> None:
        for batch in batches:
            self.add(batch)

    def merge(self, other: "AccessProfile") -> None:
        """Append all of ``other``'s batches and sync costs into self."""
        self._batches.extend(other._batches)
        self.sync.merge(other.sync)

    # -- convenience constructors used throughout the operators ---------

    def compute(self, cycles: float, label: str = "") -> None:
        """Record ``cycles`` of pure computation."""
        self.add(
            AccessBatch(
                kind=PatternKind.COMPUTE,
                count=cycles,
                element_bytes=1,
                working_set_bytes=0,
                locality=Locality(node=0, in_enclave=False),
                label=label,
            )
        )

    def seq_read(
        self,
        count: float,
        element_bytes: int,
        locality: Locality,
        *,
        variant: CodeVariant = CodeVariant.SIMD,
        working_set_bytes: Optional[float] = None,
        label: str = "",
    ) -> None:
        """Record a streaming read of ``count`` elements.

        ``working_set_bytes`` defaults to the streamed bytes; pass the
        *aggregate* stream size when this profile is one thread's stripe of
        a larger stream — per-thread stripes can look cache-resident even
        though the threads jointly blow through the shared L3.
        """
        self.add(
            AccessBatch(
                kind=PatternKind.SEQ_READ,
                count=count,
                element_bytes=element_bytes,
                working_set_bytes=(
                    count * element_bytes
                    if working_set_bytes is None
                    else working_set_bytes
                ),
                locality=locality,
                variant=variant,
                label=label,
            )
        )

    def seq_write(
        self,
        count: float,
        element_bytes: int,
        locality: Locality,
        *,
        variant: CodeVariant = CodeVariant.SIMD,
        working_set_bytes: Optional[float] = None,
        label: str = "",
    ) -> None:
        """Record a streaming write of ``count`` elements (see seq_read)."""
        self.add(
            AccessBatch(
                kind=PatternKind.SEQ_WRITE,
                count=count,
                element_bytes=element_bytes,
                working_set_bytes=(
                    count * element_bytes
                    if working_set_bytes is None
                    else working_set_bytes
                ),
                locality=locality,
                variant=variant,
                label=label,
            )
        )

    def total_bytes(self) -> float:
        """Sum of bytes touched over all batches."""
        return sum(batch.bytes_touched for batch in self._batches)
