"""Table persistence: CSV interchange and binary save/load.

Benchmark inputs are normally generated, but a downstream user evaluating
their own workload needs to get data in and out: CSV for interchange with
other tools, and an ``.npz``-based binary format that round-trips dtypes
and the ``sim_scale`` exactly (CSV is header + rows; scale travels in a
header comment).
"""

from __future__ import annotations

import io
import pathlib
from typing import List, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.tables.table import Column, Table

PathLike = Union[str, pathlib.Path]

_SCALE_COMMENT = "# sim_scale="


def table_to_csv(table: Table) -> str:
    """Render a table as CSV (with a sim_scale header comment)."""
    out = io.StringIO()
    if table.sim_scale != 1.0:
        out.write(f"{_SCALE_COMMENT}{table.sim_scale!r}\n")
    out.write(",".join(table.column_names) + "\n")
    columns = [table[name] for name in table.column_names]
    for row in range(table.num_rows):
        out.write(",".join(str(col[row]) for col in columns) + "\n")
    return out.getvalue()


def table_from_csv(text: str, name: str = "table") -> Table:
    """Parse a table from CSV produced by :func:`table_to_csv`.

    Values are parsed as integers when every entry of a column is
    integral, else as floats.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    sim_scale = 1.0
    if lines and lines[0].startswith(_SCALE_COMMENT):
        sim_scale = float(lines[0][len(_SCALE_COMMENT):])
        lines = lines[1:]
    if not lines:
        raise ConfigurationError("CSV has no header line")
    header = [part.strip() for part in lines[0].split(",")]
    if not header or any(not part for part in header):
        raise ConfigurationError("CSV header has empty column names")
    raw: List[List[str]] = []
    for line_no, line in enumerate(lines[1:], start=2):
        parts = line.split(",")
        if len(parts) != len(header):
            raise ConfigurationError(
                f"CSV line {line_no} has {len(parts)} fields, "
                f"expected {len(header)}"
            )
        raw.append(parts)
    columns = []
    for index, column_name in enumerate(header):
        values = [row[index] for row in raw]
        try:
            data = np.array([int(v) for v in values], dtype=np.int64)
        except ValueError:
            try:
                data = np.array([float(v) for v in values])
            except ValueError:
                raise ConfigurationError(
                    f"column {column_name!r} holds non-numeric data"
                ) from None
        columns.append(Column(column_name, data))
    if not raw:
        columns = [
            Column(column_name, np.empty(0, dtype=np.int64))
            for column_name in header
        ]
    return Table(name, columns, sim_scale=sim_scale)


def save_table(table: Table, path: PathLike) -> None:
    """Save a table (dtypes and sim_scale preserved) to ``path`` (.npz)."""
    arrays = {name: table[name] for name in table.column_names}
    np.savez_compressed(
        pathlib.Path(path),
        __order__=np.array(table.column_names),
        __sim_scale__=np.array([table.sim_scale]),
        __name__=np.array([table.name]),
        **arrays,
    )


def load_table(path: PathLike) -> Table:
    """Load a table previously written by :func:`save_table`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"no table file at {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            order = [str(name) for name in archive["__order__"]]
            sim_scale = float(archive["__sim_scale__"][0])
            name = str(archive["__name__"][0])
        except KeyError:
            raise ConfigurationError(
                f"{path} is not a saved table (missing metadata)"
            ) from None
        columns = [Column(column, archive[column]) for column in order]
    return Table(name, columns, sim_scale=sim_scale)
