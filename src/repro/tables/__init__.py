"""Columnar tables and workload generators."""

from repro.tables.table import Column, Table
from repro.tables.generator import (
    JOIN_TUPLE_BYTES,
    generate_join_relation_pair,
    generate_key_value_table,
    rows_for_bytes,
)
from repro.tables.tpch import TpchData, generate_tpch

__all__ = [
    "Column",
    "Table",
    "JOIN_TUPLE_BYTES",
    "generate_join_relation_pair",
    "generate_key_value_table",
    "rows_for_bytes",
    "TpchData",
    "generate_tpch",
]
