"""Columnar tables backed by numpy arrays.

Operators compute their *results* on the physical numpy data but price
their *costs* against logical sizes: a table can represent a larger logical
relation through ``sim_scale`` (physical rows x scale = logical rows), so
benchmarks over paper-sized inputs (e.g. the 400 MB probe table, 50 M rows)
run in milliseconds while the cost model still sees the full working set.
Correctness is unaffected because all per-row logic is exercised on the
physical rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    data: np.ndarray

    def __post_init__(self) -> None:
        if self.data.ndim != 1:
            raise ConfigurationError(f"column {self.name!r} must be 1-dimensional")

    def __len__(self) -> int:
        return len(self.data)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def element_bytes(self) -> int:
        return int(self.data.dtype.itemsize)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


class Table:
    """A named collection of equal-length columns."""

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        *,
        sim_scale: float = 1.0,
    ) -> None:
        cols: List[Column] = list(columns)
        if not cols:
            raise ConfigurationError(f"table {name!r} needs at least one column")
        length = len(cols[0])
        for col in cols:
            if len(col) != length:
                raise ConfigurationError(
                    f"table {name!r}: column {col.name!r} has {len(col)} rows, "
                    f"expected {length}"
                )
        if sim_scale <= 0:
            raise ConfigurationError("sim_scale must be positive")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"table {name!r} has duplicate column names")
        self.name = name
        self._columns: Dict[str, Column] = {c.name: c for c in cols}
        self._order: List[str] = names
        self.num_rows = length
        self.sim_scale = float(sim_scale)

    # -- structure -------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return list(self._order)

    def column(self, name: str) -> Column:
        """Return the column or raise ``ConfigurationError``."""
        try:
            return self._columns[name]
        except KeyError:
            raise ConfigurationError(
                f"table {self.name!r} has no column {name!r} "
                f"(have {self._order})"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name).data

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.num_rows

    # -- sizes -----------------------------------------------------------

    @property
    def row_bytes(self) -> int:
        """Bytes of one row across all columns."""
        return sum(c.element_bytes for c in self._columns.values())

    @property
    def physical_bytes(self) -> int:
        return sum(c.nbytes for c in self._columns.values())

    @property
    def logical_rows(self) -> float:
        """Row count the cost model should price (physical x sim_scale)."""
        return self.num_rows * self.sim_scale

    @property
    def logical_bytes(self) -> float:
        return self.logical_rows * self.row_bytes

    # -- derivation ------------------------------------------------------

    def select(self, mask: np.ndarray, name: Optional[str] = None) -> "Table":
        """A new table containing the rows where ``mask`` is true."""
        if len(mask) != self.num_rows:
            raise ConfigurationError("selection mask length mismatch")
        return Table(
            name or f"{self.name}_sel",
            [Column(c.name, c.data[mask]) for c in self._columns.values()],
            sim_scale=self.sim_scale,
        )

    def take(self, indexes: np.ndarray, name: Optional[str] = None) -> "Table":
        """A new table containing the rows at ``indexes`` (gather)."""
        return Table(
            name or f"{self.name}_take",
            [Column(c.name, c.data[indexes]) for c in self._columns.values()],
            sim_scale=self.sim_scale,
        )

    def with_columns(self, extra: Iterable[Column], name: Optional[str] = None) -> "Table":
        """A new table with ``extra`` columns appended."""
        cols = [self._columns[n] for n in self._order]
        return Table(name or self.name, cols + list(extra), sim_scale=self.sim_scale)

    @classmethod
    def from_arrays(
        cls, name: str, *, sim_scale: float = 1.0, **arrays: np.ndarray
    ) -> "Table":
        """Convenience constructor from keyword arrays (insertion order)."""
        return cls(
            name,
            [Column(col_name, data) for col_name, data in arrays.items()],
            sim_scale=sim_scale,
        )
