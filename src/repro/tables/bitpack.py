"""Bit-packed (dictionary-compressed) columns.

The SIMD-scan line of work the paper builds on [Willhalm et al., 38] scans
*bit-packed* columns: dictionary codes of ``k`` bits each, stored back to
back in a dense bit stream, unpacked on the fly inside vector registers.
For an enclave DBMS packing is doubly attractive: it multiplies the
values-per-second rate of the (bandwidth-bound) scan *and* shrinks the EPC
footprint.  This module implements real pack/unpack (vectorized, exact) so
the packed scan operates on genuine compressed data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

_WORD_BITS = 64


class BitPackedColumn:
    """A column of ``bits``-wide codes packed densely into 64-bit words."""

    def __init__(self, values: np.ndarray, bits: int) -> None:
        if not 1 <= bits <= 32:
            raise ConfigurationError("bits must be within 1..32")
        values = np.asarray(values)
        if values.ndim != 1:
            raise ConfigurationError("values must be 1-dimensional")
        if len(values) and (values.min() < 0 or values.max() >= (1 << bits)):
            raise ConfigurationError(
                f"values do not fit in {bits} bits "
                f"(range {values.min()}..{values.max()})"
            )
        self.bits = bits
        self.num_values = len(values)
        self.words = self._pack(values.astype(np.uint64), bits)

    # -- packing ----------------------------------------------------------

    @staticmethod
    def _pack(values: np.ndarray, bits: int) -> np.ndarray:
        n = len(values)
        total_bits = n * bits
        words = np.zeros((total_bits + _WORD_BITS - 1) // _WORD_BITS or 1,
                         dtype=np.uint64)
        if n == 0:
            return words
        positions = np.arange(n, dtype=np.uint64) * np.uint64(bits)
        word_index = (positions >> np.uint64(6)).astype(np.int64)
        shift = positions & np.uint64(63)
        # Low halves: bits that land in the first word (left-shift drops
        # any overflow past bit 63, which the spill pass re-adds).
        np.bitwise_or.at(words, word_index, values << shift)
        spill = (shift + np.uint64(bits)) > np.uint64(_WORD_BITS)
        if spill.any():
            spill_values = values[spill]
            spill_shift = np.uint64(_WORD_BITS) - shift[spill]
            np.bitwise_or.at(
                words, word_index[spill] + 1, spill_values >> spill_shift
            )
        return words

    # -- unpacking ----------------------------------------------------------

    def unpack(self) -> np.ndarray:
        """Decode every value (exact inverse of packing)."""
        n = self.num_values
        if n == 0:
            return np.empty(0, dtype=np.uint32)
        bits = np.uint64(self.bits)
        mask = np.uint64((1 << self.bits) - 1)
        positions = np.arange(n, dtype=np.uint64) * bits
        word_index = (positions >> np.uint64(6)).astype(np.int64)
        shift = positions & np.uint64(63)
        decoded = self.words[word_index] >> shift
        spill = (shift + bits) > np.uint64(_WORD_BITS)
        if spill.any():
            spill_shift = np.uint64(_WORD_BITS) - shift[spill]
            decoded[spill] |= self.words[word_index[spill] + 1] << spill_shift
        return (decoded & mask).astype(np.uint32)

    # -- sizes --------------------------------------------------------------

    @property
    def packed_bytes(self) -> int:
        """Physical bytes of the packed stream."""
        return int(self.words.nbytes)

    @property
    def bytes_per_value(self) -> float:
        """Effective bytes per value (bits / 8)."""
        return self.bits / 8.0

    def compression_ratio(self, unpacked_bytes_per_value: int = 4) -> float:
        """Size reduction against a plain fixed-width representation."""
        return unpacked_bytes_per_value / self.bytes_per_value
