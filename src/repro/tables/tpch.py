"""TPC-H subset generator for the full-query experiments (Sec. 6, Fig. 17).

The paper evaluates TPC-H Q3, Q10, Q12, and Q19 at scale factor 10, with
the setup simplifications of the CrkJoin evaluation: dates and categorical
strings are represented as integers, all operators materialize, and the
final aggregation is replaced by ``count(*)``.  We generate exactly the
columns those queries touch, integer-coded, with TPC-H's cardinalities and
uniform value distributions:

* ``customer``  — 150,000 x SF rows
* ``orders``    — 1,500,000 x SF rows
* ``lineitem``  — ~4 per order (1..7 uniform, per the TPC-H spec)
* ``part``      — 200,000 x SF rows

Large scale factors are generated at a capped *physical* scale and carry
the remainder in ``sim_scale`` (see :mod:`repro.tables.table`).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.tables.table import Column, Table

#: TPC-H dates span 1992-01-01 .. 1998-12-31; encoded as days since epoch.
_DATE_EPOCH = datetime.date(1992, 1, 1)
DATE_MIN = 0
DATE_MAX = (datetime.date(1998, 12, 31) - _DATE_EPOCH).days

#: Categorical encodings (alphabetical, as a dictionary encoder would emit).
MKTSEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
SHIPMODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")
RETURNFLAGS = ("A", "N", "R")
SHIPINSTRUCTS = (
    "COLLECT COD",
    "DELIVER IN PERSON",
    "NONE",
    "TAKE BACK RETURN",
)
BRAND_COUNT = 25
CONTAINER_COUNT = 40

#: Default physical cap: lineitem stays below ~1.2 M rows.
DEFAULT_PHYSICAL_SF_CAP = 0.2


def date_code(year: int, month: int, day: int) -> int:
    """Integer encoding of a date (days since 1992-01-01)."""
    return (datetime.date(year, month, day) - _DATE_EPOCH).days


def segment_code(segment: str) -> int:
    """Dictionary code of a market segment string."""
    try:
        return MKTSEGMENTS.index(segment)
    except ValueError:
        raise ConfigurationError(f"unknown market segment {segment!r}") from None


def shipmode_code(mode: str) -> int:
    """Dictionary code of a ship mode string."""
    try:
        return SHIPMODES.index(mode)
    except ValueError:
        raise ConfigurationError(f"unknown ship mode {mode!r}") from None


def returnflag_code(flag: str) -> int:
    """Dictionary code of a return flag."""
    try:
        return RETURNFLAGS.index(flag)
    except ValueError:
        raise ConfigurationError(f"unknown return flag {flag!r}") from None


def shipinstruct_code(instruct: str) -> int:
    """Dictionary code of a ship instruction."""
    try:
        return SHIPINSTRUCTS.index(instruct)
    except ValueError:
        raise ConfigurationError(f"unknown ship instruction {instruct!r}") from None


@dataclass(frozen=True)
class TpchData:
    """The four generated relations plus their scale factor."""

    scale_factor: float
    customer: Table
    orders: Table
    lineitem: Table
    part: Table

    @property
    def tables(self):
        return (self.customer, self.orders, self.lineitem, self.part)

    @property
    def total_logical_bytes(self) -> float:
        return sum(t.logical_bytes for t in self.tables)


def generate_tpch(
    scale_factor: float,
    *,
    seed: int = 7,
    physical_sf_cap: Optional[float] = DEFAULT_PHYSICAL_SF_CAP,
) -> TpchData:
    """Generate the TPC-H subset at ``scale_factor``.

    When ``scale_factor`` exceeds ``physical_sf_cap``, data is generated at
    the cap and the tables carry the ratio in ``sim_scale`` so the cost
    model prices the full logical size.
    """
    if scale_factor <= 0:
        raise ConfigurationError("scale_factor must be positive")
    physical_sf = scale_factor
    if physical_sf_cap is not None and scale_factor > physical_sf_cap:
        physical_sf = physical_sf_cap
    sim_scale = scale_factor / physical_sf
    rng = np.random.default_rng(seed)

    n_customer = max(1, int(150_000 * physical_sf))
    n_orders = max(1, int(1_500_000 * physical_sf))
    n_part = max(1, int(200_000 * physical_sf))

    customer = Table(
        "customer",
        [
            Column("c_custkey", np.arange(n_customer, dtype=np.int32)),
            Column(
                "c_mktsegment",
                rng.integers(0, len(MKTSEGMENTS), n_customer, dtype=np.int32),
            ),
        ],
        sim_scale=sim_scale,
    )

    o_orderdate = rng.integers(
        DATE_MIN, date_code(1998, 8, 2), n_orders, dtype=np.int32
    )
    orders = Table(
        "orders",
        [
            Column("o_orderkey", np.arange(n_orders, dtype=np.int32)),
            Column(
                "o_custkey", rng.integers(0, n_customer, n_orders, dtype=np.int32)
            ),
            Column("o_orderdate", o_orderdate),
        ],
        sim_scale=sim_scale,
    )

    # 1..7 lineitems per order, as in the TPC-H spec.
    items_per_order = rng.integers(1, 8, n_orders)
    l_orderkey = np.repeat(
        np.arange(n_orders, dtype=np.int32), items_per_order
    )
    n_lineitem = len(l_orderkey)
    # Ship within 1..121 days of the order, receipt 1..30 days after ship,
    # commit 30..90 days after the order (the spec's generation rules).
    order_dates = o_orderdate[l_orderkey]
    l_shipdate = order_dates + rng.integers(1, 122, n_lineitem)
    l_receiptdate = l_shipdate + rng.integers(1, 31, n_lineitem)
    l_commitdate = order_dates + rng.integers(30, 91, n_lineitem)
    lineitem = Table(
        "lineitem",
        [
            Column("l_orderkey", l_orderkey),
            Column(
                "l_partkey", rng.integers(0, n_part, n_lineitem, dtype=np.int32)
            ),
            Column("l_shipdate", l_shipdate.astype(np.int32)),
            Column("l_commitdate", l_commitdate.astype(np.int32)),
            Column("l_receiptdate", l_receiptdate.astype(np.int32)),
            Column(
                "l_shipmode",
                rng.integers(0, len(SHIPMODES), n_lineitem, dtype=np.int32),
            ),
            Column(
                "l_returnflag",
                rng.integers(0, len(RETURNFLAGS), n_lineitem, dtype=np.int32),
            ),
            Column(
                "l_shipinstruct",
                rng.integers(0, len(SHIPINSTRUCTS), n_lineitem, dtype=np.int32),
            ),
            Column("l_quantity", rng.integers(1, 51, n_lineitem, dtype=np.int32)),
        ],
        sim_scale=sim_scale,
    )

    part = Table(
        "part",
        [
            Column("p_partkey", np.arange(n_part, dtype=np.int32)),
            Column("p_brand", rng.integers(0, BRAND_COUNT, n_part, dtype=np.int32)),
            Column(
                "p_container",
                rng.integers(0, CONTAINER_COUNT, n_part, dtype=np.int32),
            ),
            Column("p_size", rng.integers(1, 51, n_part, dtype=np.int32)),
        ],
        sim_scale=sim_scale,
    )

    return TpchData(
        scale_factor=scale_factor,
        customer=customer,
        orders=orders,
        lineitem=lineitem,
        part=part,
    )
