"""Join-input generators (the TEEBench-style workload of Sec. 4).

The paper's join inputs are rows of a 32-bit key and a 32-bit payload
(8 bytes per tuple); all joins are foreign-key joins with uniformly
distributed keys.  The default experiment joins a 100 MB build table
(12.5 M rows) against a 400 MB probe table (50 M rows) — the "cache-exceed"
setting of TEEBench, similar to TPC-H join sizes at scale factor 100.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.tables.table import Column, Table

#: 32-bit key + 32-bit payload, as in the paper (Sec. 4, "Join data").
JOIN_TUPLE_BYTES = 8

#: Physical rows above which generated tables are scaled down via
#: ``sim_scale`` to keep wall-clock benchmark time reasonable.
DEFAULT_PHYSICAL_ROW_CAP = 2_000_000


def rows_for_bytes(size_bytes: float, tuple_bytes: int = JOIN_TUPLE_BYTES) -> int:
    """Logical row count of a relation of ``size_bytes``."""
    if size_bytes < 0:
        raise ConfigurationError("size must be non-negative")
    return int(size_bytes // tuple_bytes)


def _scaled_rows(logical_rows: int, cap: Optional[int]) -> Tuple[int, float]:
    """Physical rows and the sim_scale that restores the logical count."""
    if logical_rows <= 0:
        raise ConfigurationError("relation must have at least one row")
    if cap is None or logical_rows <= cap:
        return logical_rows, 1.0
    return cap, logical_rows / cap


def generate_key_value_table(
    name: str,
    size_bytes: float,
    *,
    rng: np.random.Generator,
    physical_row_cap: Optional[int] = DEFAULT_PHYSICAL_ROW_CAP,
) -> Table:
    """A primary-key relation: keys are a dense permutation, payloads random."""
    logical_rows = rows_for_bytes(size_bytes)
    physical_rows, scale = _scaled_rows(logical_rows, physical_row_cap)
    keys = rng.permutation(physical_rows).astype(np.int32)
    payload = rng.integers(0, 2**31 - 1, size=physical_rows, dtype=np.int32)
    return Table(
        name,
        [Column("key", keys), Column("payload", payload)],
        sim_scale=scale,
    )


def generate_join_relation_pair(
    build_bytes: float,
    probe_bytes: float,
    *,
    seed: int = 42,
    physical_row_cap: Optional[int] = DEFAULT_PHYSICAL_ROW_CAP,
) -> Tuple[Table, Table]:
    """The paper's foreign-key join inputs.

    The build (primary-key) relation has unique keys; every probe tuple's
    key references some build key uniformly at random, so every probe row
    finds exactly one match.  Both relations report 8-byte logical tuples
    regardless of the physical (int64) representation numpy needs.
    """
    rng = np.random.default_rng(seed)
    build = generate_key_value_table(
        "R", build_bytes, rng=rng, physical_row_cap=physical_row_cap
    )
    probe_logical = rows_for_bytes(probe_bytes)
    probe_physical, probe_scale = _scaled_rows(probe_logical, physical_row_cap)
    probe_keys = rng.integers(0, build.num_rows, size=probe_physical, dtype=np.int32)
    # Map through the build permutation so foreign keys hit actual PK values.
    probe_keys = build["key"][probe_keys]
    payload = rng.integers(0, 2**31 - 1, size=probe_physical, dtype=np.int32)
    probe = Table(
        "S",
        [Column("key", probe_keys), Column("payload", payload)],
        sim_scale=probe_scale,
    )
    return build, probe


def skewed_probe_keys(
    build_rows: int,
    probe_rows: int,
    zipf_theta: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Zipf-skewed foreign keys (extension beyond the paper's uniform data).

    ``zipf_theta`` = 0 degenerates to uniform; larger values concentrate
    probes on few build keys, which stresses latch contention in PHT.
    """
    if build_rows <= 0 or probe_rows < 0:
        raise ConfigurationError("row counts must be positive")
    if zipf_theta < 0:
        raise ConfigurationError("zipf_theta must be non-negative")
    if zipf_theta == 0:
        return rng.integers(0, build_rows, size=probe_rows, dtype=np.int64)
    ranks = np.arange(1, build_rows + 1, dtype=np.float64)
    weights = ranks ** (-zipf_theta)
    weights /= weights.sum()
    return rng.choice(build_rows, size=probe_rows, p=weights).astype(np.int64)
