"""Command-line entry point: regenerate the paper's figures and tables.

Examples::

    sgxv2-bench --list
    sgxv2-bench fig08
    sgxv2-bench all --full --csv results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.bench.registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sgxv2-bench",
        description=(
            "Regenerate the figures/tables of 'Benchmarking Analytical "
            "Query Processing in Intel SGXv2' on the simulated testbed."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig08 fig17), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list known experiments and exit"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-fidelity mode: 10 repetitions and larger physical data",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write one CSV per experiment into DIR",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render each experiment as an ASCII chart as well",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="run the experiments and write one Markdown report to FILE",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        help=(
            "record a structured trace per experiment into DIR "
            "(JSON-lines + CSV: operator phases, enclave charges, "
            "scheduler decisions)"
        ),
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check every calibration anchor against the cost model and exit",
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help="base seed for repetition and workload streams (default 42)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.seed is not None:
        from repro.bench import runner

        runner.set_default_base_seed(args.seed)
    if args.validate:
        from repro.bench.validate import CalibrationValidator

        validator = CalibrationValidator()
        print(validator.report())
        checks = validator.run()
        return 0 if all(check.passed for check in checks) else 1
    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            module = EXPERIMENTS[experiment_id]
            print(f"{experiment_id:8s} {module.TITLE}")
        return 0
    requested = args.experiments or ["all"]
    if "all" in requested:
        requested = sorted(EXPERIMENTS)
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        # Reject before creating any output dirs/files so a typo leaves
        # the filesystem untouched.
        print(
            f"unknown experiment ids: {', '.join(unknown)}",
            file=sys.stderr,
        )
        print(
            f"known experiments: {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    if args.report:
        if args.chart:
            # The Markdown report embeds every experiment's chart already;
            # a silent no-op here hid that from users for a whole release.
            print(
                "--chart cannot be combined with --report (the report "
                "embeds each experiment's chart); drop one of the flags",
                file=sys.stderr,
            )
            return 2
        from repro.bench.session import write_report

        path = write_report(
            args.report,
            requested,
            quick=not args.full,
            csv_dir=args.csv,
            trace_dir=args.trace,
        )
        print(f"wrote {path}")
        return 0
    csv_dir = pathlib.Path(args.csv) if args.csv else None
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
    trace_dir = pathlib.Path(args.trace) if args.trace else None
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
    for experiment_id in requested:
        tracer = None
        if trace_dir is not None:
            from repro.trace import Tracer

            tracer = Tracer(label=experiment_id)
        report = run_experiment(experiment_id, quick=not args.full, tracer=tracer)
        print(report.print_table())
        if args.chart:
            from repro.bench.charts import render

            print()
            print(render(report))
        print()
        if csv_dir is not None:
            (csv_dir / f"{experiment_id}.csv").write_text(report.to_csv())
        if tracer is not None:
            from repro.trace import write_csv, write_jsonl

            trace_path = write_jsonl(
                tracer, trace_dir / f"{experiment_id}.trace.jsonl"
            )
            write_csv(tracer, trace_dir / f"{experiment_id}.trace.csv")
            print(f"wrote {trace_path} ({len(tracer.snapshot())} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
