"""Command-line entry point: regenerate the paper's figures and tables.

Examples::

    sgxv2-bench --list
    sgxv2-bench fig08
    sgxv2-bench all --full --csv results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.bench.registry import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sgxv2-bench",
        description=(
            "Regenerate the figures/tables of 'Benchmarking Analytical "
            "Query Processing in Intel SGXv2' on the simulated testbed."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=(
            "experiment ids (e.g. fig08 fig17), or 'all'; or "
            "'explain JOB' to print the planner's ranked candidate plans "
            "for a serving job template"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list known experiments and exit"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-fidelity mode: 10 repetitions and larger physical data",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write one CSV per experiment into DIR",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render each experiment as an ASCII chart as well",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="run the experiments and write one Markdown report to FILE",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        help=(
            "record a structured trace per experiment into DIR "
            "(JSON-lines + CSV: operator phases, enclave charges, "
            "scheduler decisions)"
        ),
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check every calibration anchor against the cost model and exit",
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help="base seed for repetition and workload streams (default 42)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run experiments across up to N worker processes (leftover "
            "slots fan out as repetition threads inside each experiment); "
            "results merge in request order, so output is byte-identical "
            "to --jobs 1"
        ),
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help=(
            "content-addressed result cache in DIR: identical (experiment, "
            "params, seed, calibration) runs are served from the cache "
            "instead of re-simulated; calibration changes invalidate "
            "entries automatically"
        ),
    )
    parser.add_argument(
        "--no-memo",
        action="store_true",
        help=(
            "disable the per-query profile memo (every template/candidate "
            "is re-priced through the real operators on each use; results "
            "are byte-identical either way, only slower — the engine "
            "benchmark's cold arm)"
        ),
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        help=(
            "inject a named, seeded fault plan into every serving run "
            "(AEX storms, EDMM denials, enclave crashes, EPC squeezes, "
            "poisoned jobs); same plan + same seed is bit-reproducible; "
            "see repro.faults.fault_plans for the catalog"
        ),
    )
    parser.add_argument(
        "--planner",
        metavar="MODE",
        help=(
            "plan serving queries with MODE: 'static' (the historical "
            "hardcoded plans; the default), 'cost' (the SGX-aware cost "
            "model picks each template's plan), or 'adaptive' (seeded "
            "epsilon-greedy refinement of the cost ranking from observed "
            "latencies; deterministic for a fixed --seed)"
        ),
    )
    parser.add_argument(
        "--cluster",
        metavar="SPEC",
        help=(
            "serve every workload over a shard map of enclaves instead of "
            "one enclave: SPEC is 'SOCKETSxENCLAVES' (e.g. '2x4': 4 "
            "enclaves on each of 2 sockets) or "
            "'MACHINESxSOCKETSxENCLAVES', optionally followed by "
            "':ROUTING' ('hash' or 'load-aware'); experiments that pin "
            "explicit clusters (wl06) are unaffected"
        ),
    )
    parser.add_argument(
        "--storage",
        metavar="BUDGET",
        help=(
            "spill working sets beyond BUDGET to sealed untrusted storage "
            "instead of EDMM-growing/paging the enclave: BUDGET is a size "
            "('2G', '512M'), optionally followed by ':BLOCK' for the "
            "sealed block size (default 1MiB); every sealed byte is "
            "priced through the calibrated seal/unseal/IO constants"
        ),
    )
    parser.add_argument(
        "--backend",
        metavar="MODE",
        help=(
            "price serving arms with MODE: 'sim' (the operator-level "
            "simulator; the default), 'sqlite' or 'duckdb' (a real SQL "
            "engine's calibrated profile priced through the SGX cost "
            "envelope; result bags are equivalence-gated against the "
            "simulator first); 'duckdb' needs the repro[backends] extra"
        ),
    )
    parser.add_argument(
        "--rewrite",
        metavar="MODE",
        help=(
            "rewrite TPC-H serving templates logically with MODE: 'off' "
            "(the reference plans; the default), 'prove' (generate rewrite "
            "candidates and run the exact bag-equivalence proofs), 'race' "
            "(additionally price the proof survivors through the real "
            "operators), or 'learned' (additionally add each template's "
            "winning rewrite to the adaptive planner's arm set; needs a "
            "non-static --planner to be served)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print(f"--jobs must be at least 1, got {args.jobs}", file=sys.stderr)
        return 2
    fault_plan = None
    if args.faults:
        # Resolve before creating any output dirs/files so an unknown
        # plan name leaves the filesystem untouched (same contract as
        # unknown experiment ids below).
        from repro.errors import ConfigurationError
        from repro.faults import get_fault_plan

        try:
            fault_plan = get_fault_plan(args.faults)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.planner is not None:
        # Same fail-fast contract as --faults: an unknown mode exits
        # before any output dirs exist.  The oracle selector is not
        # offered here — it is the experiment-only upper bound.
        from repro.planner import PLANNER_MODES

        if args.planner not in PLANNER_MODES:
            print(
                f"unknown planner mode {args.planner!r}; "
                f"known: {', '.join(PLANNER_MODES)}",
                file=sys.stderr,
            )
            return 2
    cluster = None
    if args.cluster is not None:
        # Same fail-fast contract: a malformed spec exits before any
        # output dirs exist.
        from repro.cluster import ClusterConfig
        from repro.errors import ConfigurationError

        try:
            cluster = ClusterConfig.parse(args.cluster)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    storage = None
    if args.storage is not None:
        # Same fail-fast contract: a malformed budget exits before any
        # output dirs exist.
        from repro.errors import ConfigurationError
        from repro.storage import StorageConfig

        try:
            storage = StorageConfig.parse(args.storage)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.backend is not None:
        # Same fail-fast contract: an unknown or unavailable backend
        # exits 2 (one line naming the pip extra) before any output dirs
        # exist — never an ImportError traceback mid-session.
        from repro.backends import missing_reason, validate_mode
        from repro.errors import ConfigurationError

        try:
            validate_mode(args.backend)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        reason = missing_reason(args.backend)
        if reason is not None:
            print(reason, file=sys.stderr)
            return 2
        if args.backend != "sim" and args.planner not in (None, "static"):
            print(
                f"--backend {args.backend} prices templates from calibrated "
                "engine profiles, which cover only the static plans; it "
                f"cannot be combined with --planner {args.planner}",
                file=sys.stderr,
            )
            return 2
    if args.rewrite is not None:
        # Same fail-fast contract: an unknown rewrite mode exits 2 before
        # any output dirs exist.
        from repro.errors import ConfigurationError
        from repro.rewrite import validate_mode as validate_rewrite_mode

        try:
            validate_rewrite_mode(args.rewrite)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.rewrite != "off" and args.backend not in (None, "sim"):
            print(
                f"--rewrite {args.rewrite} races logical rewrites through "
                "the operator simulator's costing; it cannot be combined "
                f"with --backend {args.backend} (engine profiles cover "
                "only the reference plans)",
                file=sys.stderr,
            )
            return 2
    if args.seed is not None:
        from repro.bench import runner

        runner.set_default_base_seed(args.seed)
    if args.validate:
        from repro.bench.validate import CalibrationValidator

        validator = CalibrationValidator()
        print(validator.report())
        checks = validator.run()
        return 0 if all(check.passed for check in checks) else 1
    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            module = EXPERIMENTS[experiment_id]
            print(f"{experiment_id:8s} {module.TITLE}")
        return 0
    if args.experiments and args.experiments[0] == "explain":
        return _explain(
            args.experiments[1:],
            quick=not args.full,
            cluster=cluster,
            storage=storage,
            backend=args.backend,
            rewrite=args.rewrite,
        )
    requested = args.experiments or ["all"]
    if "all" in requested:
        requested = sorted(EXPERIMENTS)
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        # Reject before creating any output dirs/files so a typo leaves
        # the filesystem untouched.
        print(
            f"unknown experiment ids: {', '.join(unknown)}",
            file=sys.stderr,
        )
        print(
            f"known experiments: {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    store = None
    if args.cache:
        from repro.cache import MemoStore

        store = MemoStore(args.cache)
    if args.report:
        if args.chart:
            # The Markdown report embeds every experiment's chart already;
            # a silent no-op here hid that from users for a whole release.
            print(
                "--chart cannot be combined with --report (the report "
                "embeds each experiment's chart); drop one of the flags",
                file=sys.stderr,
            )
            return 2
        from repro.bench.session import write_report

        path = write_report(
            args.report,
            requested,
            quick=not args.full,
            csv_dir=args.csv,
            trace_dir=args.trace,
            jobs=args.jobs,
            cache=store,
            base_seed=args.seed,
            faults=fault_plan,
            planner=args.planner,
            cluster=cluster,
            storage=storage,
            backend=args.backend,
            rewrite=args.rewrite,
            memo=not args.no_memo,
        )
        print(f"wrote {path}")
        _print_cache_summary(store, args.cache)
        return 0
    csv_dir = pathlib.Path(args.csv) if args.csv else None
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
    trace_dir = pathlib.Path(args.trace) if args.trace else None
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
    from repro.bench.parallel import run_session

    session = run_session(
        requested,
        quick=not args.full,
        jobs=args.jobs,
        cache=store,
        base_seed=args.seed,
        traced=trace_dir is not None,
        faults=fault_plan,
        planner=args.planner,
        cluster=cluster,
        storage=storage,
        backend=args.backend,
        rewrite=args.rewrite,
        memo=not args.no_memo,
    )
    for run in session.runs:
        print(run.report.print_table())
        if args.chart:
            from repro.bench.charts import render

            print()
            print(render(run.report))
        print()
        if csv_dir is not None:
            (csv_dir / f"{run.experiment_id}.csv").write_text(run.report.to_csv())
        if trace_dir is not None and run.trace_jsonl is not None:
            trace_path = trace_dir / f"{run.experiment_id}.trace.jsonl"
            trace_path.write_text(run.trace_jsonl)
            (trace_dir / f"{run.experiment_id}.trace.csv").write_text(
                run.trace_csv
            )
            records = len(run.trace_jsonl.splitlines())
            print(f"wrote {trace_path} ({records} records)")
    if trace_dir is not None and (store is not None or args.jobs > 1):
        session_trace = session.write_session_trace(trace_dir)
        print(f"wrote {session_trace} (session cache/worker telemetry)")
    _print_cache_summary(store, args.cache)
    _print_memo_summary(session)
    return 0


def _explain(
    names: List[str],
    *,
    quick: bool,
    cluster=None,
    storage=None,
    backend: Optional[str] = None,
    rewrite: Optional[str] = None,
) -> int:
    """``sgxv2-bench explain JOB``: the planner's view of one template.

    Prints the ranked candidate plans (estimated cycles, EPC working set,
    chosen/rejected status) for each requested serving job template under
    the data-in-enclave setting, against the machine's real EPC budget.
    The ambient session flags apply: ``--cluster`` explains against one
    shard's EPC slice, ``--storage`` ranks the spill twins alongside the
    in-EPC arms, and an active ``--rewrite`` appends the ranked-rewrites
    section; ``--backend`` engine modes exit 2 (engine profiles cover
    only the reference plans, so there is nothing to rank).  Unknown job
    names exit 2 without touching the filesystem.
    """
    from repro.bench.experiments.common import SETTING_SGX_IN
    from repro.machine import SimMachine
    from repro.planner import Planner
    from repro.workload.jobs import serving_templates

    if backend not in (None, "sim"):
        print(
            f"explain ranks candidate plans through the operator "
            f"simulator; --backend {backend} prices only the reference "
            "plans and cannot be explained — drop the flag or use "
            "--backend sim",
            file=sys.stderr,
        )
        return 2
    templates = serving_templates()
    if not names:
        print(
            "explain needs at least one job template name; "
            f"known: {', '.join(sorted(templates))}",
            file=sys.stderr,
        )
        return 2
    unknown = [name for name in names if name not in templates]
    if unknown:
        print(
            f"unknown job templates: {', '.join(unknown)}", file=sys.stderr
        )
        print(
            f"known job templates: {', '.join(sorted(templates))}",
            file=sys.stderr,
        )
        return 2
    del quick  # plan estimates price tiny stand-ins either way
    machine = SimMachine()
    budget = float(machine.topology.node(0).epc_bytes)
    budget_note = None
    if cluster is not None:
        # A sharded session plans per enclave: each shard sees its own
        # EPC slice, so explain against the first shard's budget.
        shard = cluster.spec.shards(machine.spec)[0]
        budget = float(shard.epc_budget_bytes)
        budget_note = (
            f"cluster {cluster.spec.canonical()}: explaining against shard "
            f"{shard.label}'s EPC slice ({budget / 1e6:.0f} MB)"
        )
    planner = Planner(
        machine,
        SETTING_SGX_IN,
        epc_budget_bytes=budget,
        storage=storage,
    )
    for index, name in enumerate(names):
        if index:
            print()
        if budget_note is not None:
            print(budget_note)
        print(planner.explain(templates[name]))
        if rewrite not in (None, "off"):
            print(_explain_rewrites(templates[name], rewrite, machine))
    return 0


def _explain_rewrites(template, mode: str, machine) -> str:
    """The ranked-rewrites section of ``explain`` (active modes only)."""
    from repro.bench.experiments.common import SETTING_SGX_IN
    from repro.planner.stats import QErrorTracker
    from repro.rewrite import plan_rewrites

    decision = plan_rewrites(
        template, mode, machine, SETTING_SGX_IN, tracker=QErrorTracker()
    )
    lines = [f"rewrites ({mode}):"]
    if not decision.proofs:
        lines.append("  (no rewrite candidates: not a TPC-H template)")
        return "\n".join(lines)
    for proof in decision.rejected:
        lines.append(
            f"  rejected {proof.candidate.label():<24} {proof.reason}"
        )
    if mode == "prove":
        for proof in decision.proved:
            lines.append(
                f"  proved   {proof.candidate.label():<24} "
                f"bag {proof.digest[:16]} ({proof.rows} witness rows)"
            )
        return "\n".join(lines)
    lines.append(
        f"  reference: {decision.reference.seconds * 1e3:.2f} ms priced "
        f"service time"
    )
    for rank, est in enumerate(decision.ranked, start=1):
        if (
            decision.winner is not None
            and est.candidate.name == decision.winner.candidate.name
        ):
            status = "winner"
        elif est.seconds < decision.reference.seconds:
            status = "faster, not best"
        else:
            status = "slower than reference"
        lines.append(
            f"  {rank}. {est.candidate.label():<24} "
            f"{est.seconds * 1e3:>9.2f} ms  "
            f"ws {est.working_set_bytes / 1e6:>8.1f} MB  [{status}]"
        )
    lines.append(
        f"  q-error: {decision.q_error_raw:.2f} analytic -> "
        f"{decision.q_error_corrected:.2f} after observed cardinalities"
    )
    return "\n".join(lines)


def _print_cache_summary(store, cache_dir: Optional[str]) -> None:
    """One line of cache traffic, mirroring the session trace counters."""
    if store is None:
        return
    print(
        f"cache: {store.hits} hits, {store.misses} misses, "
        f"{len(store)} entries ({cache_dir})"
    )


def _print_memo_summary(session) -> None:
    """One line of profile-memo traffic (omitted when there was none)."""
    hits, misses = session.memo_hits, session.memo_misses
    if hits or misses:
        print(f"memo: {hits} profile hits, {misses} misses")


if __name__ == "__main__":
    sys.exit(main())
