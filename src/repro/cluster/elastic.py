"""Elastic shard pools: grow and shrink enclaves under diurnal load.

SGXv2's EDMM is what makes elasticity plausible at all: an enclave can be
created small and grown on demand (``EAUG`` per page, Sec. 2.2 / Fig. 11),
so spinning up a shard does not pay SGXv1's full-size ``EADD`` + measure
cost.  Growth is still not free — the model charges
``edmm_page_add_cycles`` per 4 KiB page of the working set an activating
shard must fault in before it serves at full speed — and that delay is the
reason scale-up decisions trail the load signal.

The policy itself is a deliberately simple watermark controller: every
``interval_s`` of simulated time, compare the active shards' mean load
score against the high/low watermarks and grow or shrink the pool by one
shard.  Deterministic by construction: no randomness, only the load
signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.hardware.calibration import CostParameters
from repro.hardware.spec import HardwareSpec

#: EDMM grows in page granules (EAUG is per 4 KiB page, Sec. 2.2).
PAGE_BYTES = 4096


@dataclass(frozen=True)
class ElasticPolicy:
    """Watermark-based pool sizing, one shard per decision interval."""

    min_shards: int
    max_shards: int
    interval_s: float = 1.0
    high_watermark: float = 0.75  # mean load score that triggers growth
    low_watermark: float = 0.30  # mean load score that triggers shrink
    #: Activation delay of a newly grown shard; ``None`` derives it from
    #: the EDMM model (pages of the mean working set × EAUG cycles).
    grow_delay_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ConfigurationError("the pool needs at least one shard")
        if self.max_shards < self.min_shards:
            raise ConfigurationError("max_shards must be >= min_shards")
        if self.interval_s <= 0:
            raise ConfigurationError("the decision interval must be positive")
        if not 0.0 < self.low_watermark < self.high_watermark:
            raise ConfigurationError(
                "watermarks must satisfy 0 < low < high"
            )
        if self.grow_delay_s is not None and self.grow_delay_s < 0:
            raise ConfigurationError("grow delay must be non-negative")

    def activation_delay_s(
        self,
        working_set_bytes: float,
        spec: HardwareSpec,
        params: CostParameters,
    ) -> float:
        """How long a grown shard takes before it can serve.

        The enclave exists but its heap does not: the first working set
        must be EAUG'd in page by page before queries run at full speed.
        We charge that up front as the activation delay — a lazy-growth
        model would instead smear it over the first queries.
        """
        if self.grow_delay_s is not None:
            return self.grow_delay_s
        pages = math.ceil(max(0.0, working_set_bytes) / PAGE_BYTES)
        return pages * params.edmm_page_add_cycles / spec.base_frequency_hz
