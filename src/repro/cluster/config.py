"""Cluster configuration and its ambient (session-scoped) channel.

A :class:`ClusterConfig` bundles the topology (:class:`ClusterSpec`), the
routing policy, the failover switch, the shard-level fault plan, and the
optional elastic policy.  Like fault plans and planner modes, the cluster
config flows through an explicit ambient channel (:func:`use_cluster` /
:func:`current_cluster`) so ``--cluster 2x4`` reshapes every serving run
in a session without threading a parameter through every experiment
module — and experiments that pin topologies explicitly are unaffected.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.cluster.elastic import ElasticPolicy
from repro.cluster.faults import NO_SHARD_FAULTS, ClusterFaultPlan
from repro.cluster.spec import ClusterSpec

#: Routing policies :func:`repro.cluster.routing.make_router` accepts.
ROUTING_POLICIES = ("hash", "load-aware")


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster serving setup: shape, routing, failover, faults."""

    spec: ClusterSpec
    routing: str = "hash"
    failover: bool = True
    faults: ClusterFaultPlan = NO_SHARD_FAULTS
    elastic: Optional[ElasticPolicy] = None

    def __post_init__(self) -> None:
        if self.routing not in ROUTING_POLICIES:
            known = ", ".join(ROUTING_POLICIES)
            raise ConfigurationError(
                f"unknown routing policy {self.routing!r}; known: {known}"
            )
        if (
            self.elastic is not None
            and self.elastic.max_shards > self.spec.shard_count
        ):
            raise ConfigurationError(
                f"elastic max_shards {self.elastic.max_shards} exceeds the "
                f"cluster's {self.spec.shard_count} shards"
            )

    @classmethod
    def parse(cls, text: str) -> "ClusterConfig":
        """``--cluster SPEC``: a shape string with default policies.

        ``SPEC`` is a :meth:`ClusterSpec.parse` shape (``"2x4"``,
        ``"2x2x4"``), optionally followed by ``:ROUTING`` to pick the
        routing policy (``"2x4:load-aware"``).
        """
        shape, _, routing = text.partition(":")
        if not routing:
            return cls(spec=ClusterSpec.parse(shape))
        return cls(spec=ClusterSpec.parse(shape), routing=routing)

    def describe(self) -> str:
        """One-line summary for notes and logs."""
        parts = [self.spec.canonical(), self.routing]
        if not self.failover:
            parts.append("no-failover")
        if self.faults.active:
            parts.append(f"faults={self.faults.name}")
        if self.elastic is not None:
            parts.append(
                f"elastic[{self.elastic.min_shards}"
                f"-{self.elastic.max_shards}]"
            )
        return " ".join(parts)


_ACTIVE: List[Optional[ClusterConfig]] = [None]


def current_cluster() -> Optional[ClusterConfig]:
    """The ambient cluster config (``None``: single-enclave serving)."""
    return _ACTIVE[-1]


@contextlib.contextmanager
def use_cluster(config: Optional[ClusterConfig]) -> Iterator[Optional[ClusterConfig]]:
    """Install ``config`` as the ambient cluster for the ``with`` scope.

    ``None`` is a no-op scope (the session default), mirroring
    ``use_fault_plan``/``use_planner_mode``: a workload config whose
    ``cluster`` field is set explicitly is never overridden.
    """
    _ACTIVE.append(config)
    try:
        yield config
    finally:
        _ACTIVE.pop()
