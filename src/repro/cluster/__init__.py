"""``repro.cluster``: sharded multi-enclave serving across sockets.

The first layer *above* the scheduler: a shard map of N enclaves spanning
both sockets (and M simulated machines), consistent-hash or load-aware
tenant routing, per-shard EPC budgets and admission policies, cross-socket
shuffles priced through the calibrated UPI bandwidth model, shard-level
faults with failover re-routing, and an elastic pool grown/shrunk through
the EDMM model.  See ``docs/architecture.md`` ("Cluster serving").
"""

from repro.cluster.config import (
    ClusterConfig,
    current_cluster,
    use_cluster,
)
from repro.cluster.elastic import ElasticPolicy
from repro.cluster.faults import (
    NO_SHARD_FAULTS,
    ClusterFaultPlan,
    ShardFaultKind,
    ShardFaultSpec,
)
from repro.cluster.routing import HashRouter, LoadAwareRouter, make_router
from repro.cluster.scheduler import (
    ClusterResult,
    ClusterScheduler,
    ShardRuntime,
)
from repro.cluster.spec import ClusterSpec, ShardSpec

__all__ = [
    "ClusterConfig",
    "ClusterFaultPlan",
    "ClusterResult",
    "ClusterScheduler",
    "ClusterSpec",
    "ElasticPolicy",
    "HashRouter",
    "LoadAwareRouter",
    "NO_SHARD_FAULTS",
    "ShardFaultKind",
    "ShardFaultSpec",
    "ShardRuntime",
    "ShardSpec",
    "current_cluster",
    "make_router",
    "use_cluster",
]
