"""Shard-level fault specs: crashes that take a whole enclave down.

The query-level fault layer (:mod:`repro.faults`) models what happens
*inside* one enclave — AEX storms, per-query crashes, EPC squeezes.  A
cluster adds a coarser failure domain: a whole shard can go dark (the
enclave's host process dies, its attestation expires, its socket is
drained for maintenance), and the routing layer can thrash (a rebalance
storm diverting traffic off its natural shards).  Both are windowed and
deterministic: crash windows are fixed intervals, storm diversions are
hashed Bernoulli draws keyed by the plan seed and the routing sequence
number, so a faulted cluster run replays byte-identically.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError


class ShardFaultKind(enum.Enum):
    """The two shard-level failure domains."""

    SHARD_CRASH = "shard_crash"  # the shard is down for the window
    REBALANCE_STORM = "rebalance_storm"  # routing thrashes off-natural


@dataclass(frozen=True)
class ShardFaultSpec:
    """One windowed shard-level fault."""

    kind: ShardFaultKind
    start_s: float
    end_s: float
    shard: int = 0  # target shard id (crash only)
    probability: float = 1.0  # per-arrival diversion chance (storm only)

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("fault window must start at t >= 0")
        if self.end_s <= self.start_s:
            raise ConfigurationError("fault window must end after it starts")
        if self.shard < 0:
            raise ConfigurationError("shard id must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("probability must be within [0, 1]")

    def covers(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s


@dataclass(frozen=True)
class ClusterFaultPlan:
    """A named, seeded set of shard-level fault windows."""

    name: str
    seed: int = 0
    specs: Tuple[ShardFaultSpec, ...] = ()

    @property
    def active(self) -> bool:
        return bool(self.specs)

    def crash_edges(self) -> List[Tuple[float, str, int]]:
        """``(time, "down"|"up", shard)`` edges, in time order."""
        edges: List[Tuple[float, str, int]] = []
        for spec in self.specs:
            if spec.kind is ShardFaultKind.SHARD_CRASH:
                edges.append((spec.start_s, "down", spec.shard))
                edges.append((spec.end_s, "up", spec.shard))
        edges.sort(key=lambda e: (e[0], e[1], e[2]))
        return edges

    def storm_diverts(self, time_s: float, route_seq: int) -> bool:
        """Deterministic draw: is routed arrival #``route_seq`` diverted?

        Keyed by the plan seed and the cluster-wide routing sequence
        number, never by wall time or RNG state, so serial, parallel, and
        replayed runs draw identically.
        """
        for spec in self.specs:
            if spec.kind is ShardFaultKind.REBALANCE_STORM and spec.covers(
                time_s
            ):
                digest = hashlib.sha256(
                    f"{self.seed}:storm:{route_seq}".encode("utf-8")
                ).digest()
                draw = int.from_bytes(digest[:8], "big") / float(2**64)
                return draw < spec.probability
        return False


NO_SHARD_FAULTS = ClusterFaultPlan(name="none")
