"""The cluster scheduler: many shard event loops, one simulated clock.

:class:`ClusterScheduler` multiplexes N :class:`~repro.workload.scheduler.
SchedulerLoop` instances — one per enclave shard — against a single global
event order.  Each iteration picks the earliest pending event across

* every shard loop's internal heap (finishes, wakes, retries),
* the globally sorted open-loop arrival list, and
* the cluster's own control timeline (shard-crash edges, elastic ticks),

breaking same-instant ties exactly like one scheduler would: finishes
before wakes before arrivals, and shard-internal events before new global
arrivals, with the shard id as the final tie-break.  The result is fully
deterministic: serial runs, ``--jobs N`` workers, and cached replays see
the same interleaving byte-for-byte.

Routing places each arrival through the configured router; when the
placed shard differs from the tenant's *natural* (consistent-hash) shard
— load-aware divergence, failover, or a rebalance-storm diversion — the
query's working set must move from its data's home socket, and the
transfer is priced through :meth:`Topology.cross_socket_bytes` (the
calibrated UPI crypto-engine bandwidth model) or, across machines, a
flat 100 GbE link.  The shuffle rides the query's service time, so
off-home placement is visible in latency, not just in a counter.

Shard crashes evict the victim's queued + running queries; with failover
enabled they re-route (keeping their original arrival time, so the lost
attempt stays in their latency), otherwise they fail terminally and new
arrivals routed at the dead shard are shed.  The elastic policy grows and
shrinks the active pool between ``min_shards`` and ``max_shards`` on a
watermark controller, charging EDMM page-add time before a grown shard
serves (see :mod:`repro.cluster.elastic`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.cluster.config import ClusterConfig
from repro.cluster.routing import HashRouter, make_router
from repro.cluster.spec import ShardSpec
from repro.hardware.calibration import CostParameters
from repro.hardware.spec import HardwareSpec
from repro.hardware.topology import Topology
from repro.trace.breakdown import FAILOVER, ROUTE, SCALE
from repro.trace.tracer import current_tracer
from repro.workload.generators import Arrival, ClosedLoopStream, OpenLoopStream
from repro.workload.jobs import JobCost
from repro.workload.metrics import MetricsRegistry, WorkloadMetrics
from repro.workload.scheduler import (
    _ARRIVAL,
    SchedulerLoop,
    WorkloadScheduler,
)

#: Cross-machine transfers leave the UPI domain entirely: a flat 100 GbE
#: link (12.5 GB/s) — optimistic for TLS-terminated enclave traffic, but
#: the point is the order-of-magnitude gap to the 67.2 GB/s UPI path.
CROSS_MACHINE_BANDWIDTH_BYTES = 12.5e9

#: Shards take disjoint query-id ranges so cluster-wide merged records
#: never collide; 10M ids per shard is far beyond any simulated run.
QUERY_ID_STRIDE = 10_000_000

# Control events sort before every same-instant scheduler event kind
# (finish=0): a crash at t must evict before a finish at t completes.
_CONTROL = -1
# A global arrival's shard tie-break key: after every real shard id, so a
# shard-internal retry at (t, _ARRIVAL) precedes a new global arrival.
_GLOBAL = 1 << 30


@dataclass
class ShardRuntime:
    """One shard's live serving state inside the cluster."""

    spec: ShardSpec
    loop: SchedulerLoop
    active: bool = True  # in the elastic pool
    activates_at_s: float = 0.0  # EDMM growth completes here
    down: bool = False  # inside a crash window
    routed: int = 0  # arrivals placed on this shard

    def routable(self, now: float) -> bool:
        return self.active and not self.down and self.activates_at_s <= now


@dataclass
class ClusterResult:
    """A cluster run's merged metrics plus the routing layer's activity."""

    metrics: WorkloadMetrics  # cluster-wide, merged deterministically
    registry: MetricsRegistry  # per-shard metrics, by shard label
    routed: int = 0
    failovers: int = 0  # queries re-routed off a down shard
    rejected: int = 0  # arrivals shed at a dead shard (no failover)
    diverted: int = 0  # storm diversions off the natural shard
    scale_ups: int = 0
    scale_downs: int = 0
    shuffle_s: float = 0.0  # summed cross-socket/-machine transfer time
    peak_active: int = 0  # most shards simultaneously in the pool

    def describe(self) -> str:
        return (
            f"{self.routed} routed, {self.failovers} failovers, "
            f"{self.rejected} rejected, {self.diverted} diverted, "
            f"{self.scale_ups} up / {self.scale_downs} down "
            f"(peak {self.peak_active} shards), "
            f"shuffle {self.shuffle_s:.2f} s"
        )


class ClusterScheduler:
    """Serves one workload over a shard map of enclave schedulers."""

    def __init__(
        self,
        *,
        cluster: ClusterConfig,
        shards: Sequence[ShardSpec],
        schedulers: Sequence[WorkloadScheduler],
        costs: Dict[str, JobCost],
        spec: HardwareSpec,
        params: CostParameters,
    ) -> None:
        if len(shards) != len(schedulers):
            raise ConfigurationError("one scheduler per shard required")
        if not shards:
            raise ConfigurationError("a cluster needs at least one shard")
        self._cluster = cluster
        self._shards = tuple(shards)
        self._schedulers = tuple(schedulers)
        self._costs = dict(costs)
        self._spec = spec
        self._params = params
        self._topology = Topology(spec)
        self._router = make_router(cluster.routing, shards)
        # The natural (data-home) shard is always the consistent hash,
        # regardless of the serving router: tenant data lives where the
        # ring puts it, and off-home placement pays the shuffle.
        self._home_router = (
            self._router
            if isinstance(self._router, HashRouter)
            else HashRouter(shards)
        )

    # -- transfer pricing -------------------------------------------------

    def _shuffle_s(
        self, home: ShardSpec, target: ShardSpec, cost: JobCost
    ) -> float:
        """Seconds to move the query's working set home -> target."""
        if home.shard_id == target.shard_id:
            return 0.0
        if home.machine != target.machine:
            return cost.working_set_bytes / CROSS_MACHINE_BANDWIDTH_BYTES
        if home.socket == target.socket:
            return 0.0  # same EPC domain; local bandwidth priced elsewhere
        return self._topology.cross_socket_bytes(
            home.home_core(self._spec),
            target.home_core(self._spec),
            cost.working_set_bytes,
            saturated=cost.threads > 1,
            params=self._params,
        )

    # -- the multiplexed loop ---------------------------------------------

    def run(
        self,
        *,
        open_streams: Sequence[OpenLoopStream] = (),
        closed_streams: Sequence[ClosedLoopStream] = (),
        duration_s: float,
    ) -> ClusterResult:
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if not open_streams and not closed_streams:
            raise ConfigurationError("the workload needs at least one stream")
        tracer = current_tracer()
        cluster = self._cluster
        elastic = cluster.elastic

        # Closed-loop streams are *pinned*: a closed client's session
        # state (its RNG, its think-time chain) lives on one shard for
        # the whole run, placed by consistent hash over the initial pool.
        initial_pool = (
            set(range(elastic.min_shards))
            if elastic is not None
            else {s.shard_id for s in self._shards}
        )
        pinned: Dict[int, List[ClosedLoopStream]] = {}
        for stream in closed_streams:
            owner = self._home_router.route(
                stream.name, initial_pool, lambda sid: 0.0
            )
            pinned.setdefault(owner, []).append(stream)

        runtimes: List[ShardRuntime] = []
        for shard, scheduler in zip(self._shards, self._schedulers):
            loop = scheduler.loop(
                closed_streams=tuple(pinned.get(shard.shard_id, ())),
                duration_s=duration_s,
            )
            runtimes.append(
                ShardRuntime(
                    spec=shard,
                    loop=loop,
                    active=shard.shard_id in initial_pool,
                )
            )

        # Open-loop arrivals, globally ordered.  (time, stream) is a total
        # order: stream names are unique and one stream's arrivals never
        # collide (strictly increasing exponential gaps).
        arrivals: List[Arrival] = []
        for stream in open_streams:
            arrivals.extend(stream.arrivals(duration_s))
        arrivals.sort(key=lambda a: (a.time_s, a.stream))

        # The control timeline: crash edges then elastic ticks, ordered.
        controls: List[Tuple[float, int, str, int]] = []
        for time_s, edge, shard_id in cluster.faults.crash_edges():
            if shard_id >= len(runtimes):
                raise ConfigurationError(
                    f"fault plan targets shard {shard_id} but the cluster "
                    f"has {len(runtimes)}"
                )
            controls.append((time_s, 0 if edge == "down" else 1, edge, shard_id))
        if elastic is not None:
            tick = elastic.interval_s
            while tick < duration_s:
                controls.append((tick, 2, "tick", -1))
                tick += elastic.interval_s
        controls.sort(key=lambda c: (c[0], c[1], c[3]))

        result = ClusterResult(
            metrics=None,  # type: ignore[arg-type]  # filled at the end
            registry=MetricsRegistry(),
            peak_active=len(initial_pool),
        )
        route_seq = 0
        arrival_idx = 0
        control_idx = 0

        def load_of(shard_id: int) -> float:
            return runtimes[shard_id].loop.load_score

        def routable_ids(now: float) -> Set[int]:
            return {
                rt.spec.shard_id for rt in runtimes if rt.routable(now)
            }

        def nominal_ids(now: float) -> Set[int]:
            """The pool ignoring down-ness: defines each key's natural home."""
            return {
                rt.spec.shard_id
                for rt in runtimes
                if rt.active and rt.activates_at_s <= now
            }

        def place(arrival: Arrival, now: float) -> None:
            nonlocal route_seq
            nominal = nominal_ids(now)
            alive = routable_ids(now)
            if not nominal:
                nominal = {rt.spec.shard_id for rt in runtimes if rt.active}
            home_id = self._home_router.route(
                arrival.stream, nominal, load_of
            )
            diverted = False
            if not alive:
                # Every shard is down: nothing can serve or even shed
                # gracefully — charge the rejection to the natural home.
                runtimes[home_id].loop.reject(arrival, now)
                result.rejected += 1
                route_seq += 1
                return
            home_down = runtimes[home_id].down
            if home_down and not cluster.failover:
                # The tenant's shard crashed and nothing re-routes for it.
                runtimes[home_id].loop.reject(arrival, now)
                result.rejected += 1
                route_seq += 1
                return
            # Both routers place onto live shards only; the natural home
            # being down makes the placement a failover by definition.
            target_id = self._router.route(arrival.stream, alive, load_of)
            failover = home_down
            if failover:
                result.failovers += 1
            if cluster.faults.active and cluster.faults.storm_diverts(
                now, route_seq
            ):
                # A rebalance storm throws the arrival at a hashed other
                # shard, natural or not (the routing table is thrashing).
                candidates = sorted(alive - {target_id}) or sorted(alive)
                pick = self._cluster.faults.seed + route_seq
                target_id = candidates[pick % len(candidates)]
                diverted = True
                result.diverted += 1
            target = runtimes[target_id]
            shuffle = self._shuffle_s(
                self._shards[home_id],
                target.spec,
                self._costs[arrival.template],
            )
            result.shuffle_s += shuffle
            if tracer.enabled:
                attrs = dict(
                    time_s=now,
                    stream=arrival.stream,
                    template=arrival.template,
                    shard=target.spec.label,
                    natural=self._shards[home_id].label,
                    routing=cluster.routing,
                    shuffle_s=shuffle,
                )
                if failover:
                    attrs["failover"] = True
                if diverted:
                    attrs["diverted"] = True
                tracer.event(ROUTE, **attrs)
            target.loop.submit(arrival, shuffle_s=shuffle)
            target.routed += 1
            result.routed += 1
            route_seq += 1

        def crash(shard_id: int, now: float) -> None:
            rt = runtimes[shard_id]
            rt.down = True
            victims = rt.loop.evict(now)
            alive = routable_ids(now)
            if tracer.enabled:
                tracer.event(
                    FAILOVER,
                    time_s=now,
                    shard=rt.spec.label,
                    phase="down",
                    queries=len(victims),
                    rerouted=bool(cluster.failover and alive),
                )
            for pending in victims:
                if cluster.failover and alive:
                    target_id = self._router.route(
                        pending.stream, alive, load_of
                    )
                    target = runtimes[target_id]
                    shuffle = self._shuffle_s(
                        rt.spec, target.spec, self._costs[pending.template]
                    )
                    result.shuffle_s += shuffle
                    target.loop.submit(
                        Arrival(
                            now, pending.stream, pending.template,
                            pending.client,
                        ),
                        shuffle_s=shuffle,
                        arrival_s=pending.arrival_s,
                        attempt=pending.attempt,
                    )
                    result.failovers += 1
                else:
                    rt.loop.fail_evicted(pending, now)

        def recover(shard_id: int, now: float) -> None:
            rt = runtimes[shard_id]
            rt.down = False
            if tracer.enabled:
                tracer.event(
                    FAILOVER,
                    time_s=now,
                    shard=rt.spec.label,
                    phase="up",
                    queries=0,
                    rerouted=False,
                )

        def elastic_tick(now: float) -> None:
            pool = [rt for rt in runtimes if rt.active]
            serving = [rt for rt in pool if rt.routable(now)]
            if not serving:
                return
            mean_load = sum(rt.loop.load_score for rt in serving) / len(
                serving
            )
            if (
                mean_load > elastic.high_watermark
                and len(pool) < elastic.max_shards
            ):
                grown = next(
                    (rt for rt in runtimes if not rt.active), None
                )
                if grown is None:
                    return
                mean_ws = sum(
                    c.working_set_bytes for c in self._costs.values()
                ) / len(self._costs)
                delay = elastic.activation_delay_s(
                    mean_ws, self._spec, self._params
                )
                grown.active = True
                grown.activates_at_s = now + delay
                result.scale_ups += 1
                result.peak_active = max(
                    result.peak_active,
                    sum(1 for rt in runtimes if rt.active),
                )
                if tracer.enabled:
                    tracer.event(
                        SCALE,
                        time_s=now,
                        direction="up",
                        shard=grown.spec.label,
                        pool=sum(1 for rt in runtimes if rt.active),
                        mean_load=mean_load,
                        activation_delay_s=delay,
                    )
            elif (
                mean_load < elastic.low_watermark
                and len(pool) > elastic.min_shards
            ):
                shrunk = max(pool, key=lambda rt: rt.spec.shard_id)
                shrunk.active = False
                result.scale_downs += 1
                if tracer.enabled:
                    tracer.event(
                        SCALE,
                        time_s=now,
                        direction="down",
                        shard=shrunk.spec.label,
                        pool=sum(1 for rt in runtimes if rt.active),
                        mean_load=mean_load,
                    )

        # The multiplex: always advance the globally earliest event.
        while True:
            best_key: Optional[Tuple[float, int, int]] = None
            best_action: Optional[Callable[[], None]] = None
            if control_idx < len(controls):
                time_s, _, edge, shard_id = controls[control_idx]
                best_key = (time_s, _CONTROL, shard_id)

                def do_control(
                    edge: str = edge, shard_id: int = shard_id, t: float = time_s
                ) -> None:
                    nonlocal control_idx
                    control_idx += 1
                    if edge == "down":
                        crash(shard_id, t)
                    elif edge == "up":
                        recover(shard_id, t)
                    else:
                        elastic_tick(t)

                best_action = do_control
            for rt in runtimes:
                if not rt.loop.pending:
                    continue
                time_s, kind = rt.loop.peek()
                key = (time_s, kind, rt.spec.shard_id)
                if best_key is None or key < best_key:
                    best_key = key
                    best_action = rt.loop.step
            if arrival_idx < len(arrivals):
                arrival = arrivals[arrival_idx]
                key = (arrival.time_s, _ARRIVAL, _GLOBAL)
                if best_key is None or key < best_key:
                    best_key = key

                    def do_arrival(a: Arrival = arrival) -> None:
                        nonlocal arrival_idx
                        arrival_idx += 1
                        place(a, a.time_s)

                    best_action = do_arrival
            if best_action is None:
                break
            best_action()

        for rt in runtimes:
            result.registry.register(rt.spec.label, rt.loop.result())
        result.metrics = result.registry.merged()
        return result
