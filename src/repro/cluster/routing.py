"""Tenant/query routing: which shard serves which arrival.

Two policies, both deterministic:

* **consistent hash** (:class:`HashRouter`) — each shard owns ~64 virtual
  points on a 64-bit ring; a tenant's stream name hashes to a ring point
  and walks clockwise to the first *eligible* shard.  Stable under shard
  loss (only the lost shard's keys move) and stateless, but blind to
  load: a hot tenant saturates its natural shard while neighbours idle.
* **load-aware** (:class:`LoadAwareRouter`) — routes to the shard with
  the lowest momentary load score (queued + running thread demand over
  cores, plus EPC fullness: the least-EPC-headroom signal).  Balances
  skew at the price of moving tenants off their data's home shard, which
  the cluster scheduler charges as a cross-socket shuffle.

Routing is a pure function of (key, eligible set, load scores), so the
same workload replayed yields the same placements byte-for-byte.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, List, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.cluster.spec import ShardSpec

#: Virtual nodes per shard on the hash ring: enough that shard loss
#: redistributes keys roughly evenly across the survivors.
VNODES_PER_SHARD = 64


def _hash64(text: str) -> int:
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRouter:
    """Consistent-hash routing over the shard set."""

    label = "hash"

    def __init__(self, shards: Sequence[ShardSpec]) -> None:
        if not shards:
            raise ConfigurationError("a router needs at least one shard")
        ring: List[Tuple[int, int]] = []
        for shard in shards:
            for vnode in range(VNODES_PER_SHARD):
                ring.append((_hash64(f"{shard.label}:{vnode}"), shard.shard_id))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [owner for _, owner in ring]

    def route(
        self,
        key: str,
        eligible: Set[int],
        load: Callable[[int], float],
    ) -> int:
        """The first eligible shard clockwise of ``key``'s ring point."""
        if not eligible:
            raise ConfigurationError("no eligible shard to route to")
        start = bisect.bisect_right(self._points, _hash64(key))
        n = len(self._owners)
        for offset in range(n):
            owner = self._owners[(start + offset) % n]
            if owner in eligible:
                return owner
        raise ConfigurationError("no eligible shard owns a ring point")


class LoadAwareRouter:
    """Least-loaded routing (the least-EPC-headroom signal)."""

    label = "load-aware"

    def __init__(self, shards: Sequence[ShardSpec]) -> None:
        if not shards:
            raise ConfigurationError("a router needs at least one shard")
        self._ids = [shard.shard_id for shard in shards]

    def route(
        self,
        key: str,
        eligible: Set[int],
        load: Callable[[int], float],
    ) -> int:
        """The eligible shard with the lowest load score (id tie-break)."""
        if not eligible:
            raise ConfigurationError("no eligible shard to route to")
        best = None
        best_score = None
        for shard_id in self._ids:
            if shard_id not in eligible:
                continue
            score = load(shard_id)
            if best_score is None or score < best_score:
                best = shard_id
                best_score = score
        if best is None:
            raise ConfigurationError("no eligible shard to route to")
        return best


def make_router(name: str, shards: Sequence[ShardSpec]):
    """Router factory: ``hash`` or ``load-aware``."""
    routers = {"hash": HashRouter, "load-aware": LoadAwareRouter}
    try:
        cls = routers[name]
    except KeyError:
        known = ", ".join(sorted(routers))
        raise ConfigurationError(
            f"unknown routing policy {name!r}; known: {known}"
        ) from None
    return cls(shards)
