"""Cluster topology: how many enclaves, on which sockets and machines.

The paper's Table-1 machine has two sockets; SGXv2 partitions each
socket's EPC independently (64 GiB per socket), so the natural scale-out
unit is *one enclave pinned to a slice of one socket*.  A
:class:`ClusterSpec` names the shape — ``MxSxE`` machines × sockets ×
enclaves-per-socket, or the short ``SxE`` form for a single machine — and
:meth:`ClusterSpec.shards` materialises it against a hardware spec into
concrete :class:`ShardSpec` slices: each shard owns an equal share of its
socket's cores and EPC, mirroring how the paper pins threads to physical
cores from outside the enclave (Sec. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.hardware.spec import HardwareSpec


@dataclass(frozen=True)
class ShardSpec:
    """One enclave shard: its placement and its resource slice."""

    shard_id: int
    machine: int
    socket: int
    enclave: int  # index within the socket
    cores: int
    epc_budget_bytes: float

    @property
    def label(self) -> str:
        """Stable shard name carried in trace attrs and metrics labels."""
        return f"m{self.machine}.s{self.socket}.e{self.enclave}"

    def home_core(self, spec: HardwareSpec) -> int:
        """A representative core id for cross-socket transfer pricing."""
        return self.socket * spec.cores_per_socket + self.enclave


@dataclass(frozen=True)
class ClusterSpec:
    """The cluster shape: machines × sockets × enclaves per socket."""

    machines: int = 1
    sockets: int = 2
    enclaves_per_socket: int = 1

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise ConfigurationError("a cluster needs at least one machine")
        if self.sockets < 1:
            raise ConfigurationError("a cluster needs at least one socket")
        if self.enclaves_per_socket < 1:
            raise ConfigurationError(
                "a cluster needs at least one enclave per socket"
            )

    @classmethod
    def parse(cls, text: str) -> "ClusterSpec":
        """Parse ``SxE`` (one machine) or ``MxSxE`` cluster shapes.

        ``2x4`` = 2 sockets × 4 enclaves each (8 shards, one machine);
        ``2x2x4`` = 2 machines × 2 sockets × 4 enclaves (16 shards).
        """
        if text != text.strip():
            raise ConfigurationError(
                f"bad cluster spec {text!r}: no surrounding whitespace "
                f"allowed"
            )
        parts = text.lower().split("x")
        numbers = []
        for part in parts:
            # ``int`` would happily accept whitespace-padded parts like
            # ``"2 "`` (so ``"2 x4"`` parsed as 2x4) and signed counts
            # like ``"-1"``; require pure digits and at least 1 of
            # everything so malformed shapes fail loudly at parse time.
            if not part.isdigit():
                numbers = []
                break
            value = int(part)
            if value < 1:
                raise ConfigurationError(
                    f"bad cluster spec {text!r}: every count must be at "
                    f"least 1, got {part!r}"
                )
            numbers.append(value)
        if len(numbers) == 2:
            return cls(machines=1, sockets=numbers[0], enclaves_per_socket=numbers[1])
        if len(numbers) == 3:
            return cls(
                machines=numbers[0],
                sockets=numbers[1],
                enclaves_per_socket=numbers[2],
            )
        raise ConfigurationError(
            f"bad cluster spec {text!r}; expected SxE (e.g. 2x4) or MxSxE "
            f"(e.g. 2x2x4)"
        )

    def canonical(self) -> str:
        """The shortest spec string that parses back to this shape."""
        if self.machines == 1:
            return f"{self.sockets}x{self.enclaves_per_socket}"
        return f"{self.machines}x{self.sockets}x{self.enclaves_per_socket}"

    @property
    def shard_count(self) -> int:
        return self.machines * self.sockets * self.enclaves_per_socket

    def shards(self, spec: HardwareSpec) -> Tuple[ShardSpec, ...]:
        """Materialise the shape against ``spec`` into shard slices.

        Shards are enumerated machine-major, then socket, then enclave, so
        shard ids are stable for a given shape.  Each shard gets an equal
        integer share of its socket's cores and an equal share of its
        socket's EPC — the paper's pinning discipline applied per enclave.
        """
        if self.sockets > spec.sockets:
            raise ConfigurationError(
                f"cluster wants {self.sockets} sockets per machine but the "
                f"hardware has {spec.sockets}"
            )
        if self.enclaves_per_socket > spec.cores_per_socket:
            raise ConfigurationError(
                f"cluster wants {self.enclaves_per_socket} enclaves per "
                f"socket but the socket has {spec.cores_per_socket} cores"
            )
        cores = spec.cores_per_socket // self.enclaves_per_socket
        epc = spec.epc_bytes_per_socket / self.enclaves_per_socket
        out = []
        shard_id = 0
        for machine in range(self.machines):
            for socket in range(self.sockets):
                for enclave in range(self.enclaves_per_socket):
                    out.append(
                        ShardSpec(
                            shard_id=shard_id,
                            machine=machine,
                            socket=socket,
                            enclave=enclave,
                            cores=cores,
                            epc_budget_bytes=float(epc),
                        )
                    )
                    shard_id += 1
        return tuple(out)
