"""Trace exporters: JSON-lines and CSV, plus the JSON-lines reader.

JSON-lines is the canonical interchange format: one record per line,
keys sorted, so two identical runs produce byte-identical files (the
determinism the golden-shape tests rely on).  CSV flattens the same
records into a fixed column set for spreadsheet triage; nested ``attrs``
are carried as one JSON-encoded column.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Iterable, List, Union

from repro.errors import BenchmarkError
from repro.trace.records import record_from_dict
from repro.trace.tracer import TraceRecord

#: Flat CSV column set shared by every record kind.
CSV_COLUMNS = (
    "kind",
    "name",
    "category",
    "start",
    "duration",
    "unit",
    "time_s",
    "value",
    "attrs",
)


def _records(source) -> List[TraceRecord]:
    """Normalize a tracer or a record iterable into a record list."""
    snapshot = getattr(source, "snapshot", None)
    if callable(snapshot):
        return snapshot()
    return list(source)


def to_jsonl(source) -> str:
    """The JSON-lines text of ``source`` (a tracer or record iterable)."""
    lines = [
        json.dumps(record.as_dict(), sort_keys=True) for record in _records(source)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(source, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``source`` as JSON-lines to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(source))
    return path


def read_jsonl(
    source: Union[str, pathlib.Path, Iterable[str]]
) -> List[TraceRecord]:
    """Load typed records back from a JSON-lines file (or line iterable)."""
    if isinstance(source, (str, pathlib.Path)):
        lines = pathlib.Path(source).read_text().splitlines()
    else:
        lines = list(source)
    records = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise BenchmarkError(f"trace line {number} is not JSON: {exc}") from None
        records.append(record_from_dict(payload))
    return records


def to_csv(source) -> str:
    """The CSV text of ``source`` (a tracer or record iterable)."""
    buffer = io.StringIO()
    # csv.DictWriter defaults to "\r\n" row endings; JSON-lines emits "\n".
    # Pin the terminator so both exports of one trace are byte-deterministic
    # across platforms and diff-based golden checks never see mixed EOLs.
    writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS, lineterminator="\n")
    writer.writeheader()
    for record in _records(source):
        payload = record.as_dict()
        attrs = payload.pop("attrs", {})
        row = {column: payload.get(column, "") for column in CSV_COLUMNS}
        row["attrs"] = json.dumps(attrs, sort_keys=True) if attrs else ""
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(source, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``source`` as CSV to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_csv(source))
    return path
