"""The breakdown reporter: turn any trace into the paper's decompositions.

The paper's root-cause figures decompose run time rather than just report
it: Fig. 6 splits a join into phases, Fig. 11 attributes the EDMM collapse
to page growth.  This module reproduces both styles generically from the
records any traced run emits:

* :func:`serving_breakdown` — aggregates the scheduler's ``query.dispatch``
  events into **queueing vs. service vs. EDMM-penalty vs. interference**
  seconds, the serving-layer analogue of Fig. 6 (every dispatched query's
  time is fully attributed to exactly one of the four buckets).
* :func:`phase_breakdown` — sums operator-phase spans per phase name, the
  literal Fig. 6 decomposition for any traced operator run.
* :func:`serving_runs` — splits a multi-run trace (e.g. one exported by
  ``sgxv2-bench wl01 --trace DIR``) at its ``serving.run_start`` markers so
  each serving configuration gets its own breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.trace.records import Event, Span
from repro.trace.exporters import _records

#: Event names the scheduler emits (kept in one place for reporters).
RUN_START = "serving.run_start"
RUN_END = "serving.run_end"
ARRIVAL = "query.arrival"
DISPATCH = "query.dispatch"
EDMM_OVERFLOW = "query.edmm_overflow"
FINISH = "query.finish"

#: Fault/resilience event names (emitted only under an active fault plan
#: or resilience policy — never in an un-faulted run's trace).
FAULT_AEX = "fault.aex_storm"
FAULT_CRASH = "fault.enclave_crash"
FAULT_EDMM_DENIED = "fault.edmm_denied"
DEGRADED = "resilience.degraded"
RETRY = "resilience.retry"
SHED = "resilience.shed"
BREAKER_OPEN = "resilience.breaker_open"
ATTEMPT_FAILED = "query.attempt_failed"
FAILED = "query.failed"

#: Planner event names (emitted only when a plan selector is installed —
#: never in a ``--planner static`` run's trace).
PLANNER_CHOICE = "planner.choice"
PLANNER_OBSERVE = "planner.observe"

#: Cluster event names (emitted only by the cluster scheduler — never in
#: a single-enclave run's trace).
ROUTE = "cluster.route"
SCALE = "cluster.scale"
FAILOVER = "cluster.failover"

#: Storage event names (emitted only when a ``--storage`` budget installs
#: the sealed spill path — never in a storage-less run's trace).
SPILL = "storage.spill"
FAULT_STORAGE_STALL = "fault.storage_stall"
FAULT_TORN_BLOCK = "fault.torn_block"

#: Backend event names (emitted only when an engine backend is active —
#: never in a ``--backend sim``/default run's trace).
BACKEND_ENVELOPE = "backend.envelope"
BACKEND_EQUIVALENCE = "backend.equivalence"

#: Rewrite event names (emitted only when query rewriting is active —
#: never in a ``--rewrite off``/default run's trace).
REWRITE_PROVED = "rewrite.proved"
REWRITE_REJECTED = "rewrite.rejected"
REWRITE_RACE = "rewrite.race"
REWRITE_WINNER = "rewrite.winner"
REWRITE_QERROR = "rewrite.qerror"


@dataclass(frozen=True)
class ServingBreakdown:
    """Where the served queries' time went, in summed seconds."""

    queueing_s: float
    service_s: float
    edmm_penalty_s: float
    interference_s: float
    dispatched: int
    completed: int

    @property
    def total_s(self) -> float:
        return (
            self.queueing_s
            + self.service_s
            + self.edmm_penalty_s
            + self.interference_s
        )

    def fractions(self) -> Dict[str, float]:
        """Each bucket's share of the total (all zero for an empty trace)."""
        total = self.total_s
        if total <= 0:
            return {
                "queueing": 0.0,
                "service": 0.0,
                "edmm_penalty": 0.0,
                "interference": 0.0,
            }
        return {
            "queueing": self.queueing_s / total,
            "service": self.service_s / total,
            "edmm_penalty": self.edmm_penalty_s / total,
            "interference": self.interference_s / total,
        }

    def as_dict(self) -> Dict[str, float]:
        return {
            "queueing_s": self.queueing_s,
            "service_s": self.service_s,
            "edmm_penalty_s": self.edmm_penalty_s,
            "interference_s": self.interference_s,
            "dispatched": self.dispatched,
            "completed": self.completed,
        }

    def describe(self) -> str:
        """One line for report notes: shares of the total attributed time."""
        shares = self.fractions()
        return (
            f"{self.completed} queries: "
            f"queueing {shares['queueing']:.0%}, "
            f"service {shares['service']:.0%}, "
            f"EDMM penalty {shares['edmm_penalty']:.0%}, "
            f"interference {shares['interference']:.0%} "
            f"of {self.total_s:.2f} attributed seconds"
        )


def serving_breakdown(
    source,
    *,
    stream: Optional[str] = None,
    shard: Optional[str] = None,
) -> ServingBreakdown:
    """Aggregate a trace's dispatch/finish events into a time breakdown.

    ``source`` is a tracer or record iterable; ``stream`` restricts the
    aggregation to one stream's queries (per-tenant decompositions) and
    ``shard`` to one cluster shard's events (per-shard decompositions of
    a multiplexed trace — single-enclave events carry no shard attr and
    are excluded by any shard filter).
    """
    queueing = service = edmm = interference = 0.0
    dispatched = completed = 0
    for record in _records(source):
        if not isinstance(record, Event):
            continue
        if stream is not None and record.attrs.get("stream") != stream:
            continue
        if shard is not None and record.attrs.get("shard") != shard:
            continue
        if record.name == DISPATCH:
            attrs = record.attrs
            queueing += attrs.get("queue_wait_s", 0.0)
            service += attrs.get("base_service_s", 0.0)
            edmm += attrs.get("edmm_penalty_s", 0.0)
            interference += attrs.get("interference_s", 0.0)
            dispatched += 1
        elif record.name == FINISH:
            completed += 1
    return ServingBreakdown(
        queueing_s=queueing,
        service_s=service,
        edmm_penalty_s=edmm,
        interference_s=interference,
        dispatched=dispatched,
        completed=completed,
    )


@dataclass(frozen=True)
class FaultBreakdown:
    """Where a faulted run's *lost* time went, in summed seconds.

    The resilience analogue of :class:`ServingBreakdown`: instead of
    attributing served time to serving phases, it attributes the overhead
    a fault plan induced — retry waits, service time burned on aborted
    attempts, and enclave re-init downtime — plus the terminal outcomes.
    """

    retry_wait_s: float  # summed backoff delays before re-queued attempts
    wasted_service_s: float  # service burned on attempts that then failed
    downtime_s: float  # summed enclave teardown + re-init time
    retries: int
    failed: int
    shed: int
    breaker_openings: int
    degraded: int

    @property
    def lost_s(self) -> float:
        return self.retry_wait_s + self.wasted_service_s + self.downtime_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "retry_wait_s": self.retry_wait_s,
            "wasted_service_s": self.wasted_service_s,
            "downtime_s": self.downtime_s,
            "retries": self.retries,
            "failed": self.failed,
            "shed": self.shed,
            "breaker_openings": self.breaker_openings,
            "degraded": self.degraded,
        }

    def describe(self) -> str:
        """One line for report notes: the fault plan's induced overhead."""
        return (
            f"{self.lost_s:.2f} s lost "
            f"(retry wait {self.retry_wait_s:.2f} s, "
            f"wasted service {self.wasted_service_s:.2f} s, "
            f"downtime {self.downtime_s:.2f} s); "
            f"{self.retries} retries, {self.failed} failed, "
            f"{self.shed} shed, {self.breaker_openings} breaker openings, "
            f"{self.degraded} degraded"
        )


def fault_breakdown(source, *, stream: Optional[str] = None) -> FaultBreakdown:
    """Aggregate a trace's fault/resilience events into a loss breakdown.

    ``source`` is a tracer or record iterable; ``stream`` restricts the
    aggregation to one stream's queries.  An un-faulted trace yields the
    all-zero breakdown (its fault events simply never occur).
    """
    retry_wait = wasted = downtime = 0.0
    retries = failed = shed = openings = degraded = 0
    for record in _records(source):
        if not isinstance(record, Event):
            continue
        if stream is not None and record.attrs.get("stream") != stream:
            continue
        if record.name == RETRY:
            retry_wait += record.attrs.get("delay_s", 0.0)
            retries += 1
        elif record.name == ATTEMPT_FAILED:
            wasted += record.attrs.get("wasted_s", 0.0)
        elif record.name == FAULT_CRASH:
            downtime += record.attrs.get("reinit_s", 0.0)
        elif record.name == FAILED:
            if record.attrs.get("outcome") == "shed":
                shed += 1
            else:
                failed += 1
        elif record.name == BREAKER_OPEN:
            openings += 1
        elif record.name == DEGRADED:
            degraded += 1
    return FaultBreakdown(
        retry_wait_s=retry_wait,
        wasted_service_s=wasted,
        downtime_s=downtime,
        retries=retries,
        failed=failed,
        shed=shed,
        breaker_openings=openings,
        degraded=degraded,
    )


@dataclass(frozen=True)
class PlanBreakdown:
    """What the planner chose during one serving run, per template.

    The planner analogue of :class:`FaultBreakdown`: counts every
    ``planner.choice`` by (template, arm), sums observed latencies per arm,
    and — when told what the oracle would have picked — reports how often
    the run's choices agreed with it.
    """

    mode: str  # the selector mode that produced the choices
    choices: Dict[str, Dict[str, int]]  # template -> arm -> picks
    observed_s: Dict[str, Dict[str, float]]  # template -> arm -> summed lat.
    observations: Dict[str, Dict[str, int]]  # template -> arm -> finishes

    @property
    def total_choices(self) -> int:
        return sum(sum(arms.values()) for arms in self.choices.values())

    def chosen_arm(self, template: str) -> str:
        """The arm picked most often for ``template`` (ties: first seen)."""
        arms = self.choices.get(template)
        if not arms:
            return ""
        return max(arms, key=lambda label: (arms[label],))

    def mean_latency_s(self, template: str, arm: str) -> float:
        """Mean observed latency of ``template`` served by ``arm``."""
        count = self.observations.get(template, {}).get(arm, 0)
        if not count:
            return 0.0
        return self.observed_s[template][arm] / count

    def agreement(self, oracle_arms: Dict[str, str]) -> float:
        """Fraction of choices matching ``oracle_arms``'s per-template pick.

        Templates absent from ``oracle_arms`` are ignored (the caller
        scopes the comparison to the templates it has oracle answers for).
        """
        matched = total = 0
        for template, arms in self.choices.items():
            oracle = oracle_arms.get(template)
            if oracle is None:
                continue
            for arm, picks in arms.items():
                total += picks
                if arm == oracle:
                    matched += picks
        return matched / total if total else 0.0

    def describe(self) -> str:
        """One line for report notes: choices per template."""
        parts = []
        for template in sorted(self.choices):
            arms = self.choices[template]
            summary = ", ".join(
                f"{label} x{arms[label]}" for label in sorted(arms)
            )
            parts.append(f"{template}: {summary}")
        return f"planner[{self.mode}] " + "; ".join(parts)


def plan_breakdown(source, *, template: Optional[str] = None) -> PlanBreakdown:
    """Aggregate a trace's ``planner.*`` events into a choice breakdown.

    ``source`` is a tracer or record iterable; ``template`` restricts the
    aggregation to one job template.  A static run (no selector) yields the
    empty breakdown — its planner events simply never occur.
    """
    mode = "static"
    choices: Dict[str, Dict[str, int]] = {}
    observed: Dict[str, Dict[str, float]] = {}
    observations: Dict[str, Dict[str, int]] = {}
    for record in _records(source):
        if not isinstance(record, Event):
            continue
        name = record.attrs.get("template")
        if template is not None and name != template:
            continue
        if record.name == PLANNER_CHOICE:
            mode = str(record.attrs.get("mode", mode))
            arm = str(record.attrs.get("arm", ""))
            per_template = choices.setdefault(str(name), {})
            per_template[arm] = per_template.get(arm, 0) + 1
        elif record.name == PLANNER_OBSERVE:
            arm = str(record.attrs.get("arm", ""))
            # The bandit's observed quantity is the charged service time;
            # older traces only carried end-to-end latency.
            latency = float(
                record.attrs.get(
                    "service_s", record.attrs.get("latency_s", 0.0)
                )
            )
            observed.setdefault(str(name), {})
            observed[str(name)][arm] = (
                observed[str(name)].get(arm, 0.0) + latency
            )
            observations.setdefault(str(name), {})
            observations[str(name)][arm] = (
                observations[str(name)].get(arm, 0) + 1
            )
    return PlanBreakdown(
        mode=mode,
        choices=choices,
        observed_s=observed,
        observations=observations,
    )


def phase_breakdown(
    source, *, category: str = "operator-phase", setting: Optional[str] = None
) -> Dict[str, float]:
    """Phase-name -> summed span duration (cycles) of one traced run.

    Mirrors :meth:`repro.exec.executor.ExecutionTrace.breakdown` but works
    on any exported trace: equal names are summed, insertion order is kept.
    ``setting`` filters spans to one execution setting's label.
    """
    result: Dict[str, float] = {}
    for record in _records(source):
        if not isinstance(record, Span) or record.category != category:
            continue
        if setting is not None and record.attrs.get("setting") != setting:
            continue
        result[record.name] = result.get(record.name, 0.0) + record.duration
    return result


@dataclass(frozen=True)
class ClusterBreakdown:
    """What the cluster's routing/elastic/failover layer did, in counts."""

    routed: int  # arrivals placed by the router
    diverted: int  # routed off-natural by a rebalance storm
    failovers: int  # re-routes away from a down shard
    scale_ups: int
    scale_downs: int
    shuffle_s: float  # summed cross-socket/-machine transfer seconds
    per_shard: Dict[str, int]  # shard label -> arrivals routed to it

    def as_dict(self) -> Dict[str, object]:
        return {
            "routed": self.routed,
            "diverted": self.diverted,
            "failovers": self.failovers,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "shuffle_s": self.shuffle_s,
            "per_shard": dict(self.per_shard),
        }

    def describe(self) -> str:
        """One line for report notes: the routing layer's activity."""
        return (
            f"{self.routed} routed ({self.diverted} diverted, "
            f"{self.failovers} failovers), "
            f"{self.scale_ups} scale-ups, {self.scale_downs} scale-downs, "
            f"shuffle {self.shuffle_s:.2f} s across "
            f"{len(self.per_shard)} shards"
        )


def cluster_breakdown(source) -> ClusterBreakdown:
    """Aggregate a trace's ``cluster.*`` events into a routing breakdown.

    ``source`` is a tracer or record iterable.  A single-enclave trace
    yields the all-zero breakdown — its cluster events never occur.
    """
    routed = diverted = failovers = ups = downs = 0
    shuffle = 0.0
    per_shard: Dict[str, int] = {}
    for record in _records(source):
        if not isinstance(record, Event):
            continue
        if record.name == ROUTE:
            routed += 1
            shuffle += record.attrs.get("shuffle_s", 0.0)
            if record.attrs.get("diverted"):
                diverted += 1
            shard = str(record.attrs.get("shard", ""))
            per_shard[shard] = per_shard.get(shard, 0) + 1
        elif record.name == FAILOVER:
            failovers += int(record.attrs.get("queries", 1))
        elif record.name == SCALE:
            if record.attrs.get("direction") == "up":
                ups += 1
            else:
                downs += 1
    return ClusterBreakdown(
        routed=routed,
        diverted=diverted,
        failovers=failovers,
        scale_ups=ups,
        scale_downs=downs,
        shuffle_s=shuffle,
        per_shard=per_shard,
    )


@dataclass(frozen=True)
class StorageBreakdown:
    """What the sealed spill path did during one serving run.

    The storage analogue of :class:`FaultBreakdown`: every ``storage.spill``
    event contributes its spilled bytes and the priced seal/unseal/re-scan
    seconds; stalled/torn counts come from the storage fault events.  A run
    without a ``--storage`` budget yields the all-zero breakdown.
    """

    spills: int  # queries that took the spill path
    spilled_bytes: float  # summed bytes written to sealed runs
    seal_s: float  # summed seal + write-out seconds
    unseal_s: float  # summed read-back + unseal seconds
    stalled: int  # spills inflated by a STORAGE_STALL window
    torn: int  # attempts aborted by a torn sealed block

    @property
    def spill_s(self) -> float:
        """Total priced spill seconds (seal + unseal + re-scan I/O)."""
        return self.seal_s + self.unseal_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "spills": self.spills,
            "spilled_bytes": self.spilled_bytes,
            "seal_s": self.seal_s,
            "unseal_s": self.unseal_s,
            "stalled": self.stalled,
            "torn": self.torn,
        }

    def describe(self) -> str:
        """One line for report notes: the spill path's priced activity."""
        return (
            f"{self.spills} spills, "
            f"{self.spilled_bytes / 1e6:.1f} MB sealed "
            f"(seal {self.seal_s:.2f} s, unseal {self.unseal_s:.2f} s), "
            f"{self.stalled} stalled, {self.torn} torn blocks"
        )


def storage_breakdown(
    source, *, shard: Optional[str] = None
) -> StorageBreakdown:
    """Aggregate a trace's ``storage.*`` events into a spill breakdown.

    ``source`` is a tracer or record iterable; ``shard`` restricts the
    aggregation to one cluster shard's spills (shard-local spill vs.
    re-shard shuffle is exactly this filter against the route events'
    ``shuffle_s``).  A storage-less trace yields the all-zero breakdown.
    """
    spills = stalled = torn = 0
    spilled_bytes = seal_s = unseal_s = 0.0
    for record in _records(source):
        if not isinstance(record, Event):
            continue
        if shard is not None and record.attrs.get("shard") != shard:
            continue
        if record.name == SPILL:
            spills += 1
            spilled_bytes += record.attrs.get("spilled_bytes", 0.0)
            seal_s += record.attrs.get("seal_s", 0.0)
            unseal_s += record.attrs.get("unseal_s", 0.0)
            if record.attrs.get("stalled"):
                stalled += 1
        elif record.name == FAULT_TORN_BLOCK:
            torn += 1
    return StorageBreakdown(
        spills=spills,
        spilled_bytes=spilled_bytes,
        seal_s=seal_s,
        unseal_s=unseal_s,
        stalled=stalled,
        torn=torn,
    )


@dataclass(frozen=True)
class BackendBreakdown:
    """What the engine-backend bridge did during one run.

    Aggregates the ``backend.*`` events: how many templates passed the
    cross-backend equivalence gate (and over how many result rows), and
    where the envelope put each engine-priced template's in-enclave
    seconds (init vs. penalized execution vs. EPC paging).  A default or
    ``--backend sim`` trace yields the all-zero breakdown.
    """

    gates_passed: int  # templates whose result bags matched the sim's
    gated_rows: int  # summed result rows the gates compared
    priced: int  # envelope pricings (one per engine-priced template)
    plain_s: float  # summed engine-at-logical-scale seconds
    init_s: float  # summed enclave heap pre-touch seconds
    execute_s: float  # summed penalized in-enclave execution seconds
    paging_s: float  # summed EPC overflow fault seconds

    @property
    def in_enclave_s(self) -> float:
        """Total engine-in-enclave seconds across priced templates."""
        return self.init_s + self.execute_s + self.paging_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "gates_passed": self.gates_passed,
            "gated_rows": self.gated_rows,
            "priced": self.priced,
            "plain_s": self.plain_s,
            "init_s": self.init_s,
            "execute_s": self.execute_s,
            "paging_s": self.paging_s,
        }

    def describe(self) -> str:
        """One line for report notes: the backend bridge's activity."""
        return (
            f"{self.gates_passed} equivalence gates over "
            f"{self.gated_rows} rows; {self.priced} envelope pricings "
            f"(init {self.init_s:.3f} s, exec {self.execute_s:.3f} s, "
            f"paging {self.paging_s:.3f} s)"
        )


def backend_breakdown(
    source, *, backend: Optional[str] = None
) -> BackendBreakdown:
    """Aggregate a trace's ``backend.*`` events into a bridge breakdown.

    ``source`` is a tracer or record iterable; ``backend`` restricts the
    aggregation to one engine mode's events (a multi-arm experiment can
    price sqlite and duckdb in one trace).  An engine-less trace yields
    the all-zero breakdown.
    """
    gates = rows = priced = 0
    plain_s = init_s = execute_s = paging_s = 0.0
    for record in _records(source):
        if not isinstance(record, Event):
            continue
        if backend is not None and record.attrs.get("backend") != backend:
            continue
        if record.name == BACKEND_EQUIVALENCE:
            gates += 1
            rows += int(record.attrs.get("rows", 0))
        elif record.name == BACKEND_ENVELOPE:
            priced += 1
            plain_s += record.attrs.get("plain_s", 0.0)
            init_s += record.attrs.get("init_s", 0.0)
            execute_s += record.attrs.get("execute_s", 0.0)
            paging_s += record.attrs.get("paging_s", 0.0)
    return BackendBreakdown(
        gates_passed=gates,
        gated_rows=rows,
        priced=priced,
        plain_s=plain_s,
        init_s=init_s,
        execute_s=execute_s,
        paging_s=paging_s,
    )


@dataclass(frozen=True)
class RewriteBreakdown:
    """What the logical-rewrite layer did during one run.

    Aggregates the ``rewrite.*`` events: how many candidates survived the
    exact equivalence proof (and over how many witness rows), how many
    were rejected, how many priced races ran and how many produced a
    winner faster than the static logical plan, plus the cardinality
    Q-error before and after feedback.  A default or ``--rewrite off``
    trace yields the all-zero breakdown.
    """

    proved: int  # candidates that passed the equivalence proof
    rejected: int  # candidates the proof refuted (or that failed to run)
    proof_rows: int  # summed witness rows the proofs compared
    raced: int  # proven candidates priced against the reference
    winners: int  # races whose best rewrite beat the static plan
    best_speedup: float  # max reference/winner priced-seconds ratio
    q_error_raw: float  # worst analytic Q-error across observed steps
    q_error_corrected: float  # worst Q-error after observation feedback

    def as_dict(self) -> Dict[str, float]:
        return {
            "proved": self.proved,
            "rejected": self.rejected,
            "proof_rows": self.proof_rows,
            "raced": self.raced,
            "winners": self.winners,
            "best_speedup": self.best_speedup,
            "q_error_raw": self.q_error_raw,
            "q_error_corrected": self.q_error_corrected,
        }

    def describe(self) -> str:
        """One line for report notes: the rewrite layer's activity."""
        return (
            f"{self.proved} proved / {self.rejected} rejected over "
            f"{self.proof_rows} witness rows; {self.raced} raced, "
            f"{self.winners} winners (best {self.best_speedup:.2f}x); "
            f"q-error {self.q_error_raw:.1f} -> "
            f"{self.q_error_corrected:.1f}"
        )


def rewrite_breakdown(
    source, *, query: Optional[str] = None
) -> RewriteBreakdown:
    """Aggregate a trace's ``rewrite.*`` events into a rewrite breakdown.

    ``source`` is a tracer or record iterable; ``query`` restricts the
    aggregation to one TPC-H template's events (a serving run plans many
    templates into one trace).  A rewrite-less trace yields the all-zero
    breakdown.
    """
    proved = rejected = proof_rows = raced = winners = 0
    best_speedup = 1.0
    q_raw = q_corrected = 1.0
    for record in _records(source):
        if not isinstance(record, Event):
            continue
        if query is not None and record.attrs.get("query") != query:
            continue
        if record.name == REWRITE_PROVED:
            proved += 1
            proof_rows += int(record.attrs.get("rows", 0))
        elif record.name == REWRITE_REJECTED:
            rejected += 1
        elif record.name == REWRITE_RACE:
            raced += 1
        elif record.name == REWRITE_WINNER:
            winners += 1
            best_speedup = max(
                best_speedup, float(record.attrs.get("speedup", 1.0))
            )
        elif record.name == REWRITE_QERROR:
            q_raw = max(
                q_raw, float(record.attrs.get("max_q_error_raw", 1.0))
            )
            q_corrected = max(
                q_corrected,
                float(record.attrs.get("max_q_error_corrected", 1.0)),
            )
    return RewriteBreakdown(
        proved=proved,
        rejected=rejected,
        proof_rows=proof_rows,
        raced=raced,
        winners=winners,
        best_speedup=best_speedup,
        q_error_raw=q_raw,
        q_error_corrected=q_corrected,
    )


def serving_runs(source) -> List[Tuple[Dict[str, object], ServingBreakdown]]:
    """Per-run breakdowns of a trace holding several serving runs.

    Returns ``(run_start_attrs, breakdown)`` per ``serving.run_start``
    marker; records before the first marker are ignored.
    """
    runs: List[Tuple[Dict[str, object], List]] = []
    for record in _records(source):
        if isinstance(record, Event) and record.name == RUN_START:
            runs.append((dict(record.attrs), []))
        elif runs:
            runs[-1][1].append(record)
    return [(attrs, serving_breakdown(records)) for attrs, records in runs]
