"""Typed trace records: what a :class:`~repro.trace.tracer.Tracer` collects.

Four record kinds cover the whole stack:

* :class:`Span` — a named interval with a start and a duration.  Operator
  phases (the cost model's bulk-synchronous phases) are spans measured in
  simulated **cycles**; higher layers may record spans in seconds.
* :class:`Event` — a point occurrence: a query arrival, a dispatch
  decision, an EDMM overflow admission, an enclave allocation.  Events in
  simulated time carry ``time_s``; events with no meaningful clock (the
  enclave has none) leave it ``None``.
* :class:`Counter` / :class:`Gauge` — the registry snapshot a tracer
  appends when it is exported: monotonically accumulated counts and
  last-written level values.

Every record serializes to a flat JSON-able dict via :meth:`as_dict` and
round-trips through :func:`record_from_dict`; free-form context lives in
the ``attrs`` mapping so exporters never need kind-specific columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.errors import BenchmarkError

#: The trace format version written into exported headers.
TRACE_FORMAT = 1


def _clean_attrs(attrs: Mapping[str, Any]) -> Dict[str, Any]:
    """A plain dict copy of ``attrs`` (records never alias caller state)."""
    return {str(key): value for key, value in attrs.items()}


@dataclass(frozen=True)
class Span:
    """A named interval: one operator phase, one priced section."""

    name: str
    category: str  # e.g. "operator-phase"
    start: float
    duration: float
    unit: str = "cycles"
    attrs: Mapping[str, Any] = field(default_factory=dict)

    kind = "span"

    @property
    def end(self) -> float:
        return self.start + self.duration

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "unit": self.unit,
            "attrs": _clean_attrs(self.attrs),
        }


@dataclass(frozen=True)
class Event:
    """A point occurrence, optionally stamped with simulated seconds."""

    name: str
    time_s: Optional[float] = None
    attrs: Mapping[str, Any] = field(default_factory=dict)

    kind = "event"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "time_s": self.time_s,
            "attrs": _clean_attrs(self.attrs),
        }


@dataclass(frozen=True)
class Counter:
    """A monotonically accumulated count, snapshotted at export time."""

    name: str
    value: int

    kind = "counter"

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "value": self.value}


@dataclass(frozen=True)
class Gauge:
    """A last-written level value (e.g. an EPC high-water mark)."""

    name: str
    value: float

    kind = "gauge"

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "value": self.value}


def record_from_dict(payload: Mapping[str, Any]):
    """Rebuild a typed record from its :meth:`as_dict` form."""
    try:
        kind = payload["kind"]
    except KeyError:
        raise BenchmarkError(f"trace record without a kind: {payload!r}") from None
    if kind == Span.kind:
        return Span(
            name=payload["name"],
            category=payload["category"],
            start=payload["start"],
            duration=payload["duration"],
            unit=payload.get("unit", "cycles"),
            attrs=dict(payload.get("attrs", {})),
        )
    if kind == Event.kind:
        return Event(
            name=payload["name"],
            time_s=payload.get("time_s"),
            attrs=dict(payload.get("attrs", {})),
        )
    if kind == Counter.kind:
        return Counter(name=payload["name"], value=int(payload["value"]))
    if kind == Gauge.kind:
        return Gauge(name=payload["name"], value=float(payload["value"]))
    raise BenchmarkError(f"unknown trace record kind {kind!r}")
