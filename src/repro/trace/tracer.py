"""The tracer: collection, the counters/gauges registry, and installation.

Instrumentation sites throughout the stack fetch the process-current
tracer via :func:`current_tracer` and emit only when ``tracer.enabled`` is
true.  The default is the shared :data:`NULL_TRACER`, whose methods are
no-ops, so an untraced run pays one attribute read per potential record —
tracing off is the zero-overhead path and changes no results either way
(tracers only observe; they never touch RNG state or simulated time).

Install a real tracer for a scope with :func:`use_tracer`::

    tracer = Tracer()
    with use_tracer(tracer):
        run_experiment("wl01")
    write_jsonl(tracer, "out/wl01.trace.jsonl")

:func:`tee` composes sinks: an experiment that wants a private per-run
trace while a CLI-level trace is also active records into both.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.trace.records import Counter, Event, Gauge, Span

TraceRecord = Union[Span, Event, Counter, Gauge]


class Tracer:
    """Collects typed records plus a counters/gauges registry."""

    enabled = True

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.records: List[TraceRecord] = []
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    # -- emission --------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        category: str,
        start: float,
        duration: float,
        unit: str = "cycles",
        **attrs: Any,
    ) -> Span:
        record = Span(
            name=name,
            category=category,
            start=start,
            duration=duration,
            unit=unit,
            attrs=attrs,
        )
        self.records.append(record)
        return record

    def event(
        self, name: str, *, time_s: Optional[float] = None, **attrs: Any
    ) -> Event:
        record = Event(name=name, time_s=time_s, attrs=attrs)
        self.records.append(record)
        return record

    def count(self, name: str, delta: int = 1) -> None:
        """Accumulate ``delta`` onto the named counter."""
        self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest level."""
        self._gauges[name] = value

    # -- inspection ------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def snapshot(self) -> List[TraceRecord]:
        """Records plus the registry, in a deterministic export order."""
        registry: List[TraceRecord] = [
            Counter(name, value) for name, value in sorted(self._counters.items())
        ]
        registry += [
            Gauge(name, value) for name, value in sorted(self._gauges.items())
        ]
        return list(self.records) + registry

    def __len__(self) -> int:
        return len(self.records)


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    label = ""

    def span(self, name: str, **kwargs: Any) -> None:
        return None

    def event(self, name: str, **kwargs: Any) -> None:
        return None

    def count(self, name: str, delta: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    @property
    def counters(self) -> Dict[str, int]:
        return {}

    @property
    def gauges(self) -> Dict[str, float]:
        return {}

    def snapshot(self) -> List[TraceRecord]:
        return []

    def __len__(self) -> int:
        return 0


class TeeTracer:
    """Fans every record out to each enabled child tracer."""

    enabled = True

    def __init__(self, children: Sequence[Tracer]) -> None:
        self.children = tuple(children)
        self.label = "+".join(c.label for c in self.children if c.label)

    def span(self, name: str, **kwargs: Any) -> Span:
        record = None
        for child in self.children:
            record = child.span(name, **kwargs)
        return record

    def event(self, name: str, **kwargs: Any) -> Event:
        record = None
        for child in self.children:
            record = child.event(name, **kwargs)
        return record

    def count(self, name: str, delta: int = 1) -> None:
        for child in self.children:
            child.count(name, delta)

    def gauge(self, name: str, value: float) -> None:
        for child in self.children:
            child.gauge(name, value)

    def snapshot(self) -> List[TraceRecord]:
        return self.children[0].snapshot() if self.children else []

    def __len__(self) -> int:
        return len(self.children[0]) if self.children else 0


def tee(*tracers) -> Union[Tracer, NullTracer, TeeTracer]:
    """Compose tracers into one sink, dropping disabled ones."""
    enabled = [t for t in tracers if t is not None and t.enabled]
    if not enabled:
        return NULL_TRACER
    if len(enabled) == 1:
        return enabled[0]
    return TeeTracer(enabled)


#: The shared disabled tracer (also the default current tracer).
NULL_TRACER = NullTracer()

_current: Union[Tracer, NullTracer, TeeTracer] = NULL_TRACER


def current_tracer() -> Union[Tracer, NullTracer, TeeTracer]:
    """The tracer instrumentation sites should emit to right now."""
    return _current


@contextlib.contextmanager
def use_tracer(tracer: Union[Tracer, NullTracer, TeeTracer]) -> Iterator:
    """Install ``tracer`` as the current tracer for the ``with`` scope."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    try:
        yield tracer
    finally:
        _current = previous
