"""End-to-end tracing & metrics: one substrate for every breakdown.

The paper's contribution is *diagnosable* benchmarks — run time explained,
not just measured (Fig. 6 phase breakdowns, Fig. 11 EDMM attribution).
This package is the repo-wide version of that idea: a :class:`Tracer`
collects typed span/event records from the cost model's phase executor,
the enclave's page ledger, and the serving scheduler, plus a
counters/gauges registry; exporters write deterministic JSON-lines and
CSV; and the breakdown reporter turns any trace into queueing vs. service
vs. EDMM-penalty vs. interference time (or a per-phase operator split).

Tracing is opt-in and observation-only: the default current tracer is a
no-op, and an enabled tracer never perturbs simulated time or RNG state,
so traced and untraced runs produce bit-identical experiment results.
"""

from repro.trace.breakdown import (
    BackendBreakdown,
    ClusterBreakdown,
    FaultBreakdown,
    PlanBreakdown,
    RewriteBreakdown,
    ServingBreakdown,
    StorageBreakdown,
    backend_breakdown,
    cluster_breakdown,
    fault_breakdown,
    phase_breakdown,
    plan_breakdown,
    rewrite_breakdown,
    serving_breakdown,
    storage_breakdown,
    serving_runs,
)
from repro.trace.exporters import (
    read_jsonl,
    to_csv,
    to_jsonl,
    write_csv,
    write_jsonl,
)
from repro.trace.records import (
    Counter,
    Event,
    Gauge,
    Span,
    record_from_dict,
)
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    TeeTracer,
    Tracer,
    current_tracer,
    tee,
    use_tracer,
)

__all__ = [
    "BackendBreakdown",
    "ClusterBreakdown",
    "Counter",
    "Event",
    "FaultBreakdown",
    "Gauge",
    "NULL_TRACER",
    "NullTracer",
    "PlanBreakdown",
    "RewriteBreakdown",
    "ServingBreakdown",
    "StorageBreakdown",
    "Span",
    "TeeTracer",
    "Tracer",
    "backend_breakdown",
    "cluster_breakdown",
    "current_tracer",
    "fault_breakdown",
    "phase_breakdown",
    "plan_breakdown",
    "read_jsonl",
    "record_from_dict",
    "rewrite_breakdown",
    "serving_breakdown",
    "storage_breakdown",
    "serving_runs",
    "tee",
    "to_csv",
    "to_jsonl",
    "use_tracer",
    "write_csv",
    "write_jsonl",
]
