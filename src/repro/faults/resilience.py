"""Resilience machinery: retries, circuit breaking, graceful degradation.

A production serving system does not just observe failures — it reacts.
:class:`ResiliencePolicy` is the frozen configuration of three reactions
the scheduler applies when a fault plan is active:

* **retry with backoff** — a failed attempt re-enters the queue after an
  exponentially growing, seeded-jittered delay (jitter prevents retry
  synchronization: a crashed batch must not re-arrive as one thundering
  herd).  Delays use the same order-independent hashed draws as the
  injector, so retried schedules stay bit-deterministic.
* **per-tenant circuit breaking** — after ``breaker_threshold``
  consecutive failures on one stream, the breaker opens and new
  submissions from that stream are shed on arrival (they fail instantly
  instead of burning cores on a doomed service) until ``breaker_cooldown_s``
  has passed.  The canonical defence against poisoned templates.
* **graceful degradation** — during an EPC squeeze a query whose working
  set no longer fits the shrunken budget is admitted at a *reduced EPC
  reservation* with a mild slowdown instead of overflowing into the
  Fig. 11 EDMM/paging collapse (or being denied growth outright).

``timeout_s`` bounds any single service attempt: an attempt that would
run longer (an EDMM-penalized monster, a storm-inflated join) is aborted
at the timeout and handed to the retry path.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

#: Service-time multiplier per overflowing working-set fraction when a
#: query is admitted at a reduced EPC reservation (graceful degradation).
#: Far below :data:`repro.workload.scheduler.EDMM_OVERFLOW_SLOWDOWN` (9.0):
#: the degraded query streams its overflow share through a bounded
#: enclave buffer instead of growing the enclave page by page.
DEGRADED_SLOWDOWN = 1.5


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the scheduler reacts to failures (frozen; hashable; picklable)."""

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.5  # +- fraction of the nominal delay
    timeout_s: Optional[float] = None
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 2.0
    degrade_on_squeeze: bool = True
    seed: int = 17

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.backoff_base_s <= 0 or self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                "backoff needs a positive base and a multiplier >= 1"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout must be positive")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker threshold must be >= 1")
        if self.breaker_cooldown_s < 0:
            raise ConfigurationError("breaker cooldown must be non-negative")

    def backoff_s(self, query_id: int, attempt: int) -> float:
        """The seeded backoff delay before retry number ``attempt``.

        Exponential in the attempt count, jittered by an order-independent
        hashed draw so two runs of the same workload produce identical
        retry schedules.
        """
        nominal = self.backoff_base_s * self.backoff_multiplier ** max(
            0, attempt - 1
        )
        if not self.jitter:
            return nominal
        key = f"{self.seed}:backoff:{query_id}:{attempt}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64  # [0, 1)
        return nominal * (1.0 + self.jitter * (2.0 * unit - 1.0))


class CircuitBreaker:
    """Per-stream consecutive-failure breaker with a cooldown window."""

    def __init__(self, threshold: int, cooldown_s: float) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._consecutive: Dict[str, int] = {}
        self._open_until: Dict[str, float] = {}
        self.opened_total = 0

    def is_open(self, stream: str, now: float) -> bool:
        """Whether ``stream`` is shedding at ``now`` (cooldown re-closes)."""
        until = self._open_until.get(stream)
        if until is None:
            return False
        if now < until:
            return True
        # Cooldown elapsed: close and give the tenant a fresh budget.
        del self._open_until[stream]
        self._consecutive[stream] = 0
        return False

    def record_failure(self, stream: str, now: float) -> bool:
        """Count one failure; returns True when this opens the breaker."""
        count = self._consecutive.get(stream, 0) + 1
        self._consecutive[stream] = count
        if count >= self.threshold and stream not in self._open_until:
            self._open_until[stream] = now + self.cooldown_s
            self.opened_total += 1
            return True
        return False

    def record_success(self, stream: str) -> None:
        self._consecutive[stream] = 0

    def open_until(self, stream: str) -> float:
        return self._open_until.get(stream, -math.inf)
