"""The fault injector: deterministic draws from a seeded fault plan.

The scheduler consults the injector at well-defined points (dispatch,
overflow admission, budget evaluation) and the injector answers from the
plan alone.  Randomized faults (crashes, EDMM denials) are decided by
**order-independent hashed draws**: each decision hashes ``(plan seed,
salt, query id, attempt)`` into a uniform variate, so the outcome for a
given query is a pure function of its identity — independent of event
interleaving, retries of other queries, or whether the run executes
serially, under ``--jobs N``, or is replayed from cache.  Two runs of the
same plan are bit-identical by construction.

:data:`NULL_INJECTOR` is the default: every answer is the identity, no
hashing happens, and the scheduler's fault paths stay cold — an
un-faulted run is byte-identical to one built before this module existed.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec


class CrashDraw:
    """One drawn mid-service crash: where it strikes and what it costs."""

    __slots__ = ("fraction", "reinit_s")

    def __init__(self, fraction: float, reinit_s: float) -> None:
        self.fraction = fraction  # share of the service completed at abort
        self.reinit_s = reinit_s  # enclave teardown + re-init delay


class NullInjector:
    """No faults: every hook is the identity and stays off the hot path."""

    active = False
    plan: Optional[FaultPlan] = None

    def service_multiplier(
        self, now: float, query_id: int, attempt: int
    ) -> float:
        return 1.0

    def epc_multiplier(self, now: float) -> float:
        return 1.0

    def edmm_denied(self, now: float, query_id: int, attempt: int) -> bool:
        return False

    def squeezed(self, now: float) -> bool:
        return False

    def crash(
        self, now: float, query_id: int, attempt: int
    ) -> Optional[CrashDraw]:
        return None

    def poisoned(self, now: float, template: str) -> bool:
        return False

    def storage_stall_multiplier(self, now: float) -> float:
        return 1.0

    def torn_block(self, now: float, query_id: int, attempt: int) -> bool:
        return False

    def wake_times(self, duration_s: float) -> Tuple[float, ...]:
        return ()


class PlanInjector(NullInjector):
    """Answers the scheduler's fault hooks from one seeded plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.active = not plan.empty
        self._storms = plan.of_kind(FaultKind.AEX_STORM)
        self._denials = plan.of_kind(FaultKind.EDMM_DENIED)
        self._crashes = plan.of_kind(FaultKind.ENCLAVE_CRASH)
        self._squeezes = plan.of_kind(FaultKind.EPC_SQUEEZE)
        self._poisons = plan.of_kind(FaultKind.POISON_JOB)
        self._stalls = plan.of_kind(FaultKind.STORAGE_STALL)
        self._torn = plan.of_kind(FaultKind.TORN_BLOCK)

    # -- deterministic variates -------------------------------------------

    def _draw(self, salt: str, query_id: int, attempt: int) -> float:
        """A uniform [0, 1) variate, a pure function of the decision key."""
        key = f"{self.plan.seed}:{salt}:{query_id}:{attempt}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    # -- hooks -------------------------------------------------------------

    def service_multiplier(
        self, now: float, query_id: int, attempt: int
    ) -> float:
        """AEX-storm inflation of a service dispatched at ``now``.

        Storm multipliers compose (overlapping storms multiply) — every
        asynchronous exit costs an enclave exit + re-entry regardless of
        which storm produced the interrupt.
        """
        factor = 1.0
        for spec in self._storms:
            if spec.active(now):
                factor *= spec.magnitude
        return factor

    def epc_multiplier(self, now: float) -> float:
        """The EPC-budget multiplier in effect at ``now`` (squeezes stack)."""
        factor = 1.0
        for spec in self._squeezes:
            if spec.active(now):
                factor *= spec.magnitude
        return factor

    def squeezed(self, now: float) -> bool:
        return any(spec.active(now) for spec in self._squeezes)

    def edmm_denied(self, now: float, query_id: int, attempt: int) -> bool:
        """Whether this attempt's EDMM growth request fails (per-attempt)."""
        for spec in self._denials:
            if spec.active(now) and (
                self._draw("edmm", query_id, attempt) < spec.probability
            ):
                return True
        return False

    def crash(
        self, now: float, query_id: int, attempt: int
    ) -> Optional[CrashDraw]:
        """A mid-service crash for this attempt, if one is drawn."""
        for spec in self._crashes:
            if spec.active(now) and (
                self._draw("crash", query_id, attempt) < spec.probability
            ):
                fraction = self._draw("crash-frac", query_id, attempt)
                # Strike strictly inside the service window.
                fraction = 0.05 + 0.9 * fraction
                return CrashDraw(fraction, spec.reinit_s)
        return None

    def poisoned(self, now: float, template: str) -> bool:
        return any(
            spec.active(now) and spec.template == template
            for spec in self._poisons
        )

    def storage_stall_multiplier(self, now: float) -> float:
        """Spill-penalty inflation at ``now`` (overlapping stalls multiply)."""
        factor = 1.0
        for spec in self._stalls:
            if spec.active(now):
                factor *= spec.magnitude
        return factor

    def torn_block(self, now: float, query_id: int, attempt: int) -> bool:
        """Whether this attempt's unseal hits a torn block (per-attempt)."""
        for spec in self._torn:
            if spec.active(now) and (
                self._draw("torn", query_id, attempt) < spec.probability
            ):
                return True
        return False

    def wake_times(self, duration_s: float) -> Tuple[float, ...]:
        return self.plan.window_edges(duration_s)


#: The shared no-fault injector (also the scheduler default).
NULL_INJECTOR = NullInjector()


def make_injector(plan: Optional[FaultPlan]) -> NullInjector:
    """An injector for ``plan`` (None or an empty plan -> NULL_INJECTOR)."""
    if plan is None or plan.empty:
        return NULL_INJECTOR
    return PlanInjector(plan)
