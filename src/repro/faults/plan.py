"""Typed fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is a frozen, seeded description of the failure modes
one serving run is subjected to.  Every spec models a hazard the SGXv2
hardware actually exhibits under load:

* **AEX_STORM** — asynchronous exits (interrupts, timer ticks) force an
  enclave exit/re-entry per event; a storm inflates every service time
  dispatched inside its window (the paper's Sec. 3 interrupt effects).
* **EDMM_DENIED** — an ``EAUG``/``EACCEPT`` growth request fails under EPC
  pressure: :meth:`repro.enclave.enclave.Enclave.grow` raises
  :class:`~repro.errors.CapacityError`, so an overflow admission aborts
  instead of paying the Fig. 11 penalty.
* **ENCLAVE_CRASH** — the enclave aborts mid-service (a fatal fault, a
  killed host thread) and must be torn down and re-initialized; the query
  dies partway through and the re-init cost delays any retry.
* **EPC_SQUEEZE** — a co-tenant grabs EPC for a window: the serving
  budget shrinks by a factor, so working sets that fit before now
  overflow (or, with graceful degradation, re-admit at a reduced
  reservation).
* **POISON_JOB** — one template deterministically fails every attempt (a
  miscompiled kernel, a plan that faults in-enclave); the breaker is the
  only mitigation that helps.
* **STORAGE_STALL** — the untrusted block layer degrades for a window (a
  co-tenant saturating the device, a firmware hiccup): every sealed
  spill/re-scan dispatched inside the window takes ``magnitude`` times
  longer.  Only queries on the spill path feel it.
* **TORN_BLOCK** — a sealed block fails its AES-GCM tag check on unseal
  (torn write, bit rot): the attempt aborts and must retry; drawn
  per-attempt by decision identity like crashes and EDMM denials.

Plans are *data*: frozen dataclasses of primitives, hashable by
:func:`repro.cache.keys.canonical`, picklable into worker processes, and
drawn from by the injector through order-independent hashed draws — two
runs of the same plan are bit-identical regardless of scheduling.
"""

from __future__ import annotations

import contextlib
import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    """What a single fault spec injects."""

    AEX_STORM = "aex_storm"
    EDMM_DENIED = "edmm_denied"
    ENCLAVE_CRASH = "enclave_crash"
    EPC_SQUEEZE = "epc_squeeze"
    POISON_JOB = "poison_job"
    STORAGE_STALL = "storage_stall"
    TORN_BLOCK = "torn_block"


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure mode, active inside ``[start_s, end_s)``.

    ``magnitude`` is kind-specific: the AEX service-time multiplier
    (>= 1), or the EPC budget multiplier (in (0, 1]) for a squeeze.
    ``probability`` gates per-attempt draws (crash, EDMM denial);
    ``template`` names the poisoned job; ``reinit_s`` is the enclave
    teardown + re-init cost a crash charges before a retry can land.
    """

    kind: FaultKind
    start_s: float = 0.0
    end_s: float = math.inf
    magnitude: float = 1.0
    probability: float = 1.0
    template: str = ""
    reinit_s: float = 0.0

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ConfigurationError(
                f"fault window [{self.start_s}, {self.end_s}) is empty"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability {self.probability} outside [0, 1]"
            )
        if self.kind is FaultKind.AEX_STORM and self.magnitude < 1.0:
            raise ConfigurationError("an AEX storm cannot speed services up")
        if self.kind is FaultKind.EPC_SQUEEZE and not 0.0 < self.magnitude <= 1.0:
            raise ConfigurationError(
                "an EPC squeeze multiplier must be in (0, 1]"
            )
        if self.kind is FaultKind.POISON_JOB and not self.template:
            raise ConfigurationError("a poison fault needs a template name")
        if self.kind is FaultKind.ENCLAVE_CRASH and self.reinit_s < 0:
            raise ConfigurationError("re-init cost must be non-negative")
        if self.kind is FaultKind.STORAGE_STALL and self.magnitude < 1.0:
            raise ConfigurationError(
                "a storage stall cannot speed the spill path up"
            )

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault specs (empty plan = no faults)."""

    name: str
    seed: int = 23
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a fault plan needs a name")

    @property
    def empty(self) -> bool:
        return not self.specs

    def of_kind(self, kind: FaultKind) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs if spec.kind is kind)

    def window_edges(self, duration_s: float) -> Tuple[float, ...]:
        """Window boundaries within ``[0, duration_s]`` (dispatch wake-ups).

        Only edges that change *admission* state matter: an EPC squeeze
        ending frees budget that can admit queued queries, so the
        scheduler must re-run dispatch at that instant even if no other
        event lands there.
        """
        edges = set()
        for spec in self.of_kind(FaultKind.EPC_SQUEEZE):
            for edge in (spec.start_s, spec.end_s):
                if 0.0 < edge <= duration_s:
                    edges.add(edge)
        return tuple(sorted(edges))


#: The canonical no-fault plan (the explicit way to pin a baseline arm
#: against any session-level ``--faults`` override).
NO_FAULTS = FaultPlan(name="none", specs=())


def fault_plans() -> Dict[str, FaultPlan]:
    """The named plans ``--faults`` can select.

    Windows are absolute simulated seconds, sized for the wl experiments'
    quick-fidelity runs (a few simulated minutes); the ``chaos`` plan
    composes every hazard at once.
    """
    aex = FaultSpec(
        FaultKind.AEX_STORM, start_s=2.0, end_s=6.0, magnitude=2.0
    )
    edmm = FaultSpec(FaultKind.EDMM_DENIED, probability=0.5)
    crash = FaultSpec(
        FaultKind.ENCLAVE_CRASH, probability=0.03, reinit_s=0.5
    )
    squeeze = FaultSpec(
        FaultKind.EPC_SQUEEZE, start_s=1.0, end_s=8.0, magnitude=0.5
    )
    poison = FaultSpec(FaultKind.POISON_JOB, template="q3")
    stall = FaultSpec(
        FaultKind.STORAGE_STALL, start_s=2.0, end_s=8.0, magnitude=4.0
    )
    torn = FaultSpec(FaultKind.TORN_BLOCK, probability=0.05)
    return {
        NO_FAULTS.name: NO_FAULTS,
        "aex-storm": FaultPlan(name="aex-storm", specs=(aex,)),
        "edmm-denied": FaultPlan(name="edmm-denied", specs=(edmm,)),
        "enclave-crash": FaultPlan(name="enclave-crash", specs=(crash,)),
        "epc-squeeze": FaultPlan(name="epc-squeeze", specs=(squeeze,)),
        "poison": FaultPlan(name="poison", specs=(poison,)),
        "storage-stall": FaultPlan(name="storage-stall", specs=(stall,)),
        "torn-block": FaultPlan(name="torn-block", specs=(torn,)),
        "chaos": FaultPlan(
            name="chaos", specs=(aex, edmm, crash, squeeze, poison)
        ),
        # Storage hazards only bite runs with a --storage budget; a
        # separate composite keeps the classic chaos plan's results
        # byte-stable for existing experiments.
        "storage-chaos": FaultPlan(
            name="storage-chaos", specs=(stall, torn)
        ),
    }


def get_fault_plan(name: str) -> FaultPlan:
    """The named plan (or raise with the known names)."""
    plans = fault_plans()
    try:
        return plans[name]
    except KeyError:
        known = ", ".join(sorted(plans))
        raise ConfigurationError(
            f"unknown fault plan {name!r}; known: {known}"
        ) from None


# -- the session-level plan (the CLI's --faults channel) -------------------

_current_plan: Optional[FaultPlan] = None


def current_fault_plan() -> Optional[FaultPlan]:
    """The session-level fault plan, if one is installed."""
    return _current_plan


@contextlib.contextmanager
def use_fault_plan(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Install ``plan`` as the session fault plan for the ``with`` scope.

    Serving runs whose :class:`~repro.workload.engine.WorkloadConfig`
    leaves ``faults=None`` pick this plan up; a config with an explicit
    plan (including :data:`NO_FAULTS`) is never overridden.
    """
    global _current_plan
    previous = _current_plan
    _current_plan = plan
    try:
        yield plan
    finally:
        _current_plan = previous
