"""Deterministic fault injection and resilience for the serving engine.

The paper measures a steady-state enclave; this package makes the serving
layer survivable when the enclave is *not* steady: seeded, bit-reproducible
injection of the SGXv2 failure modes (AEX interrupt storms, EDMM growth
denial, enclave crashes, EPC squeezes, poisoned jobs) plus the mitigation
machinery — retries with jittered backoff, per-tenant circuit breaking,
and graceful degradation under EPC pressure.  ``wl04`` measures the three
arms (baseline / faults / faults+mitigation) against each other.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    CrashDraw,
    NullInjector,
    PlanInjector,
    make_injector,
)
from repro.faults.plan import (
    NO_FAULTS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    current_fault_plan,
    fault_plans,
    get_fault_plan,
    use_fault_plan,
)
from repro.faults.resilience import (
    DEGRADED_SLOWDOWN,
    CircuitBreaker,
    ResiliencePolicy,
)

__all__ = [
    "CircuitBreaker",
    "CrashDraw",
    "DEGRADED_SLOWDOWN",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "NO_FAULTS",
    "NULL_INJECTOR",
    "NullInjector",
    "PlanInjector",
    "ResiliencePolicy",
    "current_fault_plan",
    "fault_plans",
    "get_fault_plan",
    "make_injector",
    "use_fault_plan",
]
