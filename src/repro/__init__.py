"""Reproduction of *Benchmarking Analytical Query Processing in Intel SGXv2*.

The package pairs real, executable OLAP operators (joins, SIMD-style column
scans, simplified TPC-H queries) with a calibrated performance simulator of
the paper's dual-socket SGXv2 testbed.  Operators compute correct results on
numpy data while recording access profiles that the cost model prices under
the paper's three execution settings (Plain CPU, SGX data-in-enclave, SGX
data-outside-enclave).

Quickstart::

    from repro import SimMachine, ExecutionSetting
    from repro.core.joins import RadixJoin
    from repro.tables import generate_join_relation_pair

    machine = SimMachine()
    build, probe = generate_join_relation_pair(100e6, 400e6)
    with machine.context(ExecutionSetting.sgx_data_in_enclave(), threads=16) as ctx:
        result = RadixJoin().run(ctx, build, probe)
        print(result.throughput_rows_per_s(machine.frequency_hz))
"""

from repro.enclave.runtime import ExecutionSetting, Mode
from repro.machine import ExecutionContext, SimMachine
from repro.memory.access import CodeVariant

__version__ = "1.0.0"

__all__ = [
    "ExecutionContext",
    "ExecutionSetting",
    "Mode",
    "CodeVariant",
    "SimMachine",
    "__version__",
]
