"""Report bundles: run a set of experiments and emit one Markdown report.

``sgxv2-bench --report results/REPORT.md`` (or :func:`write_report`) runs
the requested experiments and renders a single self-contained Markdown
document — title, calibration validation, one section per experiment with
its table, chart, and notes — the artifact a reproduction hand-off wants.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Optional, Union

from repro.bench.charts import render
from repro.bench.parallel import run_session
from repro.bench.registry import EXPERIMENTS
from repro.bench.report import ExperimentReport
from repro.bench.validate import CalibrationValidator
from repro.cache import MemoStore
from repro.errors import BenchmarkError
from repro.faults.plan import FaultPlan
from repro.machine import SimMachine


def _experiment_section(report: ExperimentReport) -> str:
    lines = [
        f"## {report.experiment_id}: {report.title}",
        "",
        f"*Reproduces {report.paper_reference}.*",
        "",
        "| series | x | value | unit |",
        "|---|---|---|---|",
    ]
    for row in report.rows:
        value = f"{row.value:.4g}"
        if row.std:
            value += f" ± {row.std:.2g}"
        lines.append(f"| {row.series} | {row.x} | {value} | {row.unit} |")
    lines.append("")
    try:
        chart = render(report)
    except BenchmarkError:
        chart = ""
    if chart:
        lines += ["```text", chart, "```", ""]
    for note in report.notes:
        lines.append(f"> {note}")
    if report.notes:
        lines.append("")
    return "\n".join(lines)


def build_report(
    experiment_ids: Optional[Iterable[str]] = None,
    machine: Optional[SimMachine] = None,
    *,
    quick: bool = True,
    csv_dir: Optional[Union[str, pathlib.Path]] = None,
    trace_dir: Optional[Union[str, pathlib.Path]] = None,
    jobs: int = 1,
    cache: Optional[Union[MemoStore, str, pathlib.Path]] = None,
    base_seed: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    planner: Optional[str] = None,
    cluster=None,
    storage=None,
    backend: Optional[str] = None,
    rewrite: Optional[str] = None,
    memo: bool = True,
) -> str:
    """Render the full Markdown report for ``experiment_ids`` (default all).

    ``csv_dir`` additionally writes one CSV per experiment (the same rows
    the report's tables show) from the *same* runs — the report never runs
    an experiment twice.  ``trace_dir`` runs each experiment under a fresh
    tracer and exports its trace as JSON-lines and CSV.

    ``jobs`` fans the experiments out across worker processes and ``cache``
    memoizes their results (see :func:`repro.bench.parallel.run_session`);
    the rendered report is byte-identical for any ``jobs``/``cache``
    combination.  ``faults`` applies a session fault plan to every run
    (the ``--faults`` channel); ``planner`` a session planner mode (the
    ``--planner`` channel); ``cluster`` a session cluster topology (the
    ``--cluster`` channel); ``storage`` a session sealed-storage budget
    (the ``--storage`` channel); ``backend`` a session backend mode (the
    ``--backend`` channel); ``rewrite`` a session rewrite mode (the
    ``--rewrite`` channel); ``memo=False`` disables the per-query profile
    memo (the ``--no-memo`` channel) — output bytes are identical either
    way, only wall-clock changes.
    """
    ids: List[str] = sorted(experiment_ids or EXPERIMENTS)
    for experiment_id in ids:
        if experiment_id not in EXPERIMENTS:
            raise BenchmarkError(f"unknown experiment {experiment_id!r}")
    csv_dir = pathlib.Path(csv_dir) if csv_dir is not None else None
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
    trace_dir = pathlib.Path(trace_dir) if trace_dir is not None else None
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
    validator = CalibrationValidator(machine)
    checks = validator.run()
    held = sum(1 for check in checks if check.passed)
    sections = [
        "# SGXv2 analytical query processing — reproduction report",
        "",
        "Regenerated artifacts of *Benchmarking Analytical Query Processing "
        "in Intel SGXv2* (EDBT 2025) on the calibrated simulator.",
        "",
        f"Fidelity: {'quick (3 repetitions)' if quick else 'paper (10 repetitions)'}.",
        "",
        "## Calibration",
        "",
        f"{held}/{len(checks)} anchors hold:",
        "",
        "```text",
        *[check.describe() for check in checks],
        "```",
        "",
    ]
    session = run_session(
        ids,
        machine,
        quick=quick,
        jobs=jobs,
        cache=cache,
        base_seed=base_seed,
        traced=trace_dir is not None,
        faults=faults,
        planner=planner,
        cluster=cluster,
        storage=storage,
        backend=backend,
        rewrite=rewrite,
        memo=memo,
    )
    for run in session.runs:
        if csv_dir is not None:
            (csv_dir / f"{run.experiment_id}.csv").write_text(run.report.to_csv())
        if trace_dir is not None and run.trace_jsonl is not None:
            (trace_dir / f"{run.experiment_id}.trace.jsonl").write_text(
                run.trace_jsonl
            )
            (trace_dir / f"{run.experiment_id}.trace.csv").write_text(
                run.trace_csv
            )
        sections.append(_experiment_section(run.report))
    if trace_dir is not None and (cache is not None or jobs > 1):
        # Cache/worker telemetry; wall-clock gauges make it the one trace
        # file outside the byte-determinism guarantee.
        session.write_session_trace(trace_dir)
    return "\n".join(sections)


def write_report(
    path: Union[str, pathlib.Path],
    experiment_ids: Optional[Iterable[str]] = None,
    machine: Optional[SimMachine] = None,
    *,
    quick: bool = True,
    csv_dir: Optional[Union[str, pathlib.Path]] = None,
    trace_dir: Optional[Union[str, pathlib.Path]] = None,
    jobs: int = 1,
    cache: Optional[Union[MemoStore, str, pathlib.Path]] = None,
    base_seed: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    planner: Optional[str] = None,
    cluster=None,
    storage=None,
    backend: Optional[str] = None,
    rewrite: Optional[str] = None,
    memo: bool = True,
) -> pathlib.Path:
    """Build the report and write it to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        build_report(
            experiment_ids,
            machine,
            quick=quick,
            csv_dir=csv_dir,
            trace_dir=trace_dir,
            jobs=jobs,
            cache=cache,
            base_seed=base_seed,
            faults=faults,
            planner=planner,
            cluster=cluster,
            storage=storage,
            backend=backend,
            rewrite=rewrite,
            memo=memo,
        )
    )
    return path
