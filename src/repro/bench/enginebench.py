"""Engine wall-clock benchmark: simulated queries per second of serving.

The figure/table benchmarks time *experiments*; this module times the
**engine itself** — how many simulated queries per wall-clock second the
serving stack pushes through catalog pricing, admission, scheduling, and
metrics.  ``benchmarks/test_engine_speed.py`` drives it and persists the
numbers to ``benchmarks/results/BENCH_engine.json`` (tracked like
``BENCH_planner.json``), and CI gates regressions against the committed
baseline.

Three arms, all over the same wl01-scale pass (fresh
:class:`~repro.workload.JobCatalog`, the wl01 mix, two offered-load
points under the data-in-enclave setting):

* ``serial-cold`` — profile memo disabled: every pass re-prices its
  templates through the real operators (the pre-memo engine).
* ``serial-warm`` — memo primed: pricing is answered from the per-query
  profile memo; only the event loop and metrics remain.
* ``jobs2-warm`` — two passes across two spawned worker processes
  sharing one disk-backed memo tier (the ``--jobs N`` shape, including
  interpreter spin-up).

The cold and warm passes must produce identical metrics — the memo is a
pure wall-clock optimization — and the benchmark asserts it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench.experiments import common, workload_common
from repro.cache import ProfileMemo, use_profile_memo
from repro.memory.access import CodeVariant
from repro.workload import (
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)

#: The wl01 tenant mix (interactive scans, ad-hoc joins, one TPC-H plan).
MIX_WEIGHTS = {"scan-small": 0.5, "join-medium": 0.3, "q12": 0.2}

#: One under-load and one past-saturation point: the benchmark covers both
#: the dispatch-on-arrival and the queue-heavy scheduler regimes.
LOAD_FRACTIONS = (0.7, 1.1)

#: Queries per load point (wl01 quick fidelity).
QUERIES_PER_POINT = workload_common.QUICK_QUERIES


@dataclass(frozen=True)
class EnginePass:
    """One serving pass: how much was simulated, and how fast."""

    completed: int
    wall_s: float
    p99_ms: float  # determinism witness: must match across memo states

    @property
    def simulated_qps(self) -> float:
        """Simulated completed queries per wall-clock second."""
        return self.completed / self.wall_s


def engine_pass(
    *,
    queries: int = QUERIES_PER_POINT,
    fractions: Tuple[float, ...] = LOAD_FRACTIONS,
) -> EnginePass:
    """One wl01-scale serving pass, priced and served from scratch.

    Builds a fresh catalog (so pricing cost is *included* — that is what
    the memo removes), prices the mix under the data-in-enclave setting,
    and serves ``queries`` Poisson arrivals at each offered-load
    fraction of the mix's capacity.
    """
    start = time.perf_counter()
    catalog = JobCatalog(quick=True, variant=CodeVariant.NAIVE)
    engine = ServingEngine(catalog)
    mix = QueryMix.of(MIX_WEIGHTS)
    costs = {
        name: catalog.cost(engine.templates[name], common.SETTING_SGX_IN)
        for name in MIX_WEIGHTS
    }
    capacity = workload_common.capacity_qps(costs, MIX_WEIGHTS, cores=16)
    completed = 0
    p99_ms = 0.0
    for fraction in fractions:
        qps = fraction * capacity
        config = WorkloadConfig(
            setting=common.SETTING_SGX_IN,
            open_streams=(
                OpenLoopStream(
                    "tenant",
                    qps=qps,
                    mix=mix,
                    seed=workload_common.stream_seed(0),
                ),
            ),
            duration_s=queries / qps,
            cores=16,
            policy="fifo",
        )
        metrics = engine.run(config)
        completed += metrics.counters.completed
        p99_ms = metrics.latency_percentile_s(99) * 1e3
    return EnginePass(
        completed=completed,
        wall_s=time.perf_counter() - start,
        p99_ms=p99_ms,
    )


def _pass_worker(memo_dir: Optional[str]) -> Tuple[int, float, float]:
    """Spawn-pool entry point: one pass under a disk-backed memo."""
    memo = ProfileMemo(memo_dir) if memo_dir is not None else None
    with use_profile_memo(memo):
        result = engine_pass()
    return result.completed, result.wall_s, result.p99_ms


def run_jobs_arm(
    memo_dir: Optional[str], workers: int = 2
) -> Tuple[int, float, List[Tuple[int, float, float]]]:
    """``workers`` concurrent passes over one shared disk memo tier.

    Returns (total completed queries, wall seconds incl. pool spin-up,
    per-worker results).  Mirrors the ``--jobs N`` execution shape:
    spawned interpreters, no inherited ambient state, profiles shared
    only through the disk tier.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    spawn = multiprocessing.get_context("spawn")
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=workers, mp_context=spawn) as pool:
        outcomes = list(pool.map(_pass_worker, [memo_dir] * workers))
    wall = time.perf_counter() - start
    completed = sum(out[0] for out in outcomes)
    return completed, wall, outcomes


def scoreboard_entries(
    cold: EnginePass,
    warm: EnginePass,
    jobs_completed: int,
    jobs_wall_s: float,
    *,
    jobs_workers: int = 2,
) -> List[Dict]:
    """The ``BENCH_engine.json`` rows of one benchmark run."""
    jobs_qps = jobs_completed / jobs_wall_s
    return [
        {
            "experiment": "engine",
            "arm": "serial-cold",
            "simulated_qps": round(cold.simulated_qps, 1),
            "wall_s": round(cold.wall_s, 3),
            "queries": cold.completed,
            "speedup_vs_cold": 1.0,
        },
        {
            "experiment": "engine",
            "arm": "serial-warm",
            "simulated_qps": round(warm.simulated_qps, 1),
            "wall_s": round(warm.wall_s, 3),
            "queries": warm.completed,
            "speedup_vs_cold": round(warm.simulated_qps / cold.simulated_qps, 2),
        },
        {
            "experiment": "engine",
            "arm": f"jobs{jobs_workers}-warm",
            "simulated_qps": round(jobs_qps, 1),
            "wall_s": round(jobs_wall_s, 3),
            "queries": jobs_completed,
            "speedup_vs_cold": round(jobs_qps / cold.simulated_qps, 2),
        },
    ]
