"""Parallel session driver: fan experiments out, memoize their results.

:func:`run_session` is the one engine behind ``sgxv2-bench``'s table,
report, CSV, and trace outputs.  It executes the requested experiments —
serially in-process, or across a ``--jobs N`` pool of **spawned** worker
processes — optionally in front of a content-addressed
:class:`~repro.cache.MemoStore`, and merges the results deterministically
in request order.  Three properties hold by construction:

* **Determinism** — ``--jobs 8`` produces byte-identical reports, CSVs,
  and per-experiment traces to ``--jobs 1``: each experiment runs under
  its own seed (threaded explicitly into every worker, never via the
  parent's :data:`~repro.bench.runner.DEFAULT_BASE_SEED` mutation, which
  spawned processes do not inherit) and its own tracer, and the merge
  order is the request order regardless of completion order.
* **Warm-cache replay** — a cache hit re-emits the stored report *and*
  the stored trace texts verbatim, so a fully cached rerun performs zero
  operator re-simulations yet writes the same artifacts.
* **Observability** — the session tracer counts ``bench.cache.hits`` /
  ``bench.cache.misses`` (one ``bench.cache.hit``/``.miss`` event per
  experiment), ``bench.memo.hits`` / ``bench.memo.misses`` (per-query
  profile-memo traffic, summed across workers), and gauges per-worker
  wall seconds.  This is the only non-deterministic output (wall clock,
  cache state), which is why it lives in a separate ``_session`` trace,
  never in the per-experiment files the byte-identity guarantee covers.

Below the experiment cache, the **per-query profile memo**
(:mod:`repro.cache.profile`) memoizes individual pricing runs.  It is on
by default (``memo=False`` disables it for a session); with a ``--cache``
directory the memo gains a disk tier under ``<cache-dir>/profiles`` that
spawned workers and later sessions share, so even a cold experiment cache
reuses every previously priced profile.
"""

from __future__ import annotations

import contextlib
import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.registry import get_experiment, run_experiment
from repro.bench.report import ExperimentReport
from repro.bench.runner import DEFAULT_BASE_SEED, use_repetition_jobs
from repro.cache import MemoStore, calibration_digest, experiment_key
from repro.errors import BenchmarkError
from repro.faults.plan import FaultPlan
from repro.machine import SimMachine
from repro.trace import Tracer

#: Worker payload: (experiment_id, quick, base_seed, traced,
#: repetition_jobs, fault_plan, planner, cluster, storage, backend,
#: rewrite, memo_enabled, memo_dir).  The plan, the planner mode, the
#: cluster config, the storage config, the backend mode, the rewrite
#: mode, and the memo switches ride into spawned workers as pickled
#: values — spawn inherits no ambient
#: ``use_fault_plan``/``use_planner_mode``/``use_cluster``/
#: ``use_storage``/``use_backend_mode``/``use_rewrite``/
#: ``use_profile_memo`` state, so the explicit slots are the only
#: channel.
_Task = Tuple[
    str,
    bool,
    int,
    bool,
    int,
    Optional[FaultPlan],
    Optional[str],
    object,
    object,
    Optional[str],
    Optional[str],
    bool,
    Optional[str],
]


@dataclass
class ExperimentRun:
    """One experiment's merged outcome within a session."""

    experiment_id: str
    report: ExperimentReport
    trace_jsonl: Optional[str] = None
    trace_csv: Optional[str] = None
    from_cache: bool = False
    wall_s: float = 0.0


@dataclass
class SessionResult:
    """All runs of one session, in request order, plus the session tracer."""

    runs: List[ExperimentRun] = field(default_factory=list)
    tracer: Tracer = field(default_factory=lambda: Tracer(label="_session"))

    @property
    def cache_hits(self) -> int:
        return self.tracer.counters.get("bench.cache.hits", 0)

    @property
    def cache_misses(self) -> int:
        return self.tracer.counters.get("bench.cache.misses", 0)

    @property
    def memo_hits(self) -> int:
        """Per-query profile-memo hits summed across every run/worker."""
        return self.tracer.counters.get("bench.memo.hits", 0)

    @property
    def memo_misses(self) -> int:
        """Per-query profile-memo misses summed across every run/worker."""
        return self.tracer.counters.get("bench.memo.misses", 0)

    def write_session_trace(
        self, trace_dir: Union[str, pathlib.Path]
    ) -> pathlib.Path:
        """Export the session tracer (cache + worker telemetry) to files.

        Written as ``_session.trace.jsonl``/``.csv`` — the underscore keeps
        it apart from experiment ids and flags it as the one artifact that
        is *not* byte-deterministic (it carries wall-clock gauges).
        """
        from repro.trace import write_csv, write_jsonl

        trace_dir = pathlib.Path(trace_dir)
        path = write_jsonl(self.tracer, trace_dir / "_session.trace.jsonl")
        write_csv(self.tracer, trace_dir / "_session.trace.csv")
        return path


def _execute(
    experiment_id: str,
    *,
    quick: bool,
    base_seed: int,
    traced: bool,
    repetition_jobs: int,
    machine: Optional[SimMachine] = None,
    fault_plan: Optional[FaultPlan] = None,
    planner: Optional[str] = None,
    cluster=None,
    storage=None,
    backend: Optional[str] = None,
    rewrite: Optional[str] = None,
) -> Dict:
    """Run one experiment and return its JSON-safe result payload."""
    start = time.perf_counter()
    tracer = Tracer(label=experiment_id) if traced else None
    with use_repetition_jobs(repetition_jobs):
        report = run_experiment(
            experiment_id,
            machine,
            quick=quick,
            tracer=tracer,
            base_seed=base_seed,
            fault_plan=fault_plan,
            planner=planner,
            cluster=cluster,
            storage=storage,
            backend=backend,
            rewrite=rewrite,
        )
    payload: Dict = {
        "report": report.as_dict(),
        "trace_jsonl": None,
        "trace_csv": None,
        "wall_s": time.perf_counter() - start,
    }
    if tracer is not None:
        from repro.trace import to_csv, to_jsonl

        payload["trace_jsonl"] = to_jsonl(tracer)
        payload["trace_csv"] = to_csv(tracer)
    return payload


def _memo_scope(enabled: bool, memo_dir: Optional[str]):
    """The profile-memo context one task runs under.

    ``enabled=False`` installs the disabled sentinel (the ``--no-memo``
    path); an explicit directory installs a disk-backed tier (shared by
    every worker and every later session over the same ``--cache`` dir);
    otherwise the ambient process-global memo is left in place.
    """
    from repro.cache import ProfileMemo, use_profile_memo

    if not enabled:
        return use_profile_memo(None)
    if memo_dir is not None:
        return use_profile_memo(ProfileMemo(memo_dir))
    return contextlib.nullcontext()


def _executed_with_memo_stats(
    experiment_id: str, memo_enabled: bool, memo_dir: Optional[str], **kwargs
) -> Dict:
    """Run one experiment inside a memo scope; stats ride on the payload.

    The hit/miss *delta* is recorded (pool workers are reused across
    tasks, and the ambient memo outlives the session), so summing the
    payload stats across tasks never double-counts.
    """
    from repro.cache import profile_memo

    with _memo_scope(memo_enabled, memo_dir):
        memo = profile_memo()
        hits_before, misses_before = memo.hits, memo.misses
        payload = _execute(experiment_id, **kwargs)
        payload["memo_hits"] = memo.hits - hits_before
        payload["memo_misses"] = memo.misses - misses_before
    return payload


def _worker(task: _Task) -> Dict:
    """Process-pool entry point (top-level so spawn can pickle it)."""
    (
        experiment_id,
        quick,
        base_seed,
        traced,
        repetition_jobs,
        fault_plan,
        planner,
        cluster,
        storage,
        backend,
        rewrite,
        memo_enabled,
        memo_dir,
    ) = task
    return _executed_with_memo_stats(
        experiment_id,
        memo_enabled,
        memo_dir,
        quick=quick,
        base_seed=base_seed,
        traced=traced,
        repetition_jobs=repetition_jobs,
        fault_plan=fault_plan,
        planner=planner,
        cluster=cluster,
        storage=storage,
        backend=backend,
        rewrite=rewrite,
    )


def _run_from_payload(
    experiment_id: str, payload: Dict, *, from_cache: bool
) -> ExperimentRun:
    return ExperimentRun(
        experiment_id=experiment_id,
        report=ExperimentReport.from_dict(payload["report"]),
        trace_jsonl=payload.get("trace_jsonl"),
        trace_csv=payload.get("trace_csv"),
        from_cache=from_cache,
        wall_s=float(payload.get("wall_s", 0.0)),
    )


def run_session(
    experiment_ids: Sequence[str],
    machine: Optional[SimMachine] = None,
    *,
    quick: bool = True,
    jobs: int = 1,
    cache: Optional[Union[MemoStore, str, pathlib.Path]] = None,
    base_seed: Optional[int] = None,
    traced: bool = False,
    faults: Optional[FaultPlan] = None,
    planner: Optional[str] = None,
    cluster=None,
    storage=None,
    backend: Optional[str] = None,
    rewrite: Optional[str] = None,
    memo: bool = True,
) -> SessionResult:
    """Run ``experiment_ids`` (possibly in parallel, possibly cached).

    ``jobs`` caps the worker-process count; leftover slots fan out inside
    experiments as repetition threads (``jobs=8`` over one experiment runs
    its repetitions eight-wide).  ``cache`` is a :class:`MemoStore` or a
    directory for one; ``traced`` attaches a private tracer per experiment
    and returns its exported texts on each :class:`ExperimentRun`.  A
    non-default ``machine`` runs in-process (live machine objects stay out
    of worker pickles) but still keys the cache by its calibration digest.
    ``faults`` installs a session fault plan for every run — threaded
    explicitly into workers and hashed into every cache key, so serial,
    parallel, and cached-replay runs of one plan stay byte-identical while
    differently-faulted runs never collide.  ``planner`` installs a
    session planner mode through the same three channels (in-process
    scope, worker task slot, cache key) with the same guarantee, and
    ``cluster`` (a :class:`~repro.cluster.ClusterConfig`) a session
    cluster topology likewise, and ``storage`` (a
    :class:`~repro.storage.StorageConfig`) a session sealed-storage
    budget likewise, and ``backend`` a session backend mode likewise
    (``None``/``"sim"`` key identically — both serve the operator
    simulator), and ``rewrite`` a session rewrite mode likewise
    (``None``/``"off"`` key identically — both serve the reference
    logical plans).  ``memo=False`` disables the per-query
    profile memo for every run (the ``--no-memo`` channel); memoized and
    unmemoized runs are byte-identical, so the flag is never keyed.
    """
    ids = list(experiment_ids)
    for experiment_id in ids:
        get_experiment(experiment_id)  # fail fast on unknown ids
    if jobs < 1:
        raise BenchmarkError(f"jobs must be at least 1, got {jobs}")
    if base_seed is None:
        base_seed = DEFAULT_BASE_SEED
    store: Optional[MemoStore]
    if cache is None or isinstance(cache, MemoStore):
        store = cache
    else:
        store = MemoStore(cache)

    session = SessionResult()
    results: Dict[str, ExperimentRun] = {}
    keys: Dict[str, str] = {}
    digest = None
    unique_ids = list(dict.fromkeys(ids))
    pending: List[str] = []

    if store is not None:
        params = machine.params if machine is not None else None
        spec = machine.spec if machine is not None else None
        digest = calibration_digest(params, spec)
        for experiment_id in unique_ids:
            keys[experiment_id] = experiment_key(
                experiment_id,
                quick=quick,
                base_seed=base_seed,
                traced=traced,
                params=params,
                spec=spec,
                faults=faults,
                planner=planner,
                cluster=cluster,
                storage=storage,
                backend=backend,
                rewrite=rewrite,
            )
            payload = store.get(keys[experiment_id])
            run: Optional[ExperimentRun] = None
            if payload is not None:
                try:
                    run = _run_from_payload(experiment_id, payload, from_cache=True)
                    run.wall_s = 0.0  # a hit costs no simulation time
                except BenchmarkError:
                    run = None  # malformed entry: recompute below
            if run is not None and traced and run.trace_jsonl is None:
                run = None  # entry predates tracing for this key shape
            if run is not None:
                results[experiment_id] = run
                session.tracer.count("bench.cache.hits")
                session.tracer.event("bench.cache.hit", experiment=experiment_id)
            else:
                session.tracer.count("bench.cache.misses")
                session.tracer.event("bench.cache.miss", experiment=experiment_id)
                pending.append(experiment_id)
    else:
        pending = unique_ids

    # A --cache directory also hosts the profile memo's disk tier, so
    # workers (and later sessions) share priced profiles even when the
    # experiment-level entries themselves miss.
    memo_dir: Optional[str] = None
    if memo and store is not None and store.directory is not None:
        memo_dir = str(store.directory / "profiles")

    # Split the job budget: one process per pending experiment first, the
    # remainder as repetition threads inside each worker.
    repetition_jobs = max(1, jobs // len(pending)) if pending else 1

    if pending:
        if jobs <= 1 or len(pending) == 1 or machine is not None:
            for experiment_id in pending:
                payload = _executed_with_memo_stats(
                    experiment_id,
                    memo,
                    memo_dir,
                    quick=quick,
                    base_seed=base_seed,
                    traced=traced,
                    repetition_jobs=repetition_jobs,
                    machine=machine,
                    fault_plan=faults,
                    planner=planner,
                    cluster=cluster,
                    storage=storage,
                    backend=backend,
                    rewrite=rewrite,
                )
                _absorb(session, results, store, keys, digest, experiment_id, payload)
        else:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            spawn = multiprocessing.get_context("spawn")
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=spawn
            ) as pool:
                futures = {
                    experiment_id: pool.submit(
                        _worker,
                        (
                            experiment_id,
                            quick,
                            base_seed,
                            traced,
                            repetition_jobs,
                            faults,
                            planner,
                            cluster,
                            storage,
                            backend,
                            rewrite,
                            memo,
                            memo_dir,
                        ),
                    )
                    for experiment_id in pending
                }
                # Collect in request order: completion order never leaks
                # into the merged output.
                for experiment_id in pending:
                    payload = futures[experiment_id].result()
                    _absorb(
                        session, results, store, keys, digest, experiment_id, payload
                    )

    session.runs = [results[experiment_id] for experiment_id in ids]
    return session


def _absorb(
    session: SessionResult,
    results: Dict[str, ExperimentRun],
    store: Optional[MemoStore],
    keys: Dict[str, str],
    digest: Optional[str],
    experiment_id: str,
    payload: Dict,
) -> None:
    """Record one computed result: session telemetry, cache, merge map."""
    run = _run_from_payload(experiment_id, payload, from_cache=False)
    results[experiment_id] = run
    session.tracer.gauge(f"bench.worker.wall_s.{experiment_id}", run.wall_s)
    # Memo traffic belongs to the session trace only (it depends on what
    # ran before), never to the cached payload the replay guarantee covers.
    memo_hits = int(payload.pop("memo_hits", 0))
    memo_misses = int(payload.pop("memo_misses", 0))
    if memo_hits:
        session.tracer.count("bench.memo.hits", memo_hits)
    if memo_misses:
        session.tracer.count("bench.memo.misses", memo_misses)
    if store is not None:
        store.put(
            keys[experiment_id],
            {
                "report": payload["report"],
                "trace_jsonl": payload.get("trace_jsonl"),
                "trace_csv": payload.get("trace_csv"),
                "wall_s": payload.get("wall_s", 0.0),
                "calibration": digest,
            },
        )
