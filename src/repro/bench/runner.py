"""Repetition runner: the paper's "ten runs, arithmetic mean ± std" protocol.

Simulated costs are deterministic for a fixed input, so repetitions vary
the data-generation seed — the residual spread reflects data-dependent
effects (partition skew, chain lengths), which is also what repeated runs
on the real hardware would pick up once machine noise is controlled as
carefully as the paper controls it (fixed frequency, pinned threads).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import BenchmarkError

#: The paper's repetition count (Sec. 3).
PAPER_REPETITIONS = 10

#: Seed of the first repetition (repetition i uses base + i).  The CLI's
#: ``--seed`` flag overrides it process-wide via :func:`set_default_base_seed`
#: so runs are reproducible-but-variable.
DEFAULT_BASE_SEED = 42


def set_default_base_seed(seed: int) -> None:
    """Set the process-wide base seed used when callers pass none."""
    global DEFAULT_BASE_SEED
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise BenchmarkError(f"base seed must be an integer, got {seed!r}")
    DEFAULT_BASE_SEED = seed


@dataclass(frozen=True)
class RunStats:
    """Mean and standard deviation over repeated runs."""

    mean: float
    std: float
    samples: Sequence[float]

    @property
    def runs(self) -> int:
        return len(self.samples)

    @property
    def relative_std(self) -> float:
        """Coefficient of variation (0 when the mean is 0)."""
        if self.mean == 0:
            return 0.0
        return self.std / abs(self.mean)

    def __format__(self, spec: str) -> str:
        spec = spec or ".3g"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def summarize(samples: Sequence[float]) -> RunStats:
    """Arithmetic mean and population standard deviation of ``samples``."""
    if not samples:
        raise BenchmarkError("cannot summarize zero samples")
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / len(samples)
    return RunStats(mean=mean, std=math.sqrt(variance), samples=tuple(samples))


def repeat_runs(
    measure: Callable[[int], float],
    *,
    runs: int = PAPER_REPETITIONS,
    base_seed: Optional[int] = None,
) -> RunStats:
    """Call ``measure(seed)`` ``runs`` times and summarize the results.

    ``base_seed`` defaults to the process-wide :data:`DEFAULT_BASE_SEED`
    (42, unless the CLI's ``--seed`` changed it).
    """
    if runs < 1:
        raise BenchmarkError("need at least one run")
    if base_seed is None:
        base_seed = DEFAULT_BASE_SEED
    from repro.trace.tracer import current_tracer

    tracer = current_tracer()
    samples: List[float] = []
    for i in range(runs):
        samples.append(float(measure(base_seed + i)))
        if tracer.enabled:
            tracer.event(
                "bench.repetition",
                repetition=i,
                seed=base_seed + i,
                sample=samples[-1],
            )
            tracer.count("bench.repetitions")
    return summarize(samples)
