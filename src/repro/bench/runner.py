"""Repetition runner: the paper's "ten runs, arithmetic mean ± std" protocol.

Simulated costs are deterministic for a fixed input, so repetitions vary
the data-generation seed — the residual spread reflects data-dependent
effects (partition skew, chain lengths), which is also what repeated runs
on the real hardware would pick up once machine noise is controlled as
carefully as the paper controls it (fixed frequency, pinned threads).
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from repro.errors import BenchmarkError

#: The paper's repetition count (Sec. 3).
PAPER_REPETITIONS = 10

#: Seed of the first repetition (repetition i uses base + i).  The CLI's
#: ``--seed`` flag overrides it process-wide via :func:`set_default_base_seed`
#: so runs are reproducible-but-variable.  Parallel workers must NOT rely on
#: this global surviving into them (spawned processes re-import the module
#: fresh); the session driver threads the seed explicitly and installs it in
#: each worker with :func:`use_base_seed`.
DEFAULT_BASE_SEED = 42

#: Thread-pool width for the repetitions of one :func:`repeat_runs` call.
#: 1 means strictly serial; the parallel session driver raises it (via
#: :func:`use_repetition_jobs`) when there are more worker slots than
#: experiments.
DEFAULT_REPETITION_JOBS = 1


def set_default_base_seed(seed: int) -> None:
    """Set the process-wide base seed used when callers pass none."""
    global DEFAULT_BASE_SEED
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise BenchmarkError(f"base seed must be an integer, got {seed!r}")
    DEFAULT_BASE_SEED = seed


def set_default_repetition_jobs(jobs: int) -> None:
    """Set the process-wide repetition thread count used when callers pass none."""
    global DEFAULT_REPETITION_JOBS
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise BenchmarkError(f"repetition jobs must be a positive integer, got {jobs!r}")
    DEFAULT_REPETITION_JOBS = jobs


@contextlib.contextmanager
def use_base_seed(seed: Optional[int]) -> Iterator[int]:
    """Install ``seed`` as the process base seed for the ``with`` scope.

    ``None`` leaves the current default untouched.  This is how the parallel
    session driver threads ``--seed`` into worker processes explicitly: the
    CLI's one-shot :func:`set_default_base_seed` mutation happens in the
    parent and does not survive into spawned workers.
    """
    global DEFAULT_BASE_SEED
    previous = DEFAULT_BASE_SEED
    if seed is not None:
        set_default_base_seed(seed)
    try:
        yield DEFAULT_BASE_SEED
    finally:
        DEFAULT_BASE_SEED = previous


@contextlib.contextmanager
def use_repetition_jobs(jobs: Optional[int]) -> Iterator[int]:
    """Install ``jobs`` as the repetition thread count for the ``with`` scope."""
    global DEFAULT_REPETITION_JOBS
    previous = DEFAULT_REPETITION_JOBS
    if jobs is not None:
        set_default_repetition_jobs(jobs)
    try:
        yield DEFAULT_REPETITION_JOBS
    finally:
        DEFAULT_REPETITION_JOBS = previous


@dataclass(frozen=True)
class RunStats:
    """Mean and standard deviation over repeated runs."""

    mean: float
    std: float
    samples: Sequence[float]

    @property
    def runs(self) -> int:
        return len(self.samples)

    @property
    def relative_std(self) -> float:
        """Coefficient of variation.

        0 only when the spread truly is zero; a zero mean with nonzero
        spread (samples straddling zero) has no meaningful coefficient of
        variation and reports ``nan`` rather than fake perfect stability.
        """
        if self.mean == 0:
            return 0.0 if self.std == 0 else math.nan
        return self.std / abs(self.mean)

    def __format__(self, spec: str) -> str:
        spec = spec or ".3g"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def summarize(samples: Sequence[float]) -> RunStats:
    """Arithmetic mean and population standard deviation of ``samples``."""
    if not samples:
        raise BenchmarkError("cannot summarize zero samples")
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / len(samples)
    return RunStats(mean=mean, std=math.sqrt(variance), samples=tuple(samples))


def repeat_runs(
    measure: Callable[[int], float],
    *,
    runs: int = PAPER_REPETITIONS,
    base_seed: Optional[int] = None,
    jobs: Optional[int] = None,
) -> RunStats:
    """Call ``measure(seed)`` ``runs`` times and summarize the results.

    ``base_seed`` defaults to the process-wide :data:`DEFAULT_BASE_SEED`
    (42, unless the CLI's ``--seed`` changed it) and ``jobs`` to
    :data:`DEFAULT_REPETITION_JOBS`.  With ``jobs > 1`` the repetitions run
    on a thread pool; samples are collected in repetition order, so the
    summary is identical to a serial run.  A tracer forces serial execution:
    measurements emit spans into the process-current tracer, and only a
    serial sweep keeps the exported record order deterministic.

    A failing repetition is re-raised as :class:`BenchmarkError` carrying
    the repetition index and seed, so a crash deep inside an operator (or a
    pool worker) still names the exact input that triggered it.
    """
    if runs < 1:
        raise BenchmarkError("need at least one run")
    if base_seed is None:
        base_seed = DEFAULT_BASE_SEED
    if jobs is None:
        jobs = DEFAULT_REPETITION_JOBS
    from repro.trace.tracer import current_tracer

    tracer = current_tracer()
    seeds = [base_seed + i for i in range(runs)]

    def run_one(index: int) -> float:
        seed = seeds[index]
        try:
            return float(measure(seed))
        except Exception as exc:
            if tracer.enabled:
                tracer.event(
                    "bench.repetition_failed",
                    repetition=index,
                    seed=seed,
                    error=type(exc).__name__,
                )
            raise BenchmarkError(
                f"repetition {index} (seed {seed}) failed: {exc}"
            ) from exc

    if jobs > 1 and runs > 1 and not tracer.enabled:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(jobs, runs)) as pool:
            samples: List[float] = list(pool.map(run_one, range(runs)))
    else:
        samples = []
        for i in range(runs):
            samples.append(run_one(i))
            if tracer.enabled:
                tracer.event(
                    "bench.repetition",
                    repetition=i,
                    seed=seeds[i],
                    sample=samples[-1],
                )
                tracer.count("bench.repetitions")
    return summarize(samples)
