"""Registry mapping experiment ids to their modules.

``run_experiment("fig08")`` regenerates one figure; the CLI and the
pytest-benchmark suite both resolve experiments through this table.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.experiments import (
    fig01_headline,
    fig03_join_overview,
    fig04_pht_random_access,
    fig05_random_access_micro,
    fig06_rho_breakdown,
    fig07_histogram,
    fig08_optimized_joins,
    fig09_numa_joins,
    fig10_queue_contention,
    fig11_edmm,
    fig12_scan_single,
    fig13_scan_scaling,
    fig14_selectivity,
    fig15_linear_micro,
    fig16_numa_scan,
    fig17_tpch,
    tab01_hardware,
    ext01_sgxv1_legacy,
    ext02_packed_scan,
    ext03_aggregation,
    ext04_skew,
    ext05_pipelining,
    ext06_epc_crossover,
    ext07_planner_ablation,
    ext08_engine_vs_operator,
    ext09_rewrite_ablation,
    wl01_latency_throughput,
    wl02_admission_policies,
    wl03_tenant_interference,
    wl04_fault_resilience,
    wl05_adaptive_planner,
    wl06_cluster_scaleout,
    wl07_spill_scaleout,
    wl08_rewrite_serving,
)
from repro.bench.report import ExperimentReport
from repro.errors import BenchmarkError
from repro.machine import SimMachine

EXPERIMENTS: Dict[str, object] = {
    module.EXPERIMENT_ID: module
    for module in (
        fig01_headline,
        fig03_join_overview,
        fig04_pht_random_access,
        fig05_random_access_micro,
        fig06_rho_breakdown,
        fig07_histogram,
        fig08_optimized_joins,
        fig09_numa_joins,
        fig10_queue_contention,
        fig11_edmm,
        fig12_scan_single,
        fig13_scan_scaling,
        fig14_selectivity,
        fig15_linear_micro,
        fig16_numa_scan,
        fig17_tpch,
        tab01_hardware,
        ext01_sgxv1_legacy,
        ext02_packed_scan,
        ext03_aggregation,
        ext04_skew,
        ext05_pipelining,
        ext06_epc_crossover,
        ext07_planner_ablation,
        ext08_engine_vs_operator,
        ext09_rewrite_ablation,
        wl01_latency_throughput,
        wl02_admission_policies,
        wl03_tenant_interference,
        wl04_fault_resilience,
        wl05_adaptive_planner,
        wl06_cluster_scaleout,
        wl07_spill_scaleout,
        wl08_rewrite_serving,
    )
}


def get_experiment(experiment_id: str):
    """The experiment module for ``experiment_id`` (or raise)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise BenchmarkError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(
    experiment_id: str,
    machine: Optional[SimMachine] = None,
    *,
    quick: bool = True,
    tracer=None,
    base_seed: Optional[int] = None,
    fault_plan=None,
    planner: Optional[str] = None,
    cluster=None,
    storage=None,
    backend: Optional[str] = None,
    rewrite: Optional[str] = None,
) -> ExperimentReport:
    """Run one experiment and return its report.

    When ``tracer`` is given it is installed as the current tracer for the
    run, so every instrumented layer (operator phases, enclave charges,
    serving scheduler) records into it.  Tracing is observation-only: the
    report is bit-identical with and without it.

    ``base_seed`` pins the repetition/stream base seed for this run (the
    explicit channel parallel workers use; ``None`` keeps the process
    default).  ``fault_plan`` installs a session fault plan
    (:class:`~repro.faults.FaultPlan`) for the run's scope — serving runs
    whose configs leave ``faults=None`` inject from it; experiments that
    pin explicit plans (wl04's arms) are unaffected.  ``planner`` installs
    a session planner mode the same way — serving configs with
    ``planner=None`` serve under it; experiments that pin modes (ext07,
    wl05's arms) are unaffected.  ``cluster`` installs a session cluster
    topology (a :class:`~repro.cluster.ClusterConfig` or a spec string
    like ``"2x4"``) — serving configs with ``cluster=None`` shard over
    it; experiments that pin explicit clusters (wl06's arms) are
    unaffected.  ``storage`` installs a session sealed-storage budget (a
    :class:`~repro.storage.StorageConfig` or a spec string like ``"2G"``)
    the same way — serving configs with ``storage=None`` spill against
    it.  ``backend`` installs a session backend mode (``--backend``):
    engine modes price serving templates from calibrated engine profiles
    through the SGX cost envelope; ``None``/``"sim"`` leave the operator
    simulator in charge (byte-identical to the pre-backends path).
    ``rewrite`` installs a session rewrite mode (``--rewrite``): active
    modes prove (and race) logical rewrite candidates while serving runs
    plan their arms, and ``"learned"`` adds winning rewrites to the
    adaptive planner's arm set; ``None``/``"off"`` leave the reference
    logical plans in charge (byte-identical to the pre-rewrite path).
    """
    module = get_experiment(experiment_id)
    import contextlib

    from repro.backends.config import use_backend_mode
    from repro.bench.runner import use_base_seed
    from repro.rewrite.config import use_rewrite
    from repro.cluster import ClusterConfig, use_cluster
    from repro.faults import use_fault_plan
    from repro.planner import use_planner_mode
    from repro.storage import StorageConfig, use_storage

    plan_scope = (
        use_fault_plan(fault_plan)
        if fault_plan is not None
        else contextlib.nullcontext()
    )
    if isinstance(cluster, str):
        cluster = ClusterConfig.parse(cluster)
    if isinstance(storage, str):
        storage = StorageConfig.parse(storage)
    with plan_scope, use_planner_mode(planner), use_base_seed(base_seed), \
            use_cluster(cluster), use_storage(storage), \
            use_backend_mode(backend), use_rewrite(rewrite):
        if tracer is None:
            return module.run(machine, quick=quick)
        from repro.trace import use_tracer

        with use_tracer(tracer):
            return module.run(machine, quick=quick)
