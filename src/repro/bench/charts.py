"""Terminal rendering of experiment reports as ASCII charts.

The paper's artifacts are figures; the harness regenerates their data as
tables.  This module closes the gap for terminal use: bar charts for
categorical experiments (Fig. 1/3/8/9/10/11/17) and line-ish series charts
for sweeps (Fig. 4/5/12-16).  Pure text, no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.report import ExperimentReport
from repro.errors import BenchmarkError

_BAR = "█"
_HALF = "▌"


def _format_x(x) -> str:
    if isinstance(x, float) and x >= 1e4:
        return f"{x:.0e}"
    return str(x)


def render_bars(
    report: ExperimentReport, *, width: int = 78, bar_width: int = 40
) -> str:
    """Horizontal bar chart: one bar per (series, x) row, value-scaled."""
    if not report.rows:
        raise BenchmarkError(f"{report.experiment_id}: nothing to chart")
    peak = max(row.value for row in report.rows)
    if peak <= 0:
        raise BenchmarkError(f"{report.experiment_id}: no positive values")
    label_width = min(
        40, max(len(f"{row.series} [{_format_x(row.x)}]") for row in report.rows)
    )
    lines = [f"{report.experiment_id}: {report.title}"]
    for row in report.rows:
        label = f"{row.series} [{_format_x(row.x)}]"[:label_width]
        filled = row.value / peak * bar_width
        whole = int(filled)
        bar = _BAR * whole + (_HALF if filled - whole >= 0.5 else "")
        lines.append(
            f"{label:<{label_width}} |{bar:<{bar_width}}| "
            f"{row.value:.4g} {row.unit}"
        )
    return "\n".join(line[:width] for line in lines)


def render_series(
    report: ExperimentReport, *, height: int = 12, width: int = 60
) -> str:
    """Multi-series scatter chart over a shared x axis (sweep experiments).

    X positions are rank-scaled (the paper's sweeps are log-spaced), each
    series gets a distinct marker, and collisions show the later series.
    """
    names = report.series_names()
    if not names:
        raise BenchmarkError(f"{report.experiment_id}: nothing to chart")
    xs: List = []
    for row in report.rows:
        if row.x not in xs:
            xs.append(row.x)
    if len(xs) < 2:
        raise BenchmarkError(
            f"{report.experiment_id}: need at least two x values for a "
            "series chart; use render_bars"
        )
    markers = "ox+*#@%&"
    values = [row.value for row in report.rows]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    x_positions: Dict = {
        x: int(i / (len(xs) - 1) * (width - 1)) for i, x in enumerate(xs)
    }
    for series_index, name in enumerate(names):
        marker = markers[series_index % len(markers)]
        for row in report.series(name):
            col = x_positions[row.x]
            level = int((row.value - low) / span * (height - 1))
            grid[height - 1 - level][col] = marker
    lines = [f"{report.experiment_id}: {report.title}"]
    lines.append(f"{high:.4g} {report.rows[0].unit}".rjust(14))
    for grid_row in grid:
        lines.append("  |" + "".join(grid_row))
    lines.append("  +" + "-" * width)
    lines.append(f"{low:.4g}".rjust(14))
    lines.append(
        "   x: " + " .. ".join(_format_x(x) for x in (xs[0], xs[-1]))
    )
    for series_index, name in enumerate(names):
        lines.append(f"   {markers[series_index % len(markers)]} = {name}")
    return "\n".join(lines)


def render(report: ExperimentReport, **kwargs) -> str:
    """Choose a chart form automatically: sweeps get series, else bars."""
    xs = {row.x for row in report.rows}
    numeric = all(isinstance(x, (int, float)) for x in xs)
    if numeric and len(xs) >= 3:
        return render_series(report, **kwargs)
    return render_bars(report, **kwargs)
