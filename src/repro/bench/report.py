"""Experiment reports: the rows/series the paper's figures plot.

Every experiment module produces one :class:`ExperimentReport`; its rows
carry a series label (one bar group / line), an x value (size, threads,
selectivity, ...), the measured value with repetition spread, and the unit.
``print_table`` renders the same rows the paper reports; ``to_csv`` feeds
external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.runner import RunStats
from repro.errors import BenchmarkError

XValue = Union[str, int, float]


@dataclass(frozen=True)
class ReportRow:
    """One measured point of an experiment."""

    series: str
    x: XValue
    value: float
    unit: str
    std: float = 0.0

    def formatted(self) -> str:
        if self.std:
            return f"{self.value:.4g} ± {self.std:.2g} {self.unit}"
        return f"{self.value:.4g} {self.unit}"

    def as_dict(self) -> Dict[str, Union[str, int, float]]:
        """JSON-safe representation (cache entries, worker transfer)."""
        return {
            "series": self.series,
            "x": self.x,
            "value": self.value,
            "unit": self.unit,
            "std": self.std,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ReportRow":
        try:
            return cls(
                series=payload["series"],
                x=payload["x"],
                value=float(payload["value"]),
                unit=payload["unit"],
                std=float(payload.get("std", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchmarkError(f"malformed report row {payload!r}: {exc}") from None


@dataclass
class ExperimentReport:
    """All rows of one reproduced figure/table plus paper context."""

    experiment_id: str
    title: str
    paper_reference: str
    rows: List[ReportRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(
        self,
        series: str,
        x: XValue,
        value: Union[float, RunStats],
        unit: str,
    ) -> None:
        """Append one row (RunStats values carry their spread along)."""
        if isinstance(value, RunStats):
            self.rows.append(ReportRow(series, x, value.mean, unit, value.std))
        else:
            self.rows.append(ReportRow(series, x, float(value), unit))

    def as_dict(self) -> Dict:
        """JSON-safe representation; :meth:`from_dict` round-trips it."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "rows": [row.as_dict() for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ExperimentReport":
        try:
            return cls(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                paper_reference=payload["paper_reference"],
                rows=[ReportRow.from_dict(row) for row in payload["rows"]],
                notes=list(payload["notes"]),
            )
        except (KeyError, TypeError) as exc:
            raise BenchmarkError(f"malformed report payload: {exc}") from None

    def series(self, name: str) -> List[ReportRow]:
        """All rows of one series, in insertion order."""
        return [row for row in self.rows if row.series == name]

    def series_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.series, None)
        return list(seen)

    def value(self, series: str, x: XValue) -> float:
        """The measured value at (series, x); raises when absent."""
        for row in self.rows:
            if row.series == series and row.x == x:
                return row.value
        raise BenchmarkError(
            f"{self.experiment_id}: no row for series {series!r} at x={x!r}"
        )

    def ratio(self, numerator: str, denominator: str, x: XValue) -> float:
        """Convenience: value(numerator, x) / value(denominator, x)."""
        denom = self.value(denominator, x)
        if denom == 0:
            raise BenchmarkError(f"{self.experiment_id}: zero denominator at {x!r}")
        return self.value(numerator, x) / denom

    # -- rendering --------------------------------------------------------

    def print_table(self, width: int = 78) -> str:
        """Render the report as the text table the harness prints."""
        lines = [
            "=" * width,
            f"{self.experiment_id}: {self.title}",
            f"(reproduces {self.paper_reference})",
            "-" * width,
            f"{'series':<34} {'x':>12} {'value':>24}",
            "-" * width,
        ]
        for row in self.rows:
            lines.append(f"{row.series:<34} {str(row.x):>12} {row.formatted():>24}")
        if self.notes:
            lines.append("-" * width)
            for note in self.notes:
                lines.append(f"note: {note}")
        lines.append("=" * width)
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering: series,x,value,std,unit."""
        lines = ["series,x,value,std,unit"]
        for row in self.rows:
            lines.append(
                f"{row.series},{row.x},{row.value!r},{row.std!r},{row.unit}"
            )
        return "\n".join(lines)
