"""Calibration validator: one model, every paper anchor.

DESIGN.md promises that all experiments derive from a *single* calibrated
cost model rather than per-figure tuning.  This module makes that claim
checkable: :func:`validate_calibration` prices the paper's anchor
measurements directly against the cost model (no operators, no benchmark
code in between) and reports each as pass/fail within a tolerance.

Run it via ``sgxv2-bench --validate`` or programmatically; the benchmark
suite asserts that every anchor holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.machine import SimMachine
from repro.memory.access import AccessBatch, CodeVariant, Locality, PatternKind
from repro.memory.cost_model import CostEnvironment

#: Default acceptance band around each paper anchor.
DEFAULT_TOLERANCE = 0.08


@dataclass(frozen=True)
class AnchorCheck:
    """One paper measurement checked against the model."""

    name: str
    source: str
    expected: float
    measured: float
    tolerance: float

    @property
    def passed(self) -> bool:
        if self.expected == 0:
            return abs(self.measured) <= self.tolerance
        return abs(self.measured - self.expected) <= self.tolerance * abs(
            self.expected
        )

    def describe(self) -> str:
        status = "ok " if self.passed else "FAIL"
        return (
            f"[{status}] {self.name}: expected {self.expected:.3g}, "
            f"model {self.measured:.3g} (±{self.tolerance:.0%}; {self.source})"
        )


class CalibrationValidator:
    """Prices each anchor pattern and compares against the paper value."""

    def __init__(self, machine: Optional[SimMachine] = None) -> None:
        self.machine = machine or SimMachine()
        self._model = self.machine.cost_model
        self._epc = Locality(0, True)

    # -- helpers -----------------------------------------------------------

    def _ratio(self, batch: AccessBatch, *, concurrency: int = 1,
               thread_node: int = 0) -> float:
        """SGX cycles / plain cycles for one batch."""
        plain = self._model.batch_cycles(
            batch, CostEnvironment(False, thread_node, concurrency)
        )
        sgx = self._model.batch_cycles(
            batch, CostEnvironment(True, thread_node, concurrency)
        )
        return sgx / plain

    def _chase(self, ws: float) -> AccessBatch:
        return AccessBatch(
            kind=PatternKind.DEPENDENT_READ, count=1e6, element_bytes=8,
            working_set_bytes=ws, locality=self._epc, parallelism=1.0,
            compute_cycles_per_item=0.0,
        )

    def _write(self, ws: float) -> AccessBatch:
        return AccessBatch(
            kind=PatternKind.RANDOM_WRITE, count=1e6, element_bytes=8,
            working_set_bytes=ws, locality=self._epc, parallelism=8.0,
            compute_cycles_per_item=0.0,
        )

    def _stream(self, kind: PatternKind, variant: CodeVariant) -> AccessBatch:
        return AccessBatch(
            kind=kind, count=1e6, element_bytes=8, working_set_bytes=8e9,
            locality=self._epc, variant=variant,
        )

    def _rmw(self, variant: CodeVariant) -> AccessBatch:
        return AccessBatch(
            kind=PatternKind.RMW_LOOP, count=1e6, element_bytes=8,
            working_set_bytes=4e8, locality=self._epc, variant=variant,
            parallelism=8.0, compute_cycles_per_item=1.3,
            table_bytes=64e3, table_locality=self._epc,
            reorder_sensitivity=1.0,
        )

    # -- the anchor table ----------------------------------------------------

    def run(self, tolerance: float = DEFAULT_TOLERANCE) -> List[AnchorCheck]:
        """Check every anchor; returns the full list (passes and failures)."""
        checks: List[AnchorCheck] = []

        def add(name, source, expected, measured, tol=tolerance):
            checks.append(AnchorCheck(name, source, expected, measured, tol))

        # Random reads (pointer chase).
        add("in-cache dependent reads unpenalized", "Fig. 5 left",
            1.0, self._ratio(self._chase(1e6)))
        add("dependent reads at 16 GB", "Fig. 5 (53 % relative)",
            1 / 0.53, self._ratio(self._chase(16e9)))
        # Random writes.
        add("random writes at 256 MB", "Fig. 5 (2x)",
            2.0, self._ratio(self._write(256e6)))
        add("random writes at 8 GB", "Fig. 5 (~3x)",
            2.95, self._ratio(self._write(8e9)))
        # Sequential access.
        add("linear 64-bit reads", "Fig. 15 (-5.5 %)",
            1.055, self._ratio(self._stream(PatternKind.SEQ_READ,
                                            CodeVariant.NAIVE)), 0.02)
        add("linear 512-bit reads", "Fig. 15 (-3 %)",
            1.03, self._ratio(self._stream(PatternKind.SEQ_READ,
                                           CodeVariant.SIMD)), 0.02)
        add("linear writes", "Fig. 15 (-2 %)",
            1.02, self._ratio(self._stream(PatternKind.SEQ_WRITE,
                                           CodeVariant.SIMD)), 0.02)
        # Enclave-mode loop execution.
        add("naive RMW loop", "Fig. 7 (225 % slower)",
            3.25, self._ratio(self._rmw(CodeVariant.NAIVE)))
        add("unrolled RMW loop", "Fig. 7 (20 % slower)",
            1.20, self._ratio(self._rmw(CodeVariant.UNROLLED)))
        # UPI encryption.
        add("cross-NUMA scan, 1 thread", "Fig. 16 (77 %)",
            1 / 0.77,
            self._ratio(self._stream(PatternKind.SEQ_READ, CodeVariant.SIMD),
                        thread_node=1, concurrency=1))
        add("cross-NUMA scan, 16 threads", "Fig. 16 (96 %)",
            1 / 0.96,
            self._ratio(self._stream(PatternKind.SEQ_READ, CodeVariant.SIMD),
                        thread_node=1, concurrency=16), 0.03)
        # Hardware bounds.
        add("UPI aggregate bandwidth (GB/s)", "Sec. 5.5 (67.2 GB/s)",
            67.2, self.machine.spec.upi_total_bandwidth_bytes / 1e9, 0.001)
        add("EPC per socket (GiB)", "Table 1 (64 GB)",
            64.0, self.machine.spec.epc_bytes_per_socket / (1 << 30), 0.001)
        return checks

    def report(self, tolerance: float = DEFAULT_TOLERANCE) -> str:
        """Human-readable validation report."""
        checks = self.run(tolerance)
        failed = sum(1 for c in checks if not c.passed)
        lines = ["calibration validation: "
                 f"{len(checks) - failed}/{len(checks)} anchors hold"]
        lines += [check.describe() for check in checks]
        return "\n".join(lines)


def validate_calibration(
    machine: Optional[SimMachine] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[AnchorCheck]:
    """Convenience wrapper: validate the (default) machine's calibration."""
    return CalibrationValidator(machine).run(tolerance)
