"""Benchmark harness: experiment registry, repetition runner, reporting."""

from repro.bench.runner import RunStats, repeat_runs
from repro.bench.report import ExperimentReport, ReportRow
from repro.bench.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "RunStats",
    "repeat_runs",
    "ExperimentReport",
    "ReportRow",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
