"""Benchmark harness: experiment registry, repetition runner, reporting."""

from repro.bench.runner import (
    RunStats,
    repeat_runs,
    use_base_seed,
    use_repetition_jobs,
)
from repro.bench.report import ExperimentReport, ReportRow
from repro.bench.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.bench.parallel import ExperimentRun, SessionResult, run_session

__all__ = [
    "RunStats",
    "repeat_runs",
    "use_base_seed",
    "use_repetition_jobs",
    "ExperimentReport",
    "ReportRow",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "ExperimentRun",
    "SessionResult",
    "run_session",
]
