"""Extension: the EPC-capacity crossover between CrkJoin and RHO.

The paper contrasts two endpoints: SGXv1's ~93 MB EPC (where CrkJoin's
paging avoidance wins) and SGXv2's 64 GB (where it is 12x behind).  This
sweep interpolates: keeping the legacy platform's paging machinery and MEE
costs fixed, the effective EPC capacity grows from 64 MB to 8 GB, and the
throughput curves of CrkJoin and RHO are traced over it.  The crossover —
the EPC size at which state-of-the-art partitioning starts beating
paging-avoidance — lands where the join's full working set (inputs +
partition scratch) first fits, quantifying exactly *how much* EPC made the
SGXv1-era designs obsolete.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import CrkJoin, RadixJoin
from repro.enclave.enclave import EnclaveConfig
from repro.hardware.platforms import sgxv1_calibration, sgxv1_testbed
from repro.machine import SimMachine
from repro.tables import generate_join_relation_pair
from repro.units import GiB, MiB

EXPERIMENT_ID = "ext06"
TITLE = "Extension: CrkJoin vs RHO over EPC capacity (legacy platform)"
PAPER_REFERENCE = "interpolates Sec. 1's SGXv1 -> SGXv2 premise"

BUILD_BYTES = 50e6
PROBE_BYTES = 200e6

EPC_SIZES_MB = (64, 128, 256, 512, 1024, 2048, 8192)


def _machine_with_epc(epc_mb: int) -> SimMachine:
    spec = dataclasses.replace(
        sgxv1_testbed(), epc_bytes_per_socket=epc_mb * MiB
    )
    params = dataclasses.replace(
        sgxv1_calibration(), epc_effective_bytes=float(epc_mb * MiB)
    )
    return SimMachine(spec, params)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Throughput of both joins at each EPC capacity."""
    del machine  # the sweep builds its own platforms
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for epc_mb in EPC_SIZES_MB:
        for join_cls in (CrkJoin, RadixJoin):

            def measure(seed: int, _cls=join_cls, _epc=epc_mb) -> float:
                sim = _machine_with_epc(_epc)
                build, probe = generate_join_relation_pair(
                    BUILD_BYTES,
                    PROBE_BYTES,
                    seed=seed,
                    physical_row_cap=config.row_cap,
                )
                enclave_config = EnclaveConfig(heap_bytes=2 * GiB, node=0)
                with sim.context(
                    common.SETTING_SGX_IN,
                    threads=sim.spec.cores_per_socket,
                    enclave_config=enclave_config,
                ) as ctx:
                    result = _cls().run(ctx, build, probe)
                return common.mrows(result.throughput_rows_per_s(sim.frequency_hz))

            report.add(join_cls.name, epc_mb,
                       common.measure_stats(measure, config), "M rows/s")
    crossover = None
    for epc_mb in EPC_SIZES_MB:
        if report.value("RHO", epc_mb) > report.value("CrkJoin", epc_mb):
            crossover = epc_mb
            break
    report.notes.append(
        "RHO overtakes CrkJoin from "
        f"{crossover} MB EPC onward" if crossover is not None
        else "RHO never overtakes CrkJoin in the swept range"
    )
    report.notes.append(
        f"the largest single stream is the {PROBE_BYTES / 1e6:.0f} MB probe "
        "table; the crossover tracks where RHO's passes over it stop paging "
        "(CrkJoin's shrinking sub-tables stop paging a few bits in, which "
        "is why it degrades far more gracefully below the crossover)"
    )
    return report
