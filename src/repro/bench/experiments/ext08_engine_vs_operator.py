"""Extension: engine-in-enclave vs operator-in-enclave overhead.

The paper measures hand-built *operators* inside SGXv2; the systems it is
most often compared against (DuckDB-SGX2, Polars-inside-SGX2) run *whole
engines* in the enclave.  This experiment puts both arms on one axis per
platform and template:

* **operator** — the paper's arm: the catalog's real-operator pricing of
  ``SGX (Data in Enclave)`` over ``Plain CPU`` (Fig. 1/17's overheads);
* **engine** — the :mod:`repro.backends` arm: a real SQL engine's
  calibrated profile priced through the SGX cost envelope (enclave heap
  pre-touch at init, penalized in-enclave execution, EPC paging past the
  budget), in-enclave over plain;
* **init share** — the fraction of the engine arm's in-enclave seconds
  spent first-touching the committed heap, the startup term operator
  benchmarks never pay per query.

Before any overhead is reported, every template passes the cross-backend
**equivalence gate**: the operator simulator and each live engine execute
the same query over the same materialized rows and must agree on the
canonical result bag.  On SGXv2 the two arms sit close together (memory
encryption dominates both); on the SGXv1-class platform they diverge in
*both* directions: the operators' static RHO join collapses into
partitioning-scratch paging (its scratch is several times the inputs)
while the engine's compact hash join stays at a few x, and conversely
the TPC-H engine arms pay several-x from buffer-pool working sets where
the operators' tighter footprints stay under 2 x — the quantitative form
of the paper's "overheads of a ported engine are not the overheads of
the primitives" caveat, in both directions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.backends.config import ENGINE_MODES, missing_reason, use_backend_mode
from repro.backends.envelope import SgxCostEnvelope, get_profile, load_profiles
from repro.backends.serving import gate_template
from repro.bench.experiments import common
from repro.bench.experiments.ext07_planner_ablation import PLATFORMS
from repro.bench.report import ExperimentReport
from repro.machine import SimMachine
from repro.trace import current_tracer
from repro.trace.breakdown import BACKEND_ENVELOPE, BACKEND_EQUIVALENCE
from repro.workload.jobs import JobCatalog, serving_templates

EXPERIMENT_ID = "ext08"
TITLE = "Extension: engine-in-enclave vs operator-in-enclave overhead"
PAPER_REFERENCE = (
    "quantifies Sec. 2's engine-vs-primitive caveat against DuckDB-SGX2-"
    "style whole-engine ports"
)

#: The compared serving templates: one streaming scan, one probe-heavy
#: join, and two TPC-H plans (the three access-pattern regimes).
TEMPLATE_NAMES = ("scan-small", "join-medium", "q3", "q12")


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Overhead of both arms per platform, behind the equivalence gate."""
    del machine  # the sweep builds its own platforms
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    templates = serving_templates()
    chosen = [templates[name] for name in TEMPLATE_NAMES]
    artifact = load_profiles()
    tracer = current_tracer()

    skipped: List[str] = []
    modes: List[str] = []
    for mode in ENGINE_MODES:
        reason = missing_reason(mode)
        if reason is not None:
            skipped.append(reason)
        elif any((mode, t.name) not in artifact for t in chosen):
            skipped.append(
                f"backend {mode!r} has no calibrated profile for every "
                "template; capture one with "
                "'python -m repro.backends.calibrate'"
            )
        else:
            modes.append(mode)

    # Gate once, before any timing: result bags are platform-independent
    # (correctness, not cost), so one pass covers both platforms.
    gate_catalog = JobCatalog(quick=quick)
    digests: Dict[str, str] = {}
    for template in chosen:
        for mode in modes:
            digest = gate_template(gate_catalog, template, mode)
            digests[template.name] = digest
            tracer.event(
                BACKEND_EQUIVALENCE,
                backend=mode,
                template=template.name,
                digest=digest,
                rows=artifact[(mode, template.name)].rows,
            )

    for label, make_machine in PLATFORMS:
        proto = make_machine()
        catalog = JobCatalog(proto, quick=quick)
        envelope = SgxCostEnvelope(proto)
        for template in chosen:
            # Pin the sim mode: the operator arm must price through the
            # operators even when a session-wide --backend is active.
            with use_backend_mode("sim"):
                plain = catalog.cost(template, common.SETTING_PLAIN)
                sgx = catalog.cost(template, common.SETTING_SGX_IN)
            report.add(
                f"{label} operator",
                template.name,
                sgx.service_s / plain.service_s,
                "x overhead",
            )
            for mode in modes:
                cost = envelope.price(
                    get_profile(mode, template, artifact), template
                )
                tracer.event(BACKEND_ENVELOPE, **cost.as_event_attrs())
                report.add(
                    f"{label} {mode} engine",
                    template.name,
                    cost.overhead,
                    "x overhead",
                )
                report.add(
                    f"{label} {mode} init share",
                    template.name,
                    cost.init_s / cost.in_enclave_s,
                    "fraction",
                )

    if modes:
        gated = ", ".join(
            f"{name} -> {digests[name][:12]}" for name in TEMPLATE_NAMES
        )
        report.notes.append(
            f"equivalence gate passed for sim + {', '.join(modes)} on "
            f"every template before timing; bag digests: {gated}"
        )
    for reason in skipped:
        report.notes.append(f"skipped: {reason}")
    report.notes.append(
        "engine arms price a calibrated profile (checked-in artifact) "
        "through the SGX cost envelope: heap pre-touch at init + access-"
        "penalized execution + EPC paging past the budget; operator arms "
        "are the catalog's real-operator pricing"
    )
    return report
