"""Extension: rewrite ablation — off/prove/race/learned on both platforms.

The ablation behind :mod:`repro.rewrite`: each TPC-H template runs at a
scale factor past the legacy platform's EPC cliff (SF 4.5 puts the
lineitem-derived pair tables beyond the ~93 MB usable EPC) and the four
``--rewrite`` modes price its service time on both SGX generations:

* **off** — the reference logical plan under the historical static
  physical plan (RHO-unrolled), exactly what every run served before the
  subsystem existed;
* **prove** — candidates are generated and proven bag-identical to the
  reference (canonical digests over witness executions), but nothing is
  raced: service time is unchanged, the mode only buys the proof ledger
  and the Q-error observations;
* **race** — survivors are priced through the planner's real-operator
  costing; the ranking is recorded (and feeds the learned arm set) but
  the served plan is still the reference: race is observation;
* **learned** — the proven, raced winner replaces the reference plan.

On SGXv2 the 64 GB EPC hides the residency, so rewrites win modestly
(pipelining, one fewer join).  On the legacy platform the partition-swap
rewrites (``SET``-style hints that run every join as PHT/CrkJoin) skip
the radix partition passes that stream beyond-EPC pair tables, and the
learned winner beats the static logical plan by well over the 1.3x
acceptance bar.  Every raced candidate carries an accepted exact
equivalence proof by construction — the race only admits survivors —
and the run re-checks and reports that invariant.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.experiments.ext07_planner_ablation import PLATFORMS
from repro.bench.report import ExperimentReport
from repro.machine import SimMachine
from repro.planner.costing import estimate_candidate
from repro.planner.stats import QErrorTracker
from repro.rewrite import plan_rewrites, static_physical
from repro.trace import Tracer, current_tracer, tee, use_tracer
from repro.trace.breakdown import rewrite_breakdown
from repro.workload.jobs import JobKind, JobTemplate

EXPERIMENT_ID = "ext09"
TITLE = "Extension: rewrite ablation (off / prove / race / learned)"
PAPER_REFERENCE = "logical-plan consequence of Fig. 8/17's EPC cliff"

#: Past the legacy EPC cliff: at SF 4.5 a one-column lineitem scan is
#: ~108 MB and the col pair table ~150 MB, both beyond the ~93 MB EPC.
SCALE_FACTOR = 4.5

#: The legacy platform has four cores; both platforms use four threads so
#: the ablation compares paging regimes, not parallelism.
THREADS = 4

QUICK_QUERIES = ("Q3", "Q10")
FULL_QUERIES = ("Q3", "Q10", "Q12", "Q19")

#: Mode semantics in one line each (also the ablation's series names).
MODES = ("off", "prove", "race", "learned")


def _template(query: str) -> JobTemplate:
    return JobTemplate(
        name=f"{query.lower()}-sf{SCALE_FACTOR:g}",
        kind=JobKind.TPCH,
        threads=THREADS,
        query=query,
        scale_factor=SCALE_FACTOR,
    )


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Priced service time of the four rewrite modes per query/platform."""
    del machine  # the sweep builds its own platforms
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    queries = QUICK_QUERIES if quick else FULL_QUERIES
    for label, make_machine in PLATFORMS:
        proto = make_machine()
        tracker = QErrorTracker()
        run_tracer = Tracer(label=f"ext09-{label}")
        best_speedup = 1.0
        best_query = queries[0]
        raced_total = 0
        unproved_raced = []
        with use_tracer(tee(current_tracer(), run_tracer)):
            for query in queries:
                template = _template(query)
                reference = estimate_candidate(
                    proto,
                    common.SETTING_SGX_IN,
                    template,
                    static_physical(template),
                )
                # prove mode's own pass (proofs are memoized, so the
                # later learned pass re-reads the same witnesses).
                proved = plan_rewrites(
                    template,
                    "prove",
                    proto,
                    common.SETTING_SGX_IN,
                    tracker=tracker,
                )
                decision = plan_rewrites(
                    template,
                    "learned",
                    proto,
                    common.SETTING_SGX_IN,
                    tracker=tracker,
                )
                served = {
                    "off": reference.seconds,
                    "prove": reference.seconds,
                    "race": reference.seconds,
                    "learned": (
                        decision.winner.seconds
                        if decision.winner is not None
                        else reference.seconds
                    ),
                }
                for mode in MODES:
                    report.add(
                        f"{label} {mode}", query, served[mode] * 1e3, "ms"
                    )
                report.add(f"{label} speedup", query, decision.speedup, "x")
                report.add(
                    f"{label} proved", query, len(decision.proved), "count"
                )
                report.add(
                    f"{label} rejected", query, len(decision.rejected), "count"
                )
                report.add(
                    f"{label} q-error raw", query, decision.q_error_raw, "x"
                )
                report.add(
                    f"{label} q-error corrected",
                    query,
                    decision.q_error_corrected,
                    "x",
                )
                raced_total += len(decision.ranked)
                accepted = {p.candidate.name for p in decision.proved}
                unproved_raced.extend(
                    est.candidate.name
                    for est in decision.ranked
                    if est.candidate.name not in accepted
                )
                if decision.speedup > best_speedup:
                    best_speedup = decision.speedup
                    best_query = query
                del proved  # its ledger is the same memoized proof set
        if unproved_raced:
            report.notes.append(
                f"{label}: PROOF GATE VIOLATED — raced without an accepted "
                f"proof: {', '.join(sorted(unproved_raced))}"
            )
        else:
            report.notes.append(
                f"{label}: {raced_total} raced candidates, every one "
                "carrying an accepted exact-equivalence proof"
            )
        report.notes.append(
            f"{label}: best learned winner beats the static logical plan "
            f"by {best_speedup:.2f}x on {best_query} "
            "(acceptance bar: >= 1.3x on SGXv1)"
        )
        report.notes.append(f"{label}: " + rewrite_breakdown(run_tracer).describe())
    report.notes.append(
        "off/prove/race serve identical times by design: proving and "
        "racing are observation-only — only learned swaps the served plan"
    )
    return report
